"""Progressive top-k: streaming results out of the join as they finalize.

The join algorithm's headline property (paper §I-C, Figures 5/10/11) is
progressiveness: results arrive one by one in ascending cost order, so a
user can stop as soon as enough upgrade candidates are on the table —
without paying for the rest of ``T``.  This example streams results from a
100K-competitor market and stops on a cost budget rather than a fixed k.

Run:  python examples/progressive_topk.py
"""

import time

import numpy as np

from repro import JoinUpgrader, RTree
from repro.costs.model import paper_cost_model
from repro.data.generators import paper_workload

COST_BUDGET_FACTOR = 1.002  # accept results within 0.2% of the cheapest


def main():
    competitors, products = paper_workload(
        "independent", p_size=100_000, t_size=5_000, dims=3, seed=7
    )
    cost_model = paper_cost_model(3)

    build_start = time.perf_counter()
    tree_p = RTree.bulk_load(competitors)
    tree_t = RTree.bulk_load(products)
    print(
        f"indexed |P|={len(competitors)}, |T|={len(products)} in "
        f"{time.perf_counter() - build_start:.2f}s"
    )

    upgrader = JoinUpgrader(tree_p, tree_t, cost_model, bound="clb")
    start = time.perf_counter()
    cheapest = None
    taken = 0
    for result in upgrader.results():
        if cheapest is None:
            cheapest = result.cost
        if result.cost > cheapest * COST_BUDGET_FACTOR:
            break
        taken += 1
        print(
            f"  +{time.perf_counter() - start:6.3f}s  "
            f"#{taken}: product {result.record_id} at cost {result.cost:.4f}"
        )
    print(
        f"stopped after {taken} results within the cost budget "
        f"({upgrader.stats.heap_pops} heap pops, "
        f"{upgrader.stats.node_accesses} node accesses; "
        f"|T| never fully processed)"
    )


if __name__ == "__main__":
    main()
