"""Serving with the consolidated top-level API, tracing included.

Builds a synthetic market, stands up an :class:`UpgradeEngine` from one
:class:`EngineConfig` (workers, caching, and tracing in a single
validated object), serves a small mixed request stream through the
worker pool, and then explains the slowest request from its recorded
span tree — every name used here is importable straight from ``repro``.

Run:  python examples/serving_engine.py
"""

import numpy as np

from repro import (
    EngineConfig,
    MarketSession,
    ProductQuery,
    TopKQuery,
    UpgradeEngine,
)
from repro.obs import format_text


def main():
    rng = np.random.default_rng(2012)
    competitors = rng.random((3_000, 3))
    products = 1.0 + rng.random((500, 3))
    session = MarketSession.from_points(competitors, products)

    config = EngineConfig(
        workers=2,
        trace_sample_rate=1.0,     # trace everything for the demo
        trace_store_capacity=128,
    )
    with UpgradeEngine(session, config) as engine:
        pending = engine.submit_batch(
            [TopKQuery(k=5)]
            + [ProductQuery(int(i)) for i in rng.choice(500, size=20)]
            + [TopKQuery(k=10)]
        )
        responses = [p.result(timeout=30.0) for p in pending]
        hits = sum(r.cache_hit for r in responses)
        print(f"served {len(responses)} requests, {hits} cache hits")

        traces = engine.recent_traces()
        slowest = max(traces, key=lambda t: t.duration_s)
        print(
            f"slowest: {slowest.name} {slowest.duration_s * 1e3:.1f}ms "
            f"across layers {slowest.layers()}"
        )
        queue_wait = slowest.find("engine.queue_wait")
        if queue_wait:
            print(
                f"  of which queued: "
                f"{queue_wait[0].duration_s * 1e3:.3f}ms"
            )
        # The full span tree (truncated): phase-by-phase attribution.
        print("\n".join(format_text([slowest]).splitlines()[:12]))

        tracing = engine.metrics()["tracing"]
        print(
            f"tracer kept {tracing['kept']}/{tracing['started']} traces, "
            f"store retained {tracing['store']['retained']}"
        )


if __name__ == "__main__":
    main()
