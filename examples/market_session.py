"""A living market: incremental updates with a MarketSession.

Simulates a quarter in the phone business: we watch a synthesized phone
market (see :mod:`repro.data.markets`), keep a session over the competitor
index and our own catalog, and react to events — competitor launches, a
rival product being discontinued, and committing our own cheapest upgrade —
re-querying the top-k after each event without rebuilding anything.

Run:  python examples/market_session.py
"""

from repro import CostModel, LinearCost, MarketSession
from repro.data.markets import phone_market, split_by_brand
from repro.data.normalize import orient_minimize


def main():
    raw, orientations = phone_market(5_000, seed=11)
    oriented = orient_minimize(raw, orientations)
    competitors, own, _ = split_by_brand(oriented, 0.04, seed=11)

    # Cost per oriented unit: shaving a gram, adding a standby hour,
    # adding a megapixel.
    model = CostModel(
        [
            LinearCost(0.0, 2.0),    # weight (g)
            LinearCost(0.0, 1.0),    # -standby (h)
            LinearCost(0.0, 30.0),   # -camera (MP)
        ]
    )
    session = MarketSession(3, model, bound="alb")
    for c in competitors:
        session.add_competitor(c)
    own_ids = [session.add_product(p) for p in own]
    print(
        f"session: {session.competitor_count} competitors, "
        f"{session.product_count} own phones"
    )

    def report(label):
        outcome = session.top_k(3)
        tops = ", ".join(
            f"#{r.record_id}@{r.cost:.1f}" for r in outcome.results
        )
        print(f"{label:40s} top-3 upgrades: {tops}")
        return outcome

    outcome = report("initial market")

    # Event 1: a rival launches an aggressive flagship.
    flagship = orient_minimize(
        [[95.0, 320.0, 16.0]], orientations
    )[0]
    session.add_competitor(tuple(flagship))
    report("rival flagship launched")

    # Event 2: we commit our cheapest upgrade.
    best = session.top_k(1).results[0]
    session.commit_upgrade(best)
    report(f"committed upgrade of product {best.record_id}")

    # Event 3: we retire our weakest remaining product.
    worst = max(
        (pid for pid in own_ids if session.product_point(pid) is not None),
        key=lambda pid: sum(session.product_point(pid)),
    )
    session.remove_product(worst)
    report(f"retired product {worst}")


if __name__ == "__main__":
    main()
