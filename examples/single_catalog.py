"""Single-catalog upgrading: one manufacturer, one product set (§VI).

The paper's closing research directions include the setting where a single
manufacturer owns a large catalog and wants to upgrade its *own*
uncompetitive products in the presence of its advantaged ones.  The
catalog's skyline members act as the competitor set; every non-skyline
member is an upgrade candidate.

This example builds a 10K-product catalog, shortlists the 5 cheapest
upgrades, commits the best one, and re-ranks — showing how an upgraded
product joins the skyline and changes the next round's answer.

Run:  python examples/single_catalog.py
"""

import numpy as np

from repro import single_set_top_k
from repro.core.single_set import split_catalog
from repro.costs.model import paper_cost_model


def main():
    rng = np.random.default_rng(99)
    catalog = rng.random((10_000, 3)) * np.array([1.0, 2.0, 0.5])
    model = paper_cost_model(3)

    skyline_rows, candidates, _ = split_catalog(catalog)
    print(
        f"catalog of {len(catalog)} products: {len(skyline_rows)} are "
        f"competitive (skyline), {len(candidates)} are upgrade candidates"
    )

    outcome = single_set_top_k(catalog, k=5, cost_model=model, bound="alb")
    print(f"\ncheapest 5 upgrades ({outcome.report.elapsed_s:.2f}s):")
    for rank, r in enumerate(outcome.results, start=1):
        print(
            f"  #{rank} product {r.record_id:6d}  cost={r.cost:9.4f}  "
            f"{tuple(round(v, 3) for v in r.original)} -> "
            f"{tuple(round(v, 3) for v in r.upgraded)}"
        )

    # Commit the best upgrade and re-rank the (changed) catalog.
    best = outcome.results[0]
    updated = catalog.copy()
    updated[best.record_id] = best.upgraded
    new_skyline, _, _ = split_catalog(updated)
    joined = any(
        np.allclose(row, best.upgraded) for row in new_skyline
    )
    print(
        f"\nafter committing product {best.record_id}'s upgrade it "
        f"{'joined' if joined else 'did not join'} the skyline "
        f"({len(new_skyline)} skyline members now)"
    )
    second_round = single_set_top_k(updated, k=1, cost_model=model)
    nxt = second_round.results[0]
    print(
        f"next cheapest upgrade is product {nxt.record_id} "
        f"at cost {nxt.cost:.4f}"
    )


if __name__ == "__main__":
    main()
