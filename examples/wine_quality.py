"""Wine-quality scenario: the paper's §IV-B real-data study, end to end.

Reproduces the experiment protocol: 4,898 wine tuples (the offline
synthetic surrogate of the UCI white-wine set, see DESIGN.md §5) projected
to manufacturer-controllable attributes, split into 1,000 random
non-skyline product wines (``T``) versus the remaining competitor wines
(``P``), and solved with both probing and the join for every attribute
combination of Table III.

Run:  python examples/wine_quality.py
"""

from repro import top_k_upgrades
from repro.costs.model import paper_cost_model
from repro.data.wine import ATTRIBUTE_COMBOS, wine_split


def main():
    for combo, attributes in ATTRIBUTE_COMBOS.items():
        competitors, products = wine_split(combo)
        cost_model = paper_cost_model(len(attributes))

        join = top_k_upgrades(
            competitors, products, k=3, cost_model=cost_model,
            method="join", bound="clb",
        )
        probing = top_k_upgrades(
            competitors, products, k=3, cost_model=cost_model,
            method="probing",
        )

        agree = all(
            abs(a.cost - b.cost) < 1e-9
            for a, b in zip(join.results, probing.results)
        )
        print(f"combo {combo!r} ({', '.join(attributes)}):")
        print(
            f"  join[clb]  {join.report.elapsed_s:7.3f}s   "
            f"probing {probing.report.elapsed_s:7.3f}s   "
            f"costs agree: {agree}"
        )
        for rank, r in enumerate(join.results, start=1):
            moves = ", ".join(
                f"{a}: {o:.4f}->{u:.4f}"
                for a, o, u in zip(attributes, r.original, r.upgraded)
                if abs(o - u) > 1e-12
            )
            print(f"    #{rank} wine {r.record_id:4d} cost={r.cost:10.4f}  {moves}")
        print()


if __name__ == "__main__":
    main()
