"""Hotel-chain scenario: weighted upgrade costs over a large market.

The paper's introduction motivates upgrading with hotels: a chain describes
each property by quality attributes (here: price level, distance to the
center, and a negated guest rating so that smaller is better on every
dimension) and wants to know which of its uncompetitive properties can be
made competitive — not dominated by any rival hotel — at the lowest
renovation cost.  Renovating the rating is far more expensive than moving
the price point, which the weighted-sum integration expresses.

Run:  python examples/hotel_upgrade.py
"""

import numpy as np

from repro import (
    CostModel,
    JoinUpgrader,
    PiecewiseLinearCost,
    ReciprocalCost,
    RTree,
    WeightedSumIntegration,
)
from repro.core.verify import verify_results

RNG = np.random.default_rng(42)

ATTRIBUTES = ("price_level", "distance_km", "neg_rating")


def market(n):
    """Rival hotels: independently scattered quality vectors in [0, 1]^3."""
    return RNG.random((n, 3))


def chain(n):
    """The chain's uncompetitive properties: strictly worse than the market."""
    return 1.0 + RNG.random((n, 3)) * 0.5


def main():
    rivals = market(20_000)
    own = chain(500)

    # Per-attribute costs: price repositioning follows a piecewise tariff,
    # relocation cost falls off reciprocally with distance, rating
    # improvements get reciprocally expensive near the top.  Weights make
    # rating work 5x as expensive as price work.
    cost_model = CostModel(
        [
            PiecewiseLinearCost([(0.0, 10.0), (0.5, 4.0), (2.0, 1.0)]),
            ReciprocalCost(scale=2.0, offset=0.05),
            ReciprocalCost(scale=1.0, offset=0.05),
        ],
        WeightedSumIntegration([1.0, 2.0, 5.0]),
    )

    tree_market = RTree.bulk_load(rivals)
    tree_chain = RTree.bulk_load(own)
    upgrader = JoinUpgrader(tree_market, tree_chain, cost_model, bound="alb")

    outcome = upgrader.run(k=5)
    verify_results(outcome.results, rivals, cost_model)

    print(
        f"Market of {len(rivals)} rivals; chain of {len(own)} properties; "
        f"join[{upgrader.bound}] took {outcome.report.elapsed_s:.3f}s "
        f"({outcome.report.counters.node_accesses} node accesses)."
    )
    print()
    print("Top-5 cheapest renovations:")
    for rank, r in enumerate(outcome.results, start=1):
        deltas = ", ".join(
            f"{a}: {o:.3f}->{u:.3f}"
            for a, o, u in zip(ATTRIBUTES, r.original, r.upgraded)
            if abs(o - u) > 1e-12
        )
        print(f"  #{rank} property {r.record_id:4d}  cost={r.cost:8.3f}  {deltas}")


if __name__ == "__main__":
    main()
