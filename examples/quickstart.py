"""Quickstart: the paper's cell-phone running example (Tables I and II).

A manufacturer owns four phones (A-D), each dominated by at least one
competitor phone (1-6).  Which phone can be upgraded most cheaply so that no
competitor dominates it — and what should its new spec be?

Run:  python examples/quickstart.py
"""

from repro import CostModel, LinearCost, top_k_upgrades
from repro.data.phones import (
    PHONE_ATTRIBUTES,
    PHONE_ORIENTATIONS,
    phone_example,
)
from repro.data.normalize import Orientation


def undo_orientation(point):
    """Map an oriented (min-preferred) point back to raw attribute values."""
    return tuple(
        -v if o is Orientation.MAX else v
        for v, o in zip(point, PHONE_ORIENTATIONS)
    )


def main():
    competitors, products, _, t_names = phone_example()

    # A linear cost per attribute: shaving grams, adding standby hours, and
    # adding megapixels each have a unit cost.  All three functions are
    # non-increasing in the oriented (smaller-is-better) value, so the
    # product cost is dominance-monotonic as the algorithms require.
    cost_model = CostModel(
        [
            LinearCost(intercept=300.0, slope=1.0),  # weight (g)
            LinearCost(intercept=0.0, slope=0.5),    # -standby (h)
            LinearCost(intercept=0.0, slope=40.0),   # -camera (MP)
        ]
    )

    outcome = top_k_upgrades(
        competitors, products, k=len(products), cost_model=cost_model,
        method="join", bound="clb",
    )

    print("Cheapest-to-upgrade phones (all four, ranked):")
    header = ("rank", "phone", "cost") + PHONE_ATTRIBUTES
    print("  ".join(f"{h:>14s}" for h in header))
    for rank, result in enumerate(outcome.results, start=1):
        raw = undo_orientation(result.upgraded)
        row = (
            f"{rank:>14d}",
            f"{t_names[result.record_id]:>14s}",
            f"{result.cost:>14.2f}",
        ) + tuple(f"{v:>14.2f}" for v in raw)
        print("  ".join(row))

    best = outcome.results[0]
    print()
    print(
        f"=> upgrade {t_names[best.record_id]} at cost "
        f"{best.cost:.2f}: new spec "
        f"{dict(zip(PHONE_ATTRIBUTES, undo_orientation(best.upgraded)))}"
    )


if __name__ == "__main__":
    main()
