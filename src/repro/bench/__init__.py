"""Experiment harness: workload construction, algorithm runners, figures.

The benchmark suite (``benchmarks/``) and the ``skyup figure`` CLI both
drive the machinery here:

* :mod:`repro.bench.workloads` — cached construction of synthetic and wine
  workloads (arrays plus bulk-loaded R-trees plus cost models);
* :mod:`repro.bench.harness` — uniform single-cell runners for every
  algorithm variant, returning :class:`repro.instrumentation.RunReport`;
* :mod:`repro.bench.figures` — one experiment definition per figure of the
  paper's §IV, each producing the figure's series at a configurable
  cardinality scale.
"""

from repro.bench.workloads import Workload, synthetic_workload, wine_workload
from repro.bench.harness import run_cell
from repro.bench.figures import FIGURES, FigureResult, run_figure
from repro.bench.planner import format_planner_report, run_planner_bench

__all__ = [
    "FIGURES",
    "FigureResult",
    "Workload",
    "format_planner_report",
    "run_cell",
    "run_figure",
    "run_planner_bench",
    "synthetic_workload",
    "wine_workload",
]
