"""The paper's tables (I-V) as structured, printable data.

Tables I and II are the running example's data (they live in
:mod:`repro.data.phones`; re-exported here for one-stop access).  Table III
is the wine attribute combinations, Tables IV and V the synthetic
experiment parameter grids.  ``skyup table <id>`` prints any of them; the
test suite asserts the dominance facts the paper derives from Tables I/II.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.data.phones import (
    COMPETITOR_PHONES,
    PHONE_ATTRIBUTES,
    UPGRADE_CANDIDATE_PHONES,
)
from repro.data.wine import ATTRIBUTE_COMBOS
from repro.exceptions import ConfigurationError

#: Table IV — parameter settings for the small synthetic data sets
#: (defaults in the paper are shown in bold; marked here with ``*``).
TABLE_IV = {
    "competitor_cardinality": [100_000 * i for i in range(1, 11)],
    "competitor_default": 1_000_000,
    "product_cardinality": [10_000 * i for i in range(1, 11)],
    "product_default": 100_000,
    "dimensionality": [2, 3, 4, 5],
    "dimensionality_default": 2,
}

#: Table V — parameter settings for the large synthetic data sets.
TABLE_V = {
    "competitor_cardinality": [500_000, 1_000_000, 1_500_000, 2_000_000],
    "competitor_default": 1_000_000,
    "product_cardinality": [50_000, 100_000, 150_000, 200_000],
    "product_default": 100_000,
    "dimensionality": [3, 4, 5, 6],
    "dimensionality_default": 5,
}

TABLE_IDS = ("I", "II", "III", "IV", "V")


def _format_phone_table(
    title: str, rows: Dict[str, Sequence[float]]
) -> str:
    header = ("Phone",) + tuple(
        a.replace("_", " ").title() for a in PHONE_ATTRIBUTES
    )
    widths = [14, 10, 14, 14]
    lines = [title]
    lines.append("".join(h.ljust(w) for h, w in zip(header, widths)))
    for name, values in rows.items():
        cells = (name,) + tuple(f"{v:g}" for v in values)
        lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def _format_grid_table(title: str, grid: Dict[str, object]) -> str:
    lines = [title, f"{'Parameter':30s}{'Settings'}"]

    def fmt(values: List[int], default: int) -> str:
        return ", ".join(
            f"*{v}*" if v == default else str(v) for v in values
        )

    lines.append(
        f"{'Competitor Cardinality |P|':30s}"
        + fmt(grid["competitor_cardinality"], grid["competitor_default"])
    )
    lines.append(
        f"{'Product Cardinality |T|':30s}"
        + fmt(grid["product_cardinality"], grid["product_default"])
    )
    lines.append(
        f"{'Dimensionality d':30s}"
        + fmt(grid["dimensionality"], grid["dimensionality_default"])
    )
    lines.append("(* marks the paper's default)")
    return "\n".join(lines)


def format_table(table_id: str) -> str:
    """Render one of the paper's tables as aligned text.

    Args:
        table_id: ``"I"`` (competitor phones), ``"II"`` (upgrade-candidate
            phones), ``"III"`` (wine attribute combinations), ``"IV"``
            (small synthetic grid), or ``"V"`` (large synthetic grid).
    """
    if table_id == "I":
        return _format_phone_table(
            "Table I — Cell Phone Set P", COMPETITOR_PHONES
        )
    if table_id == "II":
        return _format_phone_table(
            "Table II — Cell Phone Set T", UPGRADE_CANDIDATE_PHONES
        )
    if table_id == "III":
        lines = [
            "Table III — Selected Wine Data Set Attributes",
            f"{'Abbreviation':16s}Wine Attributes",
        ]
        for abbrev, attributes in ATTRIBUTE_COMBOS.items():
            pretty = ", ".join(a.replace("_", " ") for a in attributes)
            lines.append(f"{abbrev:16s}{pretty}")
        return "\n".join(lines)
    if table_id == "IV":
        return _format_grid_table(
            "Table IV — Parameter Settings, Small Synthetic Data Sets",
            TABLE_IV,
        )
    if table_id == "V":
        return _format_grid_table(
            "Table V — Parameter Settings, Large Synthetic Data Sets",
            TABLE_V,
        )
    raise ConfigurationError(
        f"unknown table {table_id!r}; choose from {TABLE_IDS}"
    )
