"""Experiment definitions: one per table/figure of the paper's §IV.

Every figure of the evaluation section has a builder here that reruns the
figure's sweep and returns a :class:`FigureResult` — the same series the
paper plots (execution time per algorithm/bound against the swept
parameter), plus scale-free work counters.

Cardinalities are the paper's divided by a per-figure **scale** (overridable
via ``SKYUP_BENCH_SCALE`` or the ``scale=`` argument): the paper ran Java on
up to 2M-point sets; CPython at 1/100 scale preserves every *shape* claim
(algorithm ordering, orders-of-magnitude gaps, growth trends) at tractable
wall-clock.  EXPERIMENTS.md records paper-vs-measured for each figure.

``quick=True`` trims each sweep to its endpoints — used by the test suite's
smoke checks, never for reported numbers.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import run_cell
from repro.bench.workloads import synthetic_workload, wine_workload
from repro.exceptions import ConfigurationError

Cell = Tuple[str, float, Dict[str, int]]  # (x-label, seconds, counters)

#: Environment override for every figure's cardinality divisor.
SCALE_ENV_VAR = "SKYUP_BENCH_SCALE"

_PROGRESSIVE_KS = (1, 5, 10, 15, 20)

# Paper parameter grids (Tables IV and V), verbatim.
_SMALL_P = [100_000 * i for i in range(1, 11)]      # 100K .. 1000K
_SMALL_T = [10_000 * i for i in range(1, 11)]       # 10K .. 100K
_SMALL_P_DEFAULT, _SMALL_T_DEFAULT, _SMALL_D_DEFAULT = 1_000_000, 100_000, 2
_SMALL_DIMS = [2, 3, 4, 5]
_LARGE_P = [500_000, 1_000_000, 1_500_000, 2_000_000]
_LARGE_T = [50_000, 100_000, 150_000, 200_000]
_LARGE_P_DEFAULT, _LARGE_T_DEFAULT, _LARGE_D_DEFAULT = 1_000_000, 100_000, 5
_LARGE_DIMS = [3, 4, 5, 6]


@dataclass
class FigureResult:
    """One regenerated figure: titled series of (x, seconds, counters)."""

    figure_id: str
    title: str
    xlabel: str
    series: Dict[str, List[Cell]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the figure as an aligned ASCII table (paper-style rows)."""
        lines = [f"{self.figure_id}: {self.title}"]
        labels = list(self.series)
        xs = [cell[0] for cell in self.series[labels[0]]] if labels else []
        header = [self.xlabel] + labels
        widths = [max(12, len(h) + 2) for h in header]
        lines.append("".join(h.ljust(w) for h, w in zip(header, widths)))
        for i, x in enumerate(xs):
            row = [str(x)]
            for label in labels:
                row.append(f"{self.series[label][i][1]:.4f}s")
            lines.append(
                "".join(v.ljust(w) for v, w in zip(row, widths))
            )
        lines.append("")
        lines.append("work counters (node accesses / dominance tests):")
        for label in labels:
            cells = self.series[label]
            parts = [
                f"{x}:{c.get('node_accesses', 0)}/"
                f"{c.get('dominance_tests', 0)}"
                for x, _, c in cells
            ]
            lines.append(f"  {label}: " + "  ".join(parts))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form (written next to benchmark outputs)."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "xlabel": self.xlabel,
            "series": {
                label: [
                    {"x": x, "seconds": s, "counters": c}
                    for x, s, c in cells
                ]
                for label, cells in self.series.items()
            },
            "notes": self.notes,
        }

    def save_json(self, directory: "os.PathLike[str]") -> Path:
        """Write the result as ``<figure_id>.json`` under ``directory``."""
        target = Path(directory) / f"{self.figure_id}.json"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.as_dict(), indent=2))
        return target


@dataclass(frozen=True)
class FigureSpec:
    """Registry record: builder plus its default cardinality scale."""

    figure_id: str
    title: str
    builder: Callable[[float, bool], FigureResult]
    default_scale: float = 100.0


def _scale_value(paper_value: int, scale: float, floor: int = 100) -> int:
    """Scale a paper cardinality down, keeping a sane minimum."""
    return max(floor, int(round(paper_value / scale)))


def _endpoints(values: Sequence, quick: bool) -> List:
    """Trim a sweep to its endpoints in quick mode."""
    vals = list(values)
    if quick and len(vals) > 2:
        return [vals[0], vals[-1]]
    return vals


def _counters(outcome) -> Dict[str, int]:
    return outcome.report.counters.as_dict()


# -- Figure 4: wine attribute combinations ----------------------------------


def _fig4(scale: float, quick: bool) -> FigureResult:
    result = FigureResult(
        "fig4",
        "execution time on wine attribute combinations "
        "(|P|=3898, |T|=1000, k=1)",
        "combo",
        notes=[
            "wine data is the synthetic UCI surrogate (DESIGN.md §5); "
            "cardinalities are the paper's own (no scaling applied)",
        ],
    )
    algorithms = [
        ("basic-probing", "corrected", ""),
        ("probing", "corrected", ""),
        ("join-nlb", "corrected", ""),
        ("join-clb", "corrected", ""),
        ("join-alb", "corrected", ""),
        ("join-clb", "paper", "[paper]"),
    ]
    combos = _endpoints(["c,s", "c,t", "s,t", "c,s,t"], quick)
    for algorithm, lbc_mode, suffix in algorithms:
        cells: List[Cell] = []
        for combo in combos:
            workload = wine_workload(combo)
            outcome = run_cell(
                algorithm, workload, k=1, lbc_mode=lbc_mode
            )
            cells.append(
                (combo, outcome.report.elapsed_s, _counters(outcome))
            )
        result.series[f"{algorithm}{suffix}"] = cells
    return result


# -- Figures 5 / 10 / 11: progressiveness (time to the i-th result) ---------


def _progressive(
    figure_id: str,
    title: str,
    workload_factory: Callable[[], object],
    quick: bool,
) -> FigureResult:
    result = FigureResult(
        figure_id,
        title,
        "k",
        notes=[
            "[paper] series use the paper-literal Case 3/4 LBC formulas, "
            "which overestimate and may return costlier products; they "
            "reproduce the paper's pruning/progressiveness shape, while "
            "the corrected (default) series are provably exact",
        ],
    )
    ks = _endpoints(list(_PROGRESSIVE_KS), quick)
    modes = ("corrected",) if quick else ("corrected", "paper")
    for lbc_mode in modes:
        for bound in ("nlb", "clb", "alb"):
            workload = workload_factory()
            outcome = run_cell(
                f"join-{bound}", workload, k=max(ks), lbc_mode=lbc_mode
            )
            times = outcome.report.extras["result_times"]
            cells: List[Cell] = []
            for k in ks:
                # Time to the k-th available result (the paper's metric).
                elapsed = times[min(k, len(times)) - 1] if times else 0.0
                cells.append((str(k), elapsed, _counters(outcome)))
            suffix = "" if lbc_mode == "corrected" else "[paper]"
            result.series[f"join-{bound}{suffix}"] = cells
    return result


def _fig5(scale: float, quick: bool) -> FigureResult:
    return _progressive(
        "fig5",
        "effect of k on wine data with c,s,t attributes "
        "(progressive join, time to k-th result)",
        lambda: wine_workload("c,s,t"),
        quick,
    )


def _fig10(scale: float, quick: bool) -> FigureResult:
    p = _scale_value(_LARGE_P_DEFAULT, scale)
    t = _scale_value(_LARGE_T_DEFAULT, scale)
    return _progressive(
        "fig10",
        f"effect of k, large anti-correlated (|P|={p}, |T|={t}, "
        f"d={_LARGE_D_DEFAULT}; paper /{scale:g})",
        lambda: synthetic_workload(
            "anti_correlated", p, t, _LARGE_D_DEFAULT
        ),
        quick,
    )


def _fig11(scale: float, quick: bool) -> FigureResult:
    p = _scale_value(_LARGE_P_DEFAULT, scale)
    t = _scale_value(_LARGE_T_DEFAULT, scale)
    return _progressive(
        "fig11",
        f"effect of k, large independent (|P|={p}, |T|={t}, "
        f"d={_LARGE_D_DEFAULT}; paper /{scale:g})",
        lambda: synthetic_workload("independent", p, t, _LARGE_D_DEFAULT),
        quick,
    )


# -- Figures 6 / 7: probing vs join on small synthetic data -----------------


def _small_sweep(
    figure_id: str,
    distribution: str,
    panel: str,
    scale: float,
    quick: bool,
) -> FigureResult:
    algorithms = ["probing", "join-nlb"]
    dist_label = distribution.replace("_", "-")
    if panel == "a":
        xs = _endpoints(_SMALL_P, quick)
        t = _scale_value(_SMALL_T_DEFAULT, scale)
        result = FigureResult(
            figure_id,
            f"small {dist_label}: vary |P| "
            f"(|T|={t}, d={_SMALL_D_DEFAULT}, k=1; paper /{scale:g})",
            "|P| (paper)",
        )
        cells_for = lambda p_paper: synthetic_workload(  # noqa: E731
            distribution,
            _scale_value(p_paper, scale),
            t,
            _SMALL_D_DEFAULT,
        )
    elif panel == "b":
        xs = _endpoints(_SMALL_T, quick)
        p = _scale_value(_SMALL_P_DEFAULT, scale)
        result = FigureResult(
            figure_id,
            f"small {dist_label}: vary |T| "
            f"(|P|={p}, d={_SMALL_D_DEFAULT}, k=1; paper /{scale:g})",
            "|T| (paper)",
        )
        cells_for = lambda t_paper: synthetic_workload(  # noqa: E731
            distribution,
            p,
            _scale_value(t_paper, scale),
            _SMALL_D_DEFAULT,
        )
    elif panel == "c":
        xs = _endpoints(_SMALL_DIMS, quick)
        p = _scale_value(_SMALL_P_DEFAULT, scale)
        t = _scale_value(_SMALL_T_DEFAULT, scale)
        result = FigureResult(
            figure_id,
            f"small {dist_label}: vary d "
            f"(|P|={p}, |T|={t}, k=1; paper /{scale:g})",
            "d",
        )
        cells_for = lambda d: synthetic_workload(  # noqa: E731
            distribution, p, t, d
        )
    else:  # pragma: no cover - registry controls the panel values
        raise ConfigurationError(f"unknown panel {panel!r}")

    for algorithm in algorithms:
        cells: List[Cell] = []
        for x in xs:
            outcome = run_cell(algorithm, cells_for(x), k=1)
            cells.append(
                (str(x), outcome.report.elapsed_s, _counters(outcome))
            )
        result.series[algorithm] = cells
    return result


# -- Figures 8 / 9: the three lower bounds on large synthetic data ----------


def _large_sweep(
    figure_id: str,
    distribution: str,
    panel: str,
    scale: float,
    quick: bool,
) -> FigureResult:
    # The paper compares the three bounds; the extra [paper] series runs
    # CLB with the paper-literal (overestimating) per-pair formulas so the
    # role of bound validity in the paper's trends is visible.
    algorithms = [
        ("join-nlb", "corrected", "join-nlb"),
        ("join-clb", "corrected", "join-clb"),
        ("join-alb", "corrected", "join-alb"),
        ("join-clb", "paper", "join-clb[paper]"),
    ]
    if quick:
        algorithms = algorithms[:3]
    dist_label = distribution.replace("_", "-")
    if panel == "a":
        xs = _endpoints(_LARGE_P, quick)
        t = _scale_value(_LARGE_T_DEFAULT, scale)
        result = FigureResult(
            figure_id,
            f"large {dist_label}: vary |P| "
            f"(|T|={t}, d={_LARGE_D_DEFAULT}, k=1; paper /{scale:g})",
            "|P| (paper)",
        )
        cells_for = lambda p_paper: synthetic_workload(  # noqa: E731
            distribution,
            _scale_value(p_paper, scale),
            t,
            _LARGE_D_DEFAULT,
        )
    elif panel == "b":
        xs = _endpoints(_LARGE_T, quick)
        p = _scale_value(_LARGE_P_DEFAULT, scale)
        result = FigureResult(
            figure_id,
            f"large {dist_label}: vary |T| "
            f"(|P|={p}, d={_LARGE_D_DEFAULT}, k=1; paper /{scale:g})",
            "|T| (paper)",
        )
        cells_for = lambda t_paper: synthetic_workload(  # noqa: E731
            distribution,
            p,
            _scale_value(t_paper, scale),
            _LARGE_D_DEFAULT,
        )
    elif panel == "c":
        xs = _endpoints(_LARGE_DIMS, quick)
        p = _scale_value(_LARGE_P_DEFAULT, scale)
        t = _scale_value(_LARGE_T_DEFAULT, scale)
        result = FigureResult(
            figure_id,
            f"large {dist_label}: vary d "
            f"(|P|={p}, |T|={t}, k=1; paper /{scale:g})",
            "d",
        )
        cells_for = lambda d: synthetic_workload(  # noqa: E731
            distribution, p, t, d
        )
    else:  # pragma: no cover
        raise ConfigurationError(f"unknown panel {panel!r}")

    for algorithm, lbc_mode, label in algorithms:
        cells: List[Cell] = []
        for x in xs:
            outcome = run_cell(
                algorithm, cells_for(x), k=1, lbc_mode=lbc_mode
            )
            cells.append(
                (str(x), outcome.report.elapsed_s, _counters(outcome))
            )
        result.series[label] = cells
    return result


def _make_small(figure_id: str, distribution: str, panel: str):
    def builder(scale: float, quick: bool) -> FigureResult:
        return _small_sweep(figure_id, distribution, panel, scale, quick)

    return builder


def _make_large(figure_id: str, distribution: str, panel: str):
    def builder(scale: float, quick: bool) -> FigureResult:
        return _large_sweep(figure_id, distribution, panel, scale, quick)

    return builder


FIGURES: Dict[str, FigureSpec] = {
    "fig4": FigureSpec(
        "fig4", "wine: algorithms x attribute combinations", _fig4, 1.0
    ),
    "fig5": FigureSpec(
        "fig5", "wine c,s,t: progressiveness over k", _fig5, 1.0
    ),
    "fig6a": FigureSpec(
        "fig6a",
        "small anti-correlated: vary |P| (probing vs join)",
        _make_small("fig6a", "anti_correlated", "a"),
    ),
    "fig6b": FigureSpec(
        "fig6b",
        "small anti-correlated: vary |T| (probing vs join)",
        _make_small("fig6b", "anti_correlated", "b"),
    ),
    "fig6c": FigureSpec(
        "fig6c",
        "small anti-correlated: vary d (probing vs join)",
        _make_small("fig6c", "anti_correlated", "c"),
        500.0,
    ),
    "fig7a": FigureSpec(
        "fig7a",
        "small independent: vary |P| (probing vs join)",
        _make_small("fig7a", "independent", "a"),
    ),
    "fig7b": FigureSpec(
        "fig7b",
        "small independent: vary |T| (probing vs join)",
        _make_small("fig7b", "independent", "b"),
    ),
    "fig7c": FigureSpec(
        "fig7c",
        "small independent: vary d (probing vs join)",
        _make_small("fig7c", "independent", "c"),
        500.0,
    ),
    "fig8a": FigureSpec(
        "fig8a",
        "large anti-correlated: vary |P| (NLB/CLB/ALB)",
        _make_large("fig8a", "anti_correlated", "a"),
        200.0,
    ),
    "fig8b": FigureSpec(
        "fig8b",
        "large anti-correlated: vary |T| (NLB/CLB/ALB)",
        _make_large("fig8b", "anti_correlated", "b"),
        200.0,
    ),
    "fig8c": FigureSpec(
        "fig8c",
        "large anti-correlated: vary d (NLB/CLB/ALB)",
        _make_large("fig8c", "anti_correlated", "c"),
        200.0,
    ),
    "fig9a": FigureSpec(
        "fig9a",
        "large independent: vary |P| (NLB/CLB/ALB)",
        _make_large("fig9a", "independent", "a"),
        200.0,
    ),
    "fig9b": FigureSpec(
        "fig9b",
        "large independent: vary |T| (NLB/CLB/ALB)",
        _make_large("fig9b", "independent", "b"),
        200.0,
    ),
    "fig9c": FigureSpec(
        "fig9c",
        "large independent: vary d (NLB/CLB/ALB)",
        _make_large("fig9c", "independent", "c"),
        200.0,
    ),
    "fig10": FigureSpec(
        "fig10", "large anti-correlated: progressiveness over k", _fig10
    ),
    "fig11": FigureSpec(
        "fig11", "large independent: progressiveness over k", _fig11
    ),
}


def run_figure(
    figure_id: str,
    scale: Optional[float] = None,
    quick: bool = False,
) -> FigureResult:
    """Regenerate one figure.

    Args:
        figure_id: a key of :data:`FIGURES` (e.g. ``"fig6a"``).
        scale: cardinality divisor versus the paper; defaults to the
            ``SKYUP_BENCH_SCALE`` environment variable, then the figure's
            own default.
        quick: trim sweeps to endpoints (smoke-test mode).
    """
    if figure_id not in FIGURES:
        raise ConfigurationError(
            f"unknown figure {figure_id!r}; known: {sorted(FIGURES)}"
        )
    spec = FIGURES[figure_id]
    if scale is None:
        env = os.environ.get(SCALE_ENV_VAR)
        scale = float(env) if env else spec.default_scale
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    return spec.builder(scale, quick)
