"""Terminal rendering of figure results: log-scale ASCII charts.

The paper's figures are log-scale line/bar charts of execution time.  With
no plotting dependency available, :func:`render_series_chart` draws the
same information as a horizontal bar chart per (x, series) cell, scaled
logarithmically so the orders-of-magnitude gaps the paper emphasizes are
visible at a glance.  ``skyup figure <id> --chart`` uses it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.bench.figures import FigureResult

_BAR_WIDTH = 46
_BAR_CHAR = "█"


def render_series_chart(result: FigureResult, width: int = _BAR_WIDTH) -> str:
    """Render a :class:`FigureResult` as a log-scale ASCII bar chart.

    Args:
        result: the regenerated figure.
        width: maximum bar width in characters.

    Returns:
        A multi-line string; one group of bars per x value, one bar per
        series, annotated with the measured seconds.
    """
    lines = [f"{result.figure_id}: {result.title}", ""]
    labels = list(result.series)
    if not labels:
        return "\n".join(lines + ["(no series)"])
    values = [
        seconds
        for cells in result.series.values()
        for _, seconds, _ in cells
    ]
    positive = [v for v in values if v > 0]
    if not positive:
        return "\n".join(lines + ["(all measurements are zero)"])
    lo = min(positive)
    hi = max(positive)
    span = math.log10(hi / lo) if hi > lo else 1.0
    label_width = max(len(label) for label in labels) + 2

    xs = [cell[0] for cell in result.series[labels[0]]]
    for i, x in enumerate(xs):
        lines.append(f"{result.xlabel} = {x}")
        for label in labels:
            _, seconds, _ = result.series[label][i]
            lines.append(
                f"  {label.ljust(label_width)}"
                f"{_bar(seconds, lo, span, width)} {seconds:.4f}s"
            )
        lines.append("")
    lines.append(
        f"(log scale: {lo:.4g}s .. {hi:.4g}s over {width} columns)"
    )
    return "\n".join(lines)


def _bar(seconds: float, lo: float, span: float, width: int) -> str:
    if seconds <= 0:
        return ""
    frac = math.log10(seconds / lo) / span if span else 1.0
    filled = max(1, int(round(frac * (width - 1))) + 1)
    return _BAR_CHAR * min(filled, width)


def render_speedups(
    result: FigureResult, baseline: str
) -> List[Tuple[str, Dict[str, float]]]:
    """Per-x speedup factors of every series against ``baseline``.

    Returns:
        ``[(x, {series: baseline_seconds / series_seconds}), ...]`` — the
        "join outperforms probing by N×" statements of §IV, computed.
    """
    if baseline not in result.series:
        raise KeyError(
            f"baseline {baseline!r} not among series {list(result.series)}"
        )
    base_cells = result.series[baseline]
    out: List[Tuple[str, Dict[str, float]]] = []
    for i, (x, base_seconds, _) in enumerate(base_cells):
        row: Dict[str, float] = {}
        for label, cells in result.series.items():
            if label == baseline:
                continue
            seconds = cells[i][1]
            row[label] = base_seconds / seconds if seconds > 0 else math.inf
        out.append((x, row))
    return out
