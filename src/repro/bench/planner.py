"""Planner-quality benchmark: chosen plan vs every fixed plan.

For each recorded workload (small/large catalog, d in {2, 4}, varying
k) every fixed physical plan is executed and timed, then the planner's
adaptive loop is replayed against those measurements: plan, observe the
chosen plan's measured runtime, re-plan if the feedback bumped the
planner version.  The acceptance bar — the planner-chosen plan stays
within 15% of the best fixed plan and is never the worst — is evaluated
per row and summarized.  ``skyup bench-planner`` is the CLI wrapper;
``benchmarks/results/BENCH_planner.json`` records a run at the
reference scale.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.types import UpgradeConfig
from repro.exceptions import ConfigurationError
from repro.instrumentation import Counters
from repro.plan import (
    LogicalPlan,
    PhysicalPlan,
    Planner,
    execute_plan,
    profile_catalog,
)

#: (name, |P|, |T|) of the recorded catalogs.  Small enough to finish in
#: minutes, large enough that the fixed plans separate clearly.
DEFAULT_SIZES: Tuple[Tuple[str, int, int], ...] = (
    ("small", 1200, 500),
    ("large", 6000, 1200),
)

#: The acceptance band: planner-chosen runtime / best fixed runtime.
WITHIN_FACTOR = 1.15

_CONFIG = UpgradeConfig()


def _fixed_plans(
    n_competitors: int, dims: int, include_basic: bool
) -> List[PhysicalPlan]:
    plans = [
        PhysicalPlan(method="join", bound="nlb"),
        PhysicalPlan(method="join", bound="clb"),
        PhysicalPlan(method="join", bound="alb"),
        PhysicalPlan(method="probing"),
    ]
    if include_basic:
        plans.append(PhysicalPlan(method="basic-probing"))
    return plans


def run_planner_bench(
    sizes: Sequence[Tuple[str, int, int]] = DEFAULT_SIZES,
    dims_list: Sequence[int] = (2, 4),
    k_values: Sequence[int] = (1, 10, 50),
    repeats: int = 2,
    seed: int = 2012,
    adapt_rounds: int = 4,
    distribution: str = "independent",
    include_basic: Optional[bool] = None,
) -> Dict[str, object]:
    """Measure planner choices against the fixed-plan grid.

    Args:
        sizes: ``(name, |P|, |T|)`` catalogs to record.
        dims_list: dimensionalities to cover.
        k_values: result depths per workload.
        repeats: timing repetitions per fixed plan (best is kept).
        seed: workload seed.
        adapt_rounds: feedback rounds the planner gets per row (each
            round observes the chosen plan's measured runtime and
            re-plans if the version moved).
        distribution: synthetic competitor distribution.
        include_basic: force basic probing into the fixed grid; by
            default it only runs on the smallest 2-d workload (it is
            quadratic and exists to be the recorded worst case).

    Returns:
        A JSON-ready report with one row per (workload, k) and a
        summary of the acceptance criteria.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    if adapt_rounds < 1:
        raise ConfigurationError(
            f"adapt_rounds must be >= 1, got {adapt_rounds}"
        )
    from repro.bench.workloads import synthetic_workload

    rows: List[Dict[str, object]] = []
    smallest = min(n_p for _, n_p, _ in sizes)
    for size_name, n_p, n_t in sizes:
        for dims in dims_list:
            wl = synthetic_workload(distribution, n_p, n_t, dims, seed=seed)
            basic = (
                include_basic
                if include_basic is not None
                else (n_p == smallest and dims == 2)
            )
            plans = _fixed_plans(n_p, dims, basic)
            profile = profile_catalog(
                wl.competitor_tree,
                len(wl.products),
                dims,
                product_tree=wl.product_tree,
            )
            # One untimed pass per plan warms caches and allocator pools
            # so the first timed row of a fresh workload is not charged
            # for them.
            for plan in plans:
                execute_plan(
                    plan,
                    wl.competitor_tree,
                    wl.products,
                    wl.cost_model,
                    min(k_values),
                    _CONFIG,
                    max_entries=wl.max_entries,
                    product_tree=wl.product_tree,
                )
            for k in k_values:
                # Interleave repeats round-robin across plans: slow
                # drift (frequency scaling, background load) then hits
                # every plan in a round equally instead of biasing
                # whichever plan was measured back-to-back during it;
                # best-of-rounds per plan discards the bad rounds.
                best: Dict[str, Tuple[float, Counters]] = {
                    plan.label: (float("inf"), Counters())
                    for plan in plans
                }
                for _ in range(repeats):
                    for plan in plans:
                        outcome = execute_plan(
                            plan,
                            wl.competitor_tree,
                            wl.products,
                            wl.cost_model,
                            k,
                            _CONFIG,
                            max_entries=wl.max_entries,
                            product_tree=wl.product_tree,
                        )
                        if outcome.report.elapsed_s < best[plan.label][0]:
                            best[plan.label] = (
                                outcome.report.elapsed_s,
                                outcome.report.counters,
                            )
                measured: Dict[str, Tuple[float, Counters]] = dict(best)
                rows.append(
                    _evaluate_row(
                        size_name, n_p, n_t, dims, k,
                        profile, measured, adapt_rounds,
                    )
                )
    within = [bool(r["within_15pct_of_best"]) for r in rows]
    not_worst = [bool(r["not_worst"]) for r in rows]
    wins = sum(
        1 for r in rows if r["planner"]["chosen"] == r["best"]["label"]
    )
    return {
        "bench": "planner",
        "config": {
            "sizes": [list(s) for s in sizes],
            "dims": list(dims_list),
            "k_values": list(k_values),
            "repeats": repeats,
            "adapt_rounds": adapt_rounds,
            "distribution": distribution,
            "seed": seed,
            "within_factor": WITHIN_FACTOR,
        },
        "rows": rows,
        "summary": {
            "rows": len(rows),
            "all_within_15pct_of_best": all(within),
            "never_worst": all(not_worst),
            "planner_chose_best": wins,
        },
    }


def _evaluate_row(
    size_name: str,
    n_p: int,
    n_t: int,
    dims: int,
    k: int,
    profile,
    measured: Dict[str, Tuple[float, Counters]],
    adapt_rounds: int,
) -> Dict[str, object]:
    """Replay the planner's adaptive loop against measured runtimes."""
    planner = Planner()
    logical = LogicalPlan(k=k, profile=profile)
    planned = planner.plan(logical)
    initial = planned.plan.label
    for _ in range(adapt_rounds):
        label = planned.plan.label
        if label not in measured:
            break
        elapsed, counters = measured[label]
        version = planner.version
        planner.observe(planned, elapsed, counters)
        if planner.version == version:
            break
        planned = planner.plan(logical)
    chosen = planned.plan.label
    # The chosen plan's runtime is its fixed measurement — identical
    # work, so choice quality is compared free of re-timing noise.
    planner_s = measured.get(chosen, (float("inf"), None))[0]
    by_time = sorted(measured.items(), key=lambda item: item[1][0])
    best_label, (best_s, _) = by_time[0]
    worst_label, (worst_s, _) = by_time[-1]
    return {
        "workload": f"{size_name}-d{dims}",
        "n_competitors": n_p,
        "n_products": n_t,
        "dims": dims,
        "k": k,
        "fixed_s": {label: s for label, (s, _) in measured.items()},
        "planner": {
            "initial": initial,
            "chosen": chosen,
            "seconds": planner_s,
            "replans": planner.stats()["replans"],
        },
        "best": {"label": best_label, "seconds": best_s},
        "worst": {"label": worst_label, "seconds": worst_s},
        "within_15pct_of_best": planner_s <= WITHIN_FACTOR * best_s,
        "not_worst": len(measured) == 1 or chosen != worst_label,
    }


def format_planner_report(report: Dict[str, object]) -> str:
    """Human-readable table for the CLI."""
    lines = [
        "planner bench "
        f"(within ≤ {report['config']['within_factor']}× best)",
        f"{'workload':<12} {'k':>4}  {'chosen':<16} {'best':<16} "
        f"{'ratio':>6}  ok",
    ]
    for row in report["rows"]:
        planner = row["planner"]
        best = row["best"]
        ratio = (
            planner["seconds"] / best["seconds"]
            if best["seconds"] > 0
            else float("inf")
        )
        ok = row["within_15pct_of_best"] and row["not_worst"]
        lines.append(
            f"{row['workload']:<12} {row['k']:>4}  "
            f"{planner['chosen']:<16} {best['label']:<16} "
            f"{ratio:>6.2f}  {'yes' if ok else 'NO'}"
        )
    summary = report["summary"]
    lines.append(
        f"rows={summary['rows']} "
        f"within={summary['all_within_15pct_of_best']} "
        f"never_worst={summary['never_worst']} "
        f"chose_best={summary['planner_chose_best']}"
    )
    return "\n".join(lines)
