"""Uniform algorithm runners for benchmark cells.

Every experiment cell — one (algorithm, workload, k) combination — runs
through :func:`run_cell`, which returns the algorithm's
:class:`~repro.instrumentation.RunReport` (wall-clock plus scale-free work
counters).  Index construction happens outside the measured region, like
the paper's data-loading exclusion.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.workloads import Workload
from repro.core.join import JoinUpgrader
from repro.core.probing import (
    basic_probing,
    batch_probing,
    improved_probing,
)
from repro.core.types import UpgradeConfig, UpgradeOutcome
from repro.exceptions import ConfigurationError

#: Algorithm labels accepted by :func:`run_cell`.
ALGORITHMS = (
    "basic-probing",
    "probing",
    "batch-probing",
    "join-nlb",
    "join-clb",
    "join-alb",
    "join-max",
)

_DEFAULT_CONFIG = UpgradeConfig()


def run_cell(
    algorithm: str,
    workload: Workload,
    k: int = 1,
    config: UpgradeConfig = _DEFAULT_CONFIG,
    lbc_mode: str = "corrected",
    t_limit: Optional[int] = None,
) -> UpgradeOutcome:
    """Execute one benchmark cell and return its outcome.

    Args:
        algorithm: one of :data:`ALGORITHMS` (``join-*`` selects the
            join-list bound).
        workload: the dataset (indexes are built outside the timed region
            on first access).
        k: number of results requested.
        config: Algorithm 1 configuration.
        lbc_mode: per-pair LBC variant for join algorithms.
        t_limit: probe only the first ``t_limit`` products (probing
            algorithms only) — used by the quick benchmark mode to keep
            deliberately-slow baselines bounded; always ``None`` for
            figure-faithful runs.

    Returns:
        The algorithm's :class:`~repro.core.types.UpgradeOutcome`.
    """
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
        )
    if algorithm.startswith("join-"):
        bound = algorithm.split("-", 1)[1]
        tree_p = workload.competitor_tree
        tree_t = workload.product_tree
        upgrader = JoinUpgrader(
            tree_p,
            tree_t,
            workload.cost_model,
            bound=bound,
            config=config,
            lbc_mode=lbc_mode,
        )
        return upgrader.run(k)

    products = workload.products
    if t_limit is not None:
        products = products[:t_limit]
    tree_p = workload.competitor_tree
    if algorithm == "probing":
        return improved_probing(
            tree_p, products, workload.cost_model, k, config
        )
    if algorithm == "batch-probing":
        return batch_probing(
            tree_p, products, workload.cost_model, k, config
        )
    return basic_probing(tree_p, products, workload.cost_model, k, config)
