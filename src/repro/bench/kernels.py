"""Scalar-vs-kernel microbenchmarks for the columnar hot paths.

One cell per kernel (:mod:`repro.kernels`): the same workload is executed
with the global switch off (the scalar oracle) and on (the columnar path),
outputs are cross-checked, and the speedup recorded.  ``skyup
bench-kernels`` is the CLI wrapper; ``benchmarks/results/BENCH_kernels.json``
records a baseline produced by it at the ISSUE's reference scale.

Timings take the best of ``repeats`` runs — the kernels are deterministic,
so the minimum is the least-noise estimate.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.core.bounds import BOUND_NAMES, lbc, pair_bounds_vector
from repro.core.dominators import get_dominating_skyline
from repro.core.join import JoinUpgrader
from repro.core.probing import batch_probing
from repro.core.types import UpgradeConfig
from repro.core.upgrade import upgrade
from repro.data.generators import generate
from repro.exceptions import ConfigurationError, UnknownOptionError
from repro.kernels.switch import use_kernels
from repro.skyline.bbs import bbs_skyline
from repro.skyline.bnl import bnl_skyline

Cell = Dict[str, object]


def _timed(
    fn: Callable[[], object], enabled: bool, repeats: int
) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time of ``fn`` under the given switch state."""
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        with use_kernels(enabled):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
    return best, result


def _cell(
    name: str,
    fn: Callable[[], object],
    agree: Callable[[object, object], bool],
    repeats: int,
) -> Cell:
    scalar_s, scalar_out = _timed(fn, False, repeats)
    kernel_s, kernel_out = _timed(fn, True, repeats)
    return {
        "cell": name,
        "scalar_s": scalar_s,
        "kernel_s": kernel_s,
        "speedup": scalar_s / kernel_s if kernel_s > 0 else float("inf"),
        "agree": bool(agree(scalar_out, kernel_out)),
    }


def _costs(outcome) -> List[float]:
    return [r.cost for r in outcome.results]


def run_kernel_bench(
    n_competitors: int = 20000,
    n_products: int = 2000,
    dims: int = 4,
    distribution: str = "independent",
    bound: str = "clb",
    seed: int = 2012,
    repeats: int = 3,
    probe_sample: int = 64,
    method: str = "join",
) -> Dict[str, object]:
    """Run every scalar-vs-kernel cell; returns a JSON-ready report.

    Args:
        n_competitors: market size ``|P|`` (must be >= 1).
        n_products: catalog size ``|T|`` (must be >= 1).
        dims: dimensionality of the product space.
        distribution: competitor distribution (the paper's synthetic
            layouts); products use the same distribution shifted upward.
        bound: join-list bound for the end-to-end join cell.
        seed: workload seed.
        repeats: timing repetitions per path (best is reported).
        probe_sample: how many products the per-product cells probe.
        method: algorithm of the end-to-end cell — ``"join"`` (the
            recorded baseline), any other fixed method, or ``"auto"``
            (planner-chosen; the report then names the chosen physical
            plan).

    Raises:
        ConfigurationError: on non-positive sizes or an unknown ``bound``
            or ``method``.
    """
    if n_competitors < 1 or n_products < 1:
        raise ConfigurationError(
            "n_competitors and n_products must be >= 1, got "
            f"{n_competitors} and {n_products}"
        )
    if bound not in BOUND_NAMES:
        raise UnknownOptionError("bound", bound, BOUND_NAMES)
    from repro.core.api import METHODS

    if method not in METHODS:
        raise UnknownOptionError("method", method, METHODS)
    from repro.bench.workloads import synthetic_workload

    wl = synthetic_workload(
        distribution, n_competitors, n_products, dims, seed=seed
    )
    model = wl.cost_model
    config = UpgradeConfig()
    rng = np.random.default_rng(seed + 1)
    sample = wl.products[
        rng.choice(
            len(wl.products),
            size=min(probe_sample, len(wl.products)),
            replace=False,
        )
    ]
    probes = [tuple(float(v) for v in row) for row in sample]
    tree = wl.competitor_tree  # built once, outside the timed regions

    cells: List[Cell] = []

    # BBS global skyline: the SkylineBuffer dominance test is the hot loop.
    cells.append(
        _cell(
            "bbs_skyline",
            lambda: bbs_skyline(tree),
            lambda a, b: a == b,
            repeats,
        )
    )

    # Algorithm 3 over a sample of products.
    cells.append(
        _cell(
            "dominating_skyline",
            lambda: [get_dominating_skyline(tree, t) for t in probes],
            lambda a, b: a == b,
            repeats,
        )
    )

    # Algorithm 1 on a large antichain (anti-correlated clouds maximize
    # skyline sizes, which is where the batched pricing pays off).
    cloud = generate("anti_correlated", 4000, dims, seed=seed + 2)
    antichain = bnl_skyline([tuple(row) for row in np.abs(cloud) + 0.05])
    target = tuple(
        float(max(s[d] for s in antichain) + 0.25) for d in range(dims)
    )
    cells.append(
        _cell(
            "upgrade",
            lambda: [
                upgrade(antichain, target, model, config)
                for _ in range(32)
            ][-1],
            lambda a, b: a[1] == b[1] and abs(a[0] - b[0]) <= 1e-9,
            repeats,
        )
    )

    # Per-pair lower bounds over one big join list.  The switch does not
    # gate these entry points, so the two paths are invoked explicitly.
    jl = min(512, max(8, n_competitors // 8))
    t_low = tuple(1.0 + rng.random(dims))
    lows = 0.05 + rng.random((jl, dims))
    highs = lows + rng.random((jl, dims)) * 0.5

    def _scalar_pairs() -> List[Tuple[float, bytes]]:
        return [
            lbc(t_low, tuple(lo), tuple(hi), model)
            for lo, hi in zip(lows, highs)
        ]

    scalar_s, scalar_pairs = _timed(_scalar_pairs, False, repeats)
    kernel_s, kernel_pairs = _timed(
        lambda: pair_bounds_vector(t_low, lows, highs, model), True, repeats
    )
    cells.append(
        {
            "cell": f"pair_bounds[jl={jl}]",
            "scalar_s": scalar_s,
            "kernel_s": kernel_s,
            "speedup": scalar_s / kernel_s if kernel_s > 0 else float("inf"),
            "agree": all(
                vs == ss and abs(vb - sb) <= 1e-9
                for (vb, vs), (sb, ss) in zip(kernel_pairs, scalar_pairs)
            ),
        }
    )

    # End to end: amortized probing over the full catalog.
    cells.append(
        _cell(
            "probing_batch",
            lambda: batch_probing(tree, wl.products, model, k=5),
            lambda a, b: np.allclose(_costs(a), _costs(b), atol=1e-9),
            repeats,
        )
    )

    # End to end: the chosen method (the R-tree join by default).
    chosen_plan: Dict[str, str] = {}
    if method == "join":
        product_tree = wl.product_tree
        cells.append(
            _cell(
                f"join[{bound}]",
                lambda: JoinUpgrader(
                    tree, product_tree, model, bound=bound
                ).run(k=5),
                lambda a, b: np.allclose(_costs(a), _costs(b), atol=1e-9),
                repeats,
            )
        )
        chosen_plan["end_to_end"] = f"join[{bound}]"
    else:
        from repro.core.api import top_k_upgrades

        def _end_to_end():
            outcome = top_k_upgrades(
                wl.competitors,
                wl.products,
                k=5,
                cost_model=model,
                method=method,
                bound=bound,
            )
            chosen_plan["end_to_end"] = outcome.report.extras.get(
                "plan", method
            )
            return outcome

        cells.append(
            _cell(
                f"end_to_end[{method}]",
                _end_to_end,
                lambda a, b: np.allclose(_costs(a), _costs(b), atol=1e-9),
                repeats,
            )
        )

    return {
        "workload": {
            "distribution": distribution,
            "competitors": n_competitors,
            "products": n_products,
            "dims": dims,
            "bound": bound,
            "method": method,
            "chosen_plan": chosen_plan.get("end_to_end"),
            "seed": seed,
            "repeats": repeats,
            "upgrade_skyline_size": len(antichain),
        },
        "cells": cells,
        "all_agree": all(c["agree"] for c in cells),
    }


def format_kernel_report(report: Dict[str, object]) -> str:
    """Human-readable scalar-vs-kernel table for the CLI."""
    wl = report["workload"]
    lines = [
        (
            f"# bench-kernels: |P|={wl['competitors']} |T|={wl['products']} "
            f"d={wl['dims']} {wl['distribution']} bound={wl['bound']} "
            f"(best of {wl['repeats']})"
            + (
                f" plan={wl['chosen_plan']}"
                if wl.get("method", "join") != "join"
                and wl.get("chosen_plan")
                else ""
            )
        ),
        (
            f"{'cell':24s} {'scalar_s':>10s} {'kernel_s':>10s} "
            f"{'speedup':>8s} {'agree':>6s}"
        ),
    ]
    for cell in report["cells"]:
        lines.append(
            f"{cell['cell']:24s} {cell['scalar_s']:10.4f} "
            f"{cell['kernel_s']:10.4f} {cell['speedup']:7.2f}x "
            f"{'yes' if cell['agree'] else 'NO':>6s}"
        )
    verdict = "all cells agree" if report["all_agree"] else (
        "AGREEMENT FAILURE — kernel and scalar outputs differ"
    )
    lines.append(f"[{verdict}]")
    return "\n".join(lines)
