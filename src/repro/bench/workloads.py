"""Workload construction and caching for the experiment harness.

A :class:`Workload` bundles the competitor/product arrays with lazily built
R-trees and the paper's cost model.  Construction is cached process-wide
(keyed by the full parameter tuple) because benchmark parametrizations
revisit the same workload many times and index building would otherwise
dominate the measurements — the paper likewise excludes data loading from
its timings (§IV-A).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.costs.model import CostModel, paper_cost_model
from repro.data.generators import paper_workload
from repro.data.wine import wine_split
from repro.rtree.tree import RTree


class Workload:
    """One experiment dataset: arrays, lazily built indexes, cost model."""

    def __init__(
        self,
        name: str,
        competitors: "np.ndarray",
        products: "np.ndarray",
        max_entries: int = 32,
    ):
        self.name = name
        self.competitors = competitors
        self.products = products
        self.max_entries = max_entries
        self._tree_p: Optional[RTree] = None
        self._tree_t: Optional[RTree] = None
        self._cost_model: Optional[CostModel] = None

    @property
    def dims(self) -> int:
        """Dimensionality of the product space."""
        return int(self.products.shape[1])

    @property
    def competitor_tree(self) -> RTree:
        """The bulk-loaded R-tree over ``P`` (built on first use)."""
        if self._tree_p is None:
            self._tree_p = RTree.bulk_load(
                self.competitors, max_entries=self.max_entries
            )
        return self._tree_p

    @property
    def product_tree(self) -> RTree:
        """The bulk-loaded R-tree over ``T`` (built on first use)."""
        if self._tree_t is None:
            self._tree_t = RTree.bulk_load(
                self.products, max_entries=self.max_entries
            )
        return self._tree_t

    @property
    def cost_model(self) -> CostModel:
        """The paper's summation-of-reciprocals cost model."""
        if self._cost_model is None:
            self._cost_model = paper_cost_model(self.dims)
        return self._cost_model

    def __repr__(self) -> str:
        return (
            f"Workload({self.name!r}, |P|={len(self.competitors)}, "
            f"|T|={len(self.products)}, d={self.dims})"
        )


_CACHE: Dict[Tuple, Workload] = {}


def synthetic_workload(
    distribution: str,
    p_size: int,
    t_size: int,
    dims: int,
    seed: int = 2012,
    max_entries: int = 32,
) -> Workload:
    """Return (cached) the paper's synthetic layout at the given sizes.

    ``P`` uniform/correlated/anti-correlated in ``[0,1]^dims``, ``T`` the
    same distribution shifted into ``(1,2]^dims`` (§IV-C/D).
    """
    key = ("synthetic", distribution, p_size, t_size, dims, seed, max_entries)
    if key not in _CACHE:
        competitors, products = paper_workload(
            distribution, p_size, t_size, dims, seed=seed
        )
        name = f"{distribution}-P{p_size}-T{t_size}-d{dims}"
        _CACHE[key] = Workload(name, competitors, products, max_entries)
    return _CACHE[key]


def wine_workload(
    combo: str = "c,s,t",
    t_size: int = 1000,
    seed: int = 2012,
    max_entries: int = 32,
) -> Workload:
    """Return (cached) the §IV-B wine workload for one attribute combo."""
    key = ("wine", combo, t_size, seed, max_entries)
    if key not in _CACHE:
        competitors, products = wine_split(combo, t_size=t_size, seed=seed)
        _CACHE[key] = Workload(
            f"wine-{combo}", competitors, products, max_entries
        )
    return _CACHE[key]


def serve_session(
    distribution: str = "independent",
    p_size: int = 4000,
    t_size: int = 1500,
    dims: int = 3,
    seed: int = 2012,
    max_entries: int = 32,
):
    """A fresh :class:`~repro.core.session.MarketSession` for serving runs.

    The underlying arrays come from the (cached) synthetic workload; the
    session itself is built fresh per call because serving benchmarks
    mutate it (competitor churn, upgrade commits).
    """
    from repro.core.session import MarketSession

    wl = synthetic_workload(
        distribution, p_size, t_size, dims, seed=seed,
        max_entries=max_entries,
    )
    return MarketSession.from_points(
        wl.competitors, wl.products, max_entries=max_entries
    )


def clear_cache() -> None:
    """Drop every cached workload (tests use this to bound memory)."""
    _CACHE.clear()
