"""Cost functions: attribute costs, integration functions, product cost model.

Implements Definitions 4–6 of the paper.  An *attribute cost function* maps a
single attribute value to a manufacturing cost; an *integration function*
combines per-attribute costs into a *product cost function*; the
:class:`~repro.costs.model.CostModel` bundles everything, including the
monotonicity property the paper assumes (a dominating product never costs
less than a product it dominates).
"""

from repro.costs.attribute import (
    AttributeCost,
    ExponentialCost,
    LinearCost,
    PiecewiseLinearCost,
    PowerCost,
    ReciprocalCost,
)
from repro.costs.integration import (
    IntegrationFunction,
    SumIntegration,
    WeightedSumIntegration,
)
from repro.costs.calibration import FitResult, fit_attribute_cost
from repro.costs.model import CostModel, check_monotonic, paper_cost_model

__all__ = [
    "AttributeCost",
    "CostModel",
    "ExponentialCost",
    "FitResult",
    "IntegrationFunction",
    "LinearCost",
    "PiecewiseLinearCost",
    "PowerCost",
    "ReciprocalCost",
    "SumIntegration",
    "WeightedSumIntegration",
    "check_monotonic",
    "fit_attribute_cost",
    "paper_cost_model",
]
