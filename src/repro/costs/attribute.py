"""Attribute cost functions (Definition 4).

Under the smaller-is-better dominance convention, a *better* attribute value
is a *smaller* one, and manufacturing a better value costs more.  Every
attribute cost function shipped here is therefore non-increasing in the
attribute value; :func:`repro.costs.model.check_monotonic` verifies the
property empirically for user-supplied functions.

The paper's experiments use the reciprocal form ``f_a(v) = 1 / (v + eps)``
(:class:`ReciprocalCost`).  The others model plausible alternatives (linear
budgets, power-law and exponential economies of scale, piecewise tariffs) and
are exercised by the ablation benchmarks.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence, Tuple

from repro.exceptions import CostFunctionError


class AttributeCost(ABC):
    """A map from one attribute's value to a manufacturing cost."""

    @abstractmethod
    def __call__(self, value: float) -> float:
        """Return the cost of producing attribute value ``value``."""

    def vector(self, values):
        """Vectorized evaluation over a numpy array of values.

        Subclasses with a closed-form numpy implementation override this;
        the default raises :class:`NotImplementedError`, signalling callers
        (see :meth:`repro.costs.model.CostModel.supports_vectorization`)
        to use the scalar path.  Overrides must agree with ``__call__`` to
        within floating-point associativity.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable formula, used in experiment reports."""
        return type(self).__name__


class ReciprocalCost(AttributeCost):
    """``f_a(v) = scale / (v + offset)`` — the paper's experimental choice.

    The ``offset`` keeps the cost finite as values approach the domain floor.
    It must exceed the upgrade epsilon used by Algorithm 1 so that an
    upgraded value ``s.d_k - eps`` with ``s.d_k >= 0`` still yields a finite
    positive cost; :class:`repro.core.upgrade.UpgradeConfig` enforces this.
    """

    __slots__ = ("scale", "offset")

    def __init__(self, scale: float = 1.0, offset: float = 1e-3):
        if scale <= 0:
            raise CostFunctionError(f"scale must be positive, got {scale}")
        if offset <= 0:
            raise CostFunctionError(f"offset must be positive, got {offset}")
        self.scale = float(scale)
        self.offset = float(offset)

    def __call__(self, value: float) -> float:
        denominator = value + self.offset
        if denominator <= 0:
            raise CostFunctionError(
                f"reciprocal cost undefined at value={value} "
                f"(offset={self.offset}); decrease the upgrade epsilon or "
                "increase the cost offset"
            )
        return self.scale / denominator

    def vector(self, values):
        import numpy as np

        denominator = np.asarray(values, dtype=np.float64) + self.offset
        if np.any(denominator <= 0):
            bad = float(np.asarray(values).ravel()[0])
            raise CostFunctionError(
                f"reciprocal cost undefined at or below value={bad} "
                f"(offset={self.offset})"
            )
        return self.scale / denominator

    def describe(self) -> str:
        return f"{self.scale:g}/(v+{self.offset:g})"


class LinearCost(AttributeCost):
    """``f_a(v) = intercept - slope * v`` with ``slope >= 0``."""

    __slots__ = ("intercept", "slope")

    def __init__(self, intercept: float = 1.0, slope: float = 1.0):
        if slope < 0:
            raise CostFunctionError(f"slope must be non-negative, got {slope}")
        self.intercept = float(intercept)
        self.slope = float(slope)

    def __call__(self, value: float) -> float:
        return self.intercept - self.slope * value

    def vector(self, values):
        import numpy as np

        return self.intercept - self.slope * np.asarray(
            values, dtype=np.float64
        )

    def describe(self) -> str:
        return f"{self.intercept:g}-{self.slope:g}*v"


class PowerCost(AttributeCost):
    """``f_a(v) = scale * (v + offset) ** -exponent`` with ``exponent > 0``."""

    __slots__ = ("scale", "offset", "exponent")

    def __init__(
        self, scale: float = 1.0, offset: float = 1e-3, exponent: float = 2.0
    ):
        if scale <= 0:
            raise CostFunctionError(f"scale must be positive, got {scale}")
        if offset <= 0:
            raise CostFunctionError(f"offset must be positive, got {offset}")
        if exponent <= 0:
            raise CostFunctionError(
                f"exponent must be positive, got {exponent}"
            )
        self.scale = float(scale)
        self.offset = float(offset)
        self.exponent = float(exponent)

    def __call__(self, value: float) -> float:
        base = value + self.offset
        if base <= 0:
            raise CostFunctionError(
                f"power cost undefined at value={value} (offset={self.offset})"
            )
        return self.scale * base ** (-self.exponent)

    def vector(self, values):
        import numpy as np

        base = np.asarray(values, dtype=np.float64) + self.offset
        if np.any(base <= 0):
            raise CostFunctionError(
                f"power cost undefined at some value (offset={self.offset})"
            )
        return self.scale * base ** (-self.exponent)

    def describe(self) -> str:
        return f"{self.scale:g}*(v+{self.offset:g})^-{self.exponent:g}"


class ExponentialCost(AttributeCost):
    """``f_a(v) = scale * exp(-rate * v)`` with ``rate > 0``."""

    __slots__ = ("scale", "rate")

    def __init__(self, scale: float = 1.0, rate: float = 1.0):
        if scale <= 0:
            raise CostFunctionError(f"scale must be positive, got {scale}")
        if rate <= 0:
            raise CostFunctionError(f"rate must be positive, got {rate}")
        self.scale = float(scale)
        self.rate = float(rate)

    def __call__(self, value: float) -> float:
        return self.scale * math.exp(-self.rate * value)

    def vector(self, values):
        import numpy as np

        return self.scale * np.exp(
            -self.rate * np.asarray(values, dtype=np.float64)
        )

    def describe(self) -> str:
        return f"{self.scale:g}*exp(-{self.rate:g}*v)"


class PiecewiseLinearCost(AttributeCost):
    """A non-increasing piecewise-linear cost defined by breakpoints.

    Args:
        breakpoints: ``(value, cost)`` pairs sorted by value with
            non-increasing costs.  Values outside the breakpoint range are
            extrapolated flat (clamped to the boundary cost), which keeps the
            function monotone everywhere.
    """

    __slots__ = ("_xs", "_ys")

    def __init__(self, breakpoints: Sequence[Tuple[float, float]]):
        if len(breakpoints) < 2:
            raise CostFunctionError("need at least two breakpoints")
        xs = [float(x) for x, _ in breakpoints]
        ys = [float(y) for _, y in breakpoints]
        for a, b in zip(xs, xs[1:]):
            if b <= a:
                raise CostFunctionError(
                    "breakpoint values must be strictly increasing"
                )
        for a, b in zip(ys, ys[1:]):
            if b > a:
                raise CostFunctionError(
                    "breakpoint costs must be non-increasing"
                )
        self._xs = tuple(xs)
        self._ys = tuple(ys)

    def __call__(self, value: float) -> float:
        xs, ys = self._xs, self._ys
        if value <= xs[0]:
            return ys[0]
        if value >= xs[-1]:
            return ys[-1]
        # Binary search for the surrounding segment.
        lo, hi = 0, len(xs) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if xs[mid] <= value:
                lo = mid
            else:
                hi = mid
        span = xs[hi] - xs[lo]
        frac = (value - xs[lo]) / span
        return ys[lo] + frac * (ys[hi] - ys[lo])

    def vector(self, values):
        import numpy as np

        # np.interp clamps outside the breakpoint range, matching __call__.
        return np.interp(
            np.asarray(values, dtype=np.float64), self._xs, self._ys
        )

    def describe(self) -> str:
        return f"piecewise[{len(self._xs)} pts]"
