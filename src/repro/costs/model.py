"""The product cost model (Definitions 5–7).

:class:`CostModel` bundles the per-dimension attribute cost functions with an
integration function and exposes the two operations the algorithms need:

* ``product_cost(point)`` — the paper's ``f_p(p)``;
* ``upgrade_cost(old, new)`` — ``f_p(new) - f_p(old)`` (Definition 7).

It also exposes ``attribute_cost(dim, value)``, used by Algorithm 1's
single-dimension option where only one coordinate changes, and a sampled
monotonicity checker for user-supplied attribute functions.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

from repro.costs.attribute import AttributeCost, ReciprocalCost
from repro.costs.integration import (
    IntegrationFunction,
    SumIntegration,
    WeightedSumIntegration,
)
from repro.exceptions import CostFunctionError, DimensionalityError


class CostModel:
    """Product cost function assembled from attribute costs (Definition 6).

    Args:
        attribute_costs: one :class:`AttributeCost` per dimension.
        integration: how per-attribute costs combine; defaults to the paper's
            summation integration (Equation 1).
    """

    __slots__ = ("attribute_costs", "integration", "_vector_ok")

    def __init__(
        self,
        attribute_costs: Sequence[AttributeCost],
        integration: Optional[IntegrationFunction] = None,
    ):
        costs = tuple(attribute_costs)
        if not costs:
            raise CostFunctionError("need at least one attribute cost")
        if integration is None:
            integration = SumIntegration()
        if isinstance(integration, WeightedSumIntegration) and len(
            integration.weights
        ) != len(costs):
            raise CostFunctionError(
                f"{len(integration.weights)} weights for "
                f"{len(costs)} attribute costs"
            )
        self.attribute_costs = costs
        self.integration = integration
        self._vector_ok: Optional[bool] = None

    # -- core operations ----------------------------------------------------

    @property
    def dims(self) -> int:
        """Dimensionality of the product space this model covers."""
        return len(self.attribute_costs)

    def product_cost(self, point: Sequence[float]) -> float:
        """Return ``f_p(point)`` (Definition 5)."""
        if len(point) != len(self.attribute_costs):
            raise DimensionalityError(
                f"point has {len(point)} coordinates, "
                f"model expects {len(self.attribute_costs)}"
            )
        return self.integration(
            [f(v) for f, v in zip(self.attribute_costs, point)]
        )

    def upgrade_cost(
        self, old: Sequence[float], new: Sequence[float]
    ) -> float:
        """Return ``f_p(new) - f_p(old)`` (Definition 7)."""
        return self.product_cost(new) - self.product_cost(old)

    def attribute_cost(self, dim: int, value: float) -> float:
        """Return ``f_a^dim(value)`` for a single dimension."""
        return self.attribute_costs[dim](value)

    def supports_vectorization(self) -> bool:
        """True iff every attribute cost has a numpy ``vector`` override.

        Hot paths (Algorithm 1 on large skylines) switch to
        :meth:`vector_product_cost` when this holds; custom attribute costs
        without a ``vector`` implementation transparently use the scalar
        path instead.  The probe result is cached per model.
        """
        if self._vector_ok is not None:
            return self._vector_ok
        import numpy as np

        probe = np.zeros(1)
        ok = True
        for f in self.attribute_costs:
            try:
                f.vector(probe)
            except NotImplementedError:
                ok = False
                break
            except (ValueError, ArithmeticError):
                # Defined but unhappy with a zero probe (e.g. domain
                # restrictions): vectorization is still available.
                # Anything else (TypeError, AttributeError, ...) is a
                # broken implementation and should propagate, not be
                # mistaken for "vectorizable".
                continue
        self._vector_ok = ok
        return ok

    def vector_product_cost(self, points) -> "object":
        """Return ``f_p`` for every row of an ``(n, d)`` numpy array.

        Semantically identical to mapping :meth:`product_cost` over the
        rows (up to floating-point associativity of the summation).
        """
        import numpy as np

        matrix = np.asarray(points, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.attribute_costs):
            raise DimensionalityError(
                f"expected an (n, {len(self.attribute_costs)}) array, "
                f"got shape {matrix.shape}"
            )
        columns = [
            f.vector(matrix[:, i])
            for i, f in enumerate(self.attribute_costs)
        ]
        if isinstance(self.integration, WeightedSumIntegration):
            weights = self.integration.weights
            total = np.zeros(matrix.shape[0])
            for w, col in zip(weights, columns):
                total += w * col
            return total
        if isinstance(self.integration, SumIntegration):
            total = np.zeros(matrix.shape[0])
            for col in columns:
                total += col
            return total
        # Arbitrary integration: fall back to per-row evaluation.
        stacked = np.column_stack(columns)
        return np.array([self.integration(row) for row in stacked])

    def describe(self) -> str:
        """Readable summary used by experiment reports."""
        parts = ", ".join(f.describe() for f in self.attribute_costs)
        return f"{self.integration.describe()}({parts})"


def paper_cost_model(
    dims: int,
    offset: float = 1e-3,
    weights: Optional[Sequence[float]] = None,
) -> CostModel:
    """Return the cost model used throughout the paper's empirical study.

    Every dimension gets the reciprocal attribute cost
    ``f_a^i(v) = 1/(v + offset)`` and costs combine by summation
    (or weighted summation when ``weights`` is given).
    """
    if dims < 1:
        raise CostFunctionError(f"dims must be >= 1, got {dims}")
    attribute_costs = [ReciprocalCost(offset=offset) for _ in range(dims)]
    integration: IntegrationFunction
    if weights is None:
        integration = SumIntegration()
    else:
        integration = WeightedSumIntegration(weights)
    return CostModel(attribute_costs, integration)


def check_monotonic(
    model: CostModel,
    low: Sequence[float],
    high: Sequence[float],
    samples_per_dim: int = 5,
) -> None:
    """Empirically verify the dominance-monotonicity assumption of §I-C.

    Samples a grid of points in ``[low, high]`` and checks that whenever
    ``p`` dominates ``q``, ``f_p(p) >= f_p(q)``.  With the shipped attribute
    costs (all non-increasing) and non-negative integration weights the
    property holds analytically; this check guards user-supplied functions.

    Raises:
        CostFunctionError: a dominance/cost inversion was found.
    """
    if len(low) != model.dims or len(high) != model.dims:
        raise DimensionalityError("bounds do not match model dimensionality")
    if samples_per_dim < 2:
        raise CostFunctionError("samples_per_dim must be >= 2")
    axes = []
    for a, b in zip(low, high):
        if a >= b:
            raise CostFunctionError(f"empty sampling interval [{a}, {b}]")
        step = (b - a) / (samples_per_dim - 1)
        axes.append([a + i * step for i in range(samples_per_dim)])
    grid = [tuple(p) for p in itertools.product(*axes)]
    costs = [model.product_cost(p) for p in grid]
    for (p, cp), (q, cq) in itertools.combinations(zip(grid, costs), 2):
        if _dominates(p, q) and cp < cq - 1e-12:
            raise CostFunctionError(
                f"non-monotonic cost model: {p} dominates {q} "
                f"but costs {cp} < {cq}"
            )
        if _dominates(q, p) and cq < cp - 1e-12:
            raise CostFunctionError(
                f"non-monotonic cost model: {q} dominates {p} "
                f"but costs {cq} < {cp}"
            )


def _dominates(p: Tuple[float, ...], q: Tuple[float, ...]) -> bool:
    strict = False
    for a, b in zip(p, q):
        if a > b:
            return False
        if a < b:
            strict = True
    return strict
