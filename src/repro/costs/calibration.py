"""Fitting attribute cost functions to observed data.

Practitioners rarely know their cost curves analytically; they have
(attribute value, manufacturing cost) observations — a bill of materials,
supplier quotes, engineering estimates.  This module fits each shipped
attribute-cost family to such observations by least squares (closed-form,
numpy only) and selects the best-fitting family:

* :class:`~repro.costs.attribute.LinearCost` — ordinary least squares;
* :class:`~repro.costs.attribute.ReciprocalCost` — linear in the
  transformed regressor ``1 / (v + offset)`` with the offset chosen by a
  small grid search;
* :class:`~repro.costs.attribute.ExponentialCost` — log-linear least
  squares (requires positive costs);
* :class:`~repro.costs.attribute.PiecewiseLinearCost` — isotonic-style
  fit on binned means, constrained non-increasing.

Fits are clamped to the monotone (non-increasing) families the upgrading
algorithms require; a fit that would slope upward degrades to the flattest
member of its family and reports a poor score, so selection naturally
avoids it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.costs.attribute import (
    AttributeCost,
    ExponentialCost,
    LinearCost,
    PiecewiseLinearCost,
    ReciprocalCost,
)
from repro.exceptions import CostFunctionError


@dataclass(frozen=True)
class FitResult:
    """One fitted candidate: the cost function and its fit quality."""

    cost: AttributeCost
    family: str
    rmse: float

    def __repr__(self) -> str:
        return (
            f"FitResult({self.family}: {self.cost.describe()}, "
            f"rmse={self.rmse:.4g})"
        )


def _as_arrays(
    values: Sequence[float], costs: Sequence[float]
) -> Tuple["np.ndarray", "np.ndarray"]:
    v = np.asarray(values, dtype=np.float64)
    c = np.asarray(costs, dtype=np.float64)
    if v.ndim != 1 or c.ndim != 1 or len(v) != len(c):
        raise CostFunctionError(
            "values and costs must be equal-length 1-d sequences"
        )
    if len(v) < 3:
        raise CostFunctionError("need at least 3 observations to fit")
    if np.ptp(v) == 0:
        raise CostFunctionError("observations cover a single value")
    return v, c


def _rmse(cost: AttributeCost, v: "np.ndarray", c: "np.ndarray") -> float:
    predicted = cost.vector(v)
    return float(np.sqrt(np.mean((predicted - c) ** 2)))


def fit_linear(
    values: Sequence[float], costs: Sequence[float]
) -> FitResult:
    """Least-squares :class:`LinearCost` (slope clamped non-negative)."""
    v, c = _as_arrays(values, costs)
    slope, intercept = np.polyfit(v, c, 1)
    slope = -float(slope)
    if slope < 0:  # upward-sloping data: degrade to the flat member
        slope = 0.0
        intercept = float(np.mean(c))
    fitted = LinearCost(intercept=float(intercept), slope=slope)
    return FitResult(fitted, "linear", _rmse(fitted, v, c))


def fit_reciprocal(
    values: Sequence[float],
    costs: Sequence[float],
    offsets: Optional[Sequence[float]] = None,
) -> FitResult:
    """Least-squares :class:`ReciprocalCost` over an offset grid.

    For each candidate ``offset``, ``cost ~ scale / (v + offset)`` is
    linear in ``1 / (v + offset)`` with a zero intercept; the scale is the
    ratio-of-moments least-squares solution.  The best offset on a coarse
    log grid is then refined by two rounds of local grid search.
    """
    v, c = _as_arrays(values, costs)
    span = float(np.ptp(v)) or 1.0
    if offsets is None:
        offsets = [
            span * f
            for f in np.logspace(-4, 0.5, 24)
        ]

    def evaluate(offset: float) -> Optional[FitResult]:
        if np.any(v + offset <= 0):
            return None
        x = 1.0 / (v + offset)
        scale = float(np.dot(x, c) / np.dot(x, x))
        if scale <= 0:
            return None
        fitted = ReciprocalCost(scale=scale, offset=float(offset))
        return FitResult(fitted, "reciprocal", _rmse(fitted, v, c))

    best: Optional[FitResult] = None
    for offset in offsets:
        result = evaluate(float(offset))
        if result and (best is None or result.rmse < best.rmse):
            best = result
    if best is None:
        raise CostFunctionError(
            "no valid reciprocal fit (non-positive values or costs)"
        )
    # Local refinement around the winning offset.
    for _ in range(2):
        center = best.cost.offset
        for offset in np.linspace(center * 0.5, center * 1.5, 15):
            if offset <= 0:
                continue
            result = evaluate(float(offset))
            if result and result.rmse < best.rmse:
                best = result
    return best


def fit_exponential(
    values: Sequence[float], costs: Sequence[float]
) -> FitResult:
    """Log-linear :class:`ExponentialCost` fit (positive costs only)."""
    v, c = _as_arrays(values, costs)
    if np.any(c <= 0):
        raise CostFunctionError(
            "exponential fits require strictly positive costs"
        )
    slope, intercept = np.polyfit(v, np.log(c), 1)
    rate = -float(slope)
    if rate <= 0:
        rate = 1e-9  # flattest member of the family
    fitted = ExponentialCost(scale=float(np.exp(intercept)), rate=rate)
    return FitResult(fitted, "exponential", _rmse(fitted, v, c))


def fit_piecewise(
    values: Sequence[float],
    costs: Sequence[float],
    segments: int = 6,
) -> FitResult:
    """Non-increasing piecewise-linear fit on binned means.

    Observations are grouped into ``segments`` equal-width value bins;
    bin-mean costs are made non-increasing by a running minimum (a simple
    one-sided isotonic projection), then used as breakpoints.
    """
    v, c = _as_arrays(values, costs)
    if segments < 2:
        raise CostFunctionError("need at least 2 segments")
    edges = np.linspace(v.min(), v.max(), segments + 1)
    xs: List[float] = []
    ys: List[float] = []
    for i in range(segments):
        mask = (
            (v >= edges[i]) & (v <= edges[i + 1])
            if i == segments - 1
            else (v >= edges[i]) & (v < edges[i + 1])
        )
        if not mask.any():
            continue
        xs.append(float((edges[i] + edges[i + 1]) / 2.0))
        ys.append(float(c[mask].mean()))
    if len(xs) < 2:
        raise CostFunctionError("observations collapse into a single bin")
    running = np.minimum.accumulate(ys)
    fitted = PiecewiseLinearCost(list(zip(xs, running)))
    return FitResult(fitted, "piecewise", _rmse(fitted, v, c))


def fit_attribute_cost(
    values: Sequence[float], costs: Sequence[float]
) -> FitResult:
    """Fit every family and return the best by RMSE.

    Example:
        >>> import numpy as np
        >>> v = np.linspace(0.1, 2.0, 50)
        >>> c = 3.0 / (v + 0.05)
        >>> fit_attribute_cost(v, c).family
        'reciprocal'
    """
    candidates: List[FitResult] = [fit_linear(values, costs)]
    for fitter in (fit_reciprocal, fit_exponential, fit_piecewise):
        try:
            candidates.append(fitter(values, costs))
        except CostFunctionError:
            continue
    return min(candidates, key=lambda r: r.rmse)


@dataclass(frozen=True)
class UnitCostFit:
    """Per-unit work costs fitted from (counters, runtime) observations."""

    coefficients: Tuple[float, ...]
    rmse: float

    def predict(self, features: Sequence[float]) -> float:
        """Predicted runtime in seconds for one feature vector."""
        return float(
            sum(c * f for c, f in zip(self.coefficients, features))
        )


def fit_unit_costs(
    features: Sequence[Sequence[float]],
    runtimes: Sequence[float],
) -> UnitCostFit:
    """Fit non-negative per-unit costs mapping work counters to seconds.

    The query planner models runtime as a non-negative linear combination
    of work counters (node accesses, dominance tests, upgrade work):
    ``t ≈ Σ_j u_j · x_j``.  This solves the least-squares problem and
    projects onto ``u ≥ 0`` with an active-set loop: any negative
    coefficient is clamped to zero and the remaining columns are refit,
    repeating until all survivors are non-negative (Lawson–Hanson without
    the inner line search — adequate for the planner's 2-4 features).
    """
    x = np.asarray(features, dtype=np.float64)
    t = np.asarray(runtimes, dtype=np.float64)
    if x.ndim != 2 or t.ndim != 1 or x.shape[0] != t.shape[0]:
        raise CostFunctionError(
            "features must be a 2-d matrix with one row per runtime"
        )
    if x.shape[0] < x.shape[1]:
        raise CostFunctionError(
            "need at least as many observations as features"
        )
    n_features = x.shape[1]
    active = list(range(n_features))
    coefficients = np.zeros(n_features)
    for _ in range(n_features + 1):
        if not active:
            break
        sub = x[:, active]
        solution, *_ = np.linalg.lstsq(sub, t, rcond=None)
        negative = [i for i, u in zip(active, solution) if u < 0]
        if not negative:
            for i, u in zip(active, solution):
                coefficients[i] = float(u)
            break
        active = [i for i in active if i not in negative]
    predicted = x @ coefficients
    rmse = float(np.sqrt(np.mean((predicted - t) ** 2)))
    return UnitCostFit(tuple(coefficients), rmse)
