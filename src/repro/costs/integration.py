"""Integration functions (Definition 6).

An integration function turns ``c`` per-attribute cost values into one
product cost.  The paper defines the summation form (Equation 1) and its
weighted variant; both are provided.  Integration functions must be monotone
non-decreasing in each argument for the product cost function to inherit the
dominance-monotonicity the algorithms assume.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.exceptions import CostFunctionError


class IntegrationFunction(ABC):
    """Combines per-attribute costs into a single product cost."""

    @abstractmethod
    def __call__(self, attribute_costs: Sequence[float]) -> float:
        """Return the integrated product cost."""

    def describe(self) -> str:
        """Short human-readable name for experiment reports."""
        return type(self).__name__


class SumIntegration(IntegrationFunction):
    """Equation 1: the product cost is the plain sum of attribute costs."""

    __slots__ = ()

    def __call__(self, attribute_costs: Sequence[float]) -> float:
        return sum(attribute_costs)

    def describe(self) -> str:
        return "sum"


class WeightedSumIntegration(IntegrationFunction):
    """Weighted summation: ``sum(w_i * f_a^i(v_i))`` with ``w_i >= 0``."""

    __slots__ = ("weights",)

    def __init__(self, weights: Sequence[float]):
        ws = tuple(float(w) for w in weights)
        if not ws:
            raise CostFunctionError("weights must be non-empty")
        if any(w < 0 for w in ws):
            raise CostFunctionError(f"weights must be non-negative: {ws}")
        if all(w == 0 for w in ws):
            raise CostFunctionError("at least one weight must be positive")
        self.weights = ws

    def __call__(self, attribute_costs: Sequence[float]) -> float:
        if len(attribute_costs) != len(self.weights):
            raise CostFunctionError(
                f"expected {len(self.weights)} attribute costs, "
                f"got {len(attribute_costs)}"
            )
        return sum(w * c for w, c in zip(self.weights, attribute_costs))

    def describe(self) -> str:
        return "wsum[" + ",".join(f"{w:g}" for w in self.weights) + "]"
