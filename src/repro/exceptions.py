"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`SkyUpError` so callers can
catch every library failure with a single ``except`` clause while still being
able to distinguish configuration problems from data problems.
"""

from __future__ import annotations

from typing import Sequence


class SkyUpError(Exception):
    """Base class for every exception raised by this library."""


class DimensionalityError(SkyUpError, ValueError):
    """Raised when points, MBRs, or datasets disagree on dimensionality."""


class EmptyDatasetError(SkyUpError, ValueError):
    """Raised when an algorithm receives an empty input it cannot handle."""


class CostFunctionError(SkyUpError, ValueError):
    """Raised when a cost function is invalid (non-monotonic, non-finite)."""


class NotAnAntichainError(SkyUpError, ValueError):
    """Raised when a claimed skyline contains a dominated point.

    Algorithm 1 of the paper (``upgrade``) is only correct when its input
    point set is an antichain under the dominance order (Lemma 1's proof
    relies on it); callers that pass raw dominator sets trigger this error
    in validating mode.
    """


class RTreeError(SkyUpError):
    """Raised when an R-tree structural invariant is violated."""


class ConfigurationError(SkyUpError, ValueError):
    """Raised for invalid algorithm or experiment configuration."""


class UnknownOptionError(ConfigurationError):
    """A string selector was not one of its valid choices.

    Raised up front by :func:`repro.core.api.top_k_upgrades` (and the
    ``skyup`` CLI plumbing) when ``method``, ``bound``, or ``lbc_mode``
    is misspelled, so the mistake surfaces before any index is built.
    The option name, offending value, and valid choices are kept as
    attributes so callers can render their own message.
    """

    def __init__(
        self, option: str, value: object, choices: Sequence[str]
    ) -> None:
        self.option = option
        self.value = value
        self.choices = tuple(choices)
        listed = ", ".join(repr(c) for c in self.choices)
        super().__init__(
            f"unknown {option} {value!r}; choose from {listed}"
        )


class EngineOverloadedError(SkyUpError, RuntimeError):
    """Raised when the serving engine's bounded request queue is full.

    Backpressure is explicit: callers should retry with backoff or shed
    load; the engine never buffers unboundedly.
    """


class EngineClosedError(SkyUpError, RuntimeError):
    """Raised when a request is submitted to a closed serving engine."""


class TransientError(SkyUpError, RuntimeError):
    """A failure that may succeed on retry (I/O hiccup, injected fault).

    The serving engine retries requests that fail with a
    :class:`TransientError` subclass under its
    :class:`~repro.reliability.retry.RetryPolicy`; every other exception
    is terminal for the request.
    """


class InjectedFaultError(TransientError):
    """Raised by the fault-injection framework at an armed injection point.

    Derives from :class:`TransientError` so injected faults exercise the
    same retry/containment paths a real transient failure would.
    """


class KernelDivergenceError(SkyUpError):
    """A columnar kernel disagreed with its scalar oracle.

    Recorded (not raised to clients) by the runtime result guards: the
    engine quarantines the kernels and serves the scalar answer instead.
    """


class LockOrderError(SkyUpError, RuntimeError):
    """A lock-order inversion was witnessed at runtime.

    Raised by :class:`repro.analysis.lockorder.LockOrderWitness` when the
    recorded acquisition graph contains a cycle: two threads interleaving
    the witnessed acquisition paths could deadlock, even if the observed
    run happened not to.
    """


class WorkerCrashError(SkyUpError, RuntimeError):
    """A serving worker's batch execution failed outside request handling.

    The worker itself survives (supervision contains the crash); every
    request of the affected batch is failed with this typed error so the
    caller sees a terminal response instead of a hang.
    """
