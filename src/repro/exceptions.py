"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`SkyUpError` so callers can
catch every library failure with a single ``except`` clause while still being
able to distinguish configuration problems from data problems.
"""

from __future__ import annotations

from typing import Sequence


class SkyUpError(Exception):
    """Base class for every exception raised by this library."""


class DimensionalityError(SkyUpError, ValueError):
    """Raised when points, MBRs, or datasets disagree on dimensionality."""


class EmptyDatasetError(SkyUpError, ValueError):
    """Raised when an algorithm receives an empty input it cannot handle."""


class CostFunctionError(SkyUpError, ValueError):
    """Raised when a cost function is invalid (non-monotonic, non-finite)."""


class NotAnAntichainError(SkyUpError, ValueError):
    """Raised when a claimed skyline contains a dominated point.

    Algorithm 1 of the paper (``upgrade``) is only correct when its input
    point set is an antichain under the dominance order (Lemma 1's proof
    relies on it); callers that pass raw dominator sets trigger this error
    in validating mode.
    """


class RTreeError(SkyUpError):
    """Raised when an R-tree structural invariant is violated."""


class ConfigurationError(SkyUpError, ValueError):
    """Raised for invalid algorithm or experiment configuration."""


def _edit_distance(a: str, b: str, cap: int) -> int:
    """Levenshtein distance, short-circuited once it must exceed ``cap``."""
    if abs(len(a) - len(b)) > cap:
        return cap + 1
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        best = i
        for j, cb in enumerate(b, start=1):
            cost = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + (ca != cb),
            )
            current.append(cost)
            best = min(best, cost)
        if best > cap:
            return cap + 1
        previous = current
    return previous[-1]


def suggest_option(value: str, choices: Sequence[str]) -> "str | None":
    """The closest valid choice to a misspelled ``value``, if any is close.

    A suggestion is offered when the edit distance is at most 2 (and less
    than the choice's own length, so tiny names are not reachable from
    arbitrary garbage): ``"jion"`` suggests ``"join"``, a wild guess
    suggests nothing.  Case-only mismatches always match.
    """
    lowered = value.lower()
    best: "str | None" = None
    best_distance = 3
    for choice in choices:
        distance = _edit_distance(lowered, choice.lower(), cap=2)
        if distance == 0:
            return choice
        if distance < best_distance and distance < len(choice):
            best, best_distance = choice, distance
    return best


class UnknownOptionError(ConfigurationError):
    """A string selector was not one of its valid choices.

    Raised up front by :func:`repro.core.api.top_k_upgrades` (and the
    ``skyup`` CLI plumbing) when ``method``, ``bound``, or ``lbc_mode``
    is misspelled, so the mistake surfaces before any index is built.
    The option name, offending value, valid choices, and the near-miss
    suggestion (if any) are kept as attributes so callers can render
    their own message.
    """

    def __init__(
        self, option: str, value: object, choices: Sequence[str]
    ) -> None:
        self.option = option
        self.value = value
        self.choices = tuple(choices)
        self.suggestion = (
            suggest_option(value, self.choices)
            if isinstance(value, str)
            else None
        )
        listed = ", ".join(repr(c) for c in self.choices)
        message = f"unknown {option} {value!r}; choose from {listed}"
        if self.suggestion is not None:
            message = f"{message} (did you mean {self.suggestion!r}?)"
        super().__init__(message)


class InvalidOptionValueError(ConfigurationError):
    """An option's value has the right form but violates its requirement.

    The counterpart of :class:`UnknownOptionError` for numeric and range
    constraints (``--workers -1``, ``--shards 0``): the option name, the
    offending value, and a human-readable requirement are attributes so
    CLI layers can render consistent, typed diagnostics instead of ad-hoc
    prints.
    """

    def __init__(
        self, option: str, value: object, requirement: str
    ) -> None:
        self.option = option
        self.value = value
        self.requirement = requirement
        super().__init__(
            f"invalid {option} {value!r}: {requirement}"
        )


class EngineOverloadedError(SkyUpError, RuntimeError):
    """Raised when the serving engine's bounded request queue is full.

    Backpressure is explicit: callers should retry with backoff or shed
    load; the engine never buffers unboundedly.
    """


class EngineClosedError(SkyUpError, RuntimeError):
    """Raised when a request is submitted to a closed serving engine."""


class TransientError(SkyUpError, RuntimeError):
    """A failure that may succeed on retry (I/O hiccup, injected fault).

    The serving engine retries requests that fail with a
    :class:`TransientError` subclass under its
    :class:`~repro.reliability.retry.RetryPolicy`; every other exception
    is terminal for the request.
    """


class InjectedFaultError(TransientError):
    """Raised by the fault-injection framework at an armed injection point.

    Derives from :class:`TransientError` so injected faults exercise the
    same retry/containment paths a real transient failure would.
    """


class KernelDivergenceError(SkyUpError):
    """A columnar kernel disagreed with its scalar oracle.

    Recorded (not raised to clients) by the runtime result guards: the
    engine quarantines the kernels and serves the scalar answer instead.
    """


class LockOrderError(SkyUpError, RuntimeError):
    """A lock-order inversion was witnessed at runtime.

    Raised by :class:`repro.analysis.lockorder.LockOrderWitness` when the
    recorded acquisition graph contains a cycle: two threads interleaving
    the witnessed acquisition paths could deadlock, even if the observed
    run happened not to.
    """


class WorkerCrashError(SkyUpError, RuntimeError):
    """A serving worker's batch execution failed outside request handling.

    The worker itself survives (supervision contains the crash); every
    request of the affected batch is failed with this typed error so the
    caller sees a terminal response instead of a hang.  The sharded
    engine raises it for the harder case too: a worker *process* that
    died mid-request (each in-flight request fails with this error, the
    process is respawned, and subsequent requests succeed).
    """


class ShardCommandError(SkyUpError, RuntimeError):
    """A shard worker reported a command failure (the process survived).

    Carries the worker-side ``ExceptionType: message`` text; distinct
    from :class:`WorkerCrashError` because the worker is still healthy
    and no respawn happens.
    """
