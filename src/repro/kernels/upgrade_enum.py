"""Algorithm 1 candidate enumeration as one columnar pass.

The scalar upgrade loop (:mod:`repro.core.upgrade`) evaluates, for every
dimension ``k``, one single-dimension candidate, ``|S| - 1`` slot-between
candidates, and (in extended mode) one tail candidate — each with a Python
``f_p`` call.  :func:`enumerate_candidates` materializes the *entire*
candidate set across all dimensions into one ``(N, d)`` block, and
:func:`upgrade_kernel` prices it with a single
:meth:`~repro.costs.model.CostModel.vector_product_cost` evaluation.

The block lists candidates in exactly the scalar path's visit order
(dimension by dimension: single, pairs in ascending-``D_k`` order, tail),
and ``np.argmin`` returns the *first* minimum — so the kernel selects the
same candidate the scalar loop's strict-improvement rule does, making the
two paths bit-identical wherever the per-row cost sums are (they perform
the same additions in the same order for (weighted-)sum integrations).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.costs.model import CostModel

Point = Tuple[float, ...]


def enumerate_candidates(
    skyline: "np.ndarray",
    product: Sequence[float],
    eps: float,
    extended: bool = False,
) -> np.ndarray:
    """All Algorithm 1 candidates for ``product`` vs ``skyline`` as a block.

    Args:
        skyline: ``(n, d)`` array of dominator-skyline points (``n >= 1``).
        product: the product ``t`` being upgraded.
        eps: the paper's ε.
        extended: also emit the tail candidates (see
            :mod:`repro.core.upgrade` for the correctness argument).

    Returns:
        An ``(N, d)`` float64 block, ``N = d * (1 + max(0, n-1) + extended)``,
        ordered exactly as the scalar loop visits candidates.

    Scalar oracle: `repro.core.upgrade._upgrade_scalar`
    """
    sky = np.asarray(skyline, dtype=np.float64)
    n, dims = sky.shape
    p_row = np.asarray(product, dtype=np.float64)
    per_dim = 1 + max(0, n - 1) + (1 if extended else 0)
    out = np.empty((dims * per_dim, dims), dtype=np.float64)
    row = 0
    for k in range(dims):
        order = np.argsort(sky[:, k], kind="stable")
        ordered = sky[order]

        # Lines 4-7: beat every skyline point on dimension k alone.
        out[row] = p_row
        out[row, k] = ordered[0, k] - eps
        row += 1

        # Lines 8-16: slot between consecutive points s_i < s_j on
        # dimension k, matching s_i on every other dimension.
        if n > 1:
            pair = ordered[:-1] - eps
            pair[:, k] = ordered[1:, k] - eps
            out[row : row + n - 1] = pair
            row += n - 1

        if extended:
            # Tail: keep p's own d_k, match the last point elsewhere.
            out[row] = ordered[-1] - eps
            out[row, k] = p_row[k]
            row += 1
    return out


def upgrade_kernel(
    skyline: "np.ndarray",
    product: Sequence[float],
    cost_model: CostModel,
    eps: float,
    extended: bool = False,
) -> Tuple[float, Point]:
    """Vectorized Algorithm 1: cheapest candidate in one batch evaluation.

    Requires ``cost_model.supports_vectorization()`` (callers check; the
    scalar loop in :mod:`repro.core.upgrade` is the fallback and oracle).

    Returns:
        ``(cost, upgraded_point)`` exactly as the scalar ``upgrade`` does.

    Scalar oracle: `repro.core.upgrade._upgrade_scalar`
    """
    sky = np.asarray(skyline, dtype=np.float64)
    block = enumerate_candidates(sky, product, eps, extended)
    p_row = np.asarray(product, dtype=np.float64)
    base = float(cost_model.vector_product_cost(p_row[None, :])[0])
    costs = np.asarray(cost_model.vector_product_cost(block)) - base
    idx = int(np.argmin(costs))
    return float(costs[idx]), tuple(map(float, block[idx]))
