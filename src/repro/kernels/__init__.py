"""Columnar hot-path kernels: batch numpy implementations of the inner loops.

Every inner loop of the reproduction — dominance tests in BBS /
``getDominatingSky``, Algorithm 1's per-dimension candidate enumeration,
and the per-pair ``LBC`` evaluation driving Algorithm 4's heap — exists in
two forms:

* a **scalar** pure-Python implementation (the correctness oracle, exactly
  the paper's pseudo code), and
* a **kernel** implementation in this package operating on ``(n, d)``
  float64 blocks, evaluating a whole batch per numpy dispatch.

The :func:`kernels_enabled` switch selects between them globally.  Kernels
are **on by default**; call sites additionally require the cost model to
support vectorized evaluation (``CostModel.supports_vectorization`` /
``supports_vector_bounds``) and fall back to the scalar path per call when
it does not — so arbitrary user-supplied cost functions always work.

Disabling kernels (:func:`set_kernels_enabled` or the :func:`use_kernels`
context manager) forces the scalar path everywhere; ``skyup bench-kernels``
and the agreement tests in ``tests/test_kernels_agreement.py`` run both
paths this way and compare.

The vectorized stretches spend their time inside numpy ufuncs, which
release the GIL — worker threads in :mod:`repro.serve.pool` overlap there,
so the serving engine's throughput gains exceed the single-thread speedup.
"""

from __future__ import annotations

from repro.kernels.block import PointBlock
from repro.kernels.bounds_batch import pair_bounds_block
from repro.kernels.dominance import (
    any_dominates,
    dominated_mask,
    dominating_mask,
    pairwise_dominance,
)
from repro.kernels.skybuffer import SkylineBuffer
from repro.kernels.switch import (
    kernels_enabled,
    set_kernels_enabled,
    use_kernels,
)
from repro.kernels.upgrade_enum import (
    enumerate_candidates,
    upgrade_kernel,
)

__all__ = [
    "PointBlock",
    "SkylineBuffer",
    "any_dominates",
    "dominated_mask",
    "dominating_mask",
    "enumerate_candidates",
    "kernels_enabled",
    "pair_bounds_block",
    "pairwise_dominance",
    "set_kernels_enabled",
    "upgrade_kernel",
    "use_kernels",
]
