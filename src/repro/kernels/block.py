"""``PointBlock`` — the columnar point store the kernels operate on.

A block is an ``(n, d)`` C-contiguous float64 array paired with an ``(n,)``
int64 array of *stable ids*: kernels filter, reorder, and subset blocks
freely, and the ids travel along so results can always be traced back to
the original records (R-tree ``record_id``s, catalog product ids, array row
numbers).  Blocks are append-friendly — capacity grows geometrically, so a
BBS-style traversal can accrete its skyline into a block without quadratic
reallocation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionalityError

Point = Tuple[float, ...]

_INITIAL_CAPACITY = 64


class PointBlock:
    """An ``(n, d)`` float64 array of points with stable int64 ids.

    Args:
        dims: dimensionality of the stored points.
        capacity: initial row capacity (grows geometrically on append).

    Example:
        >>> block = PointBlock.from_points([(0.1, 0.2), (0.3, 0.1)])
        >>> len(block), block.dims
        (2, 2)
        >>> block.point(1)
        (0.3, 0.1)
    """

    __slots__ = ("_data", "_ids", "_n")

    def __init__(self, dims: int, capacity: int = _INITIAL_CAPACITY):
        if dims < 1:
            raise DimensionalityError(f"dims must be >= 1, got {dims}")
        capacity = max(1, capacity)
        self._data = np.empty((capacity, dims), dtype=np.float64)
        self._ids = np.empty(capacity, dtype=np.int64)
        self._n = 0

    @classmethod
    def from_points(
        cls,
        points: Sequence[Sequence[float]],
        ids: Sequence[int] = (),
    ) -> "PointBlock":
        """Build a block from a point sequence (ids default to positions).

        Accepts any ``(n, d)``-shaped input numpy can coerce — lists of
        tuples, an existing array — and always copies into an owned,
        C-contiguous buffer.
        """
        data = np.array(points, dtype=np.float64, ndmin=2)
        if data.size == 0:
            raise DimensionalityError(
                "from_points needs at least one point (use PointBlock(dims) "
                "for an empty block)"
            )
        if data.ndim != 2:
            raise DimensionalityError(
                f"expected an (n, d) point array, got shape {data.shape}"
            )
        n = data.shape[0]
        block = cls(data.shape[1], capacity=n)
        block._data[:n] = data
        if len(ids):
            if len(ids) != n:
                raise DimensionalityError(
                    f"{len(ids)} ids for {n} points"
                )
            block._ids[:n] = np.asarray(ids, dtype=np.int64)
        else:
            block._ids[:n] = np.arange(n, dtype=np.int64)
        block._n = n
        return block

    @classmethod
    def from_buffers(
        cls, data: np.ndarray, ids: np.ndarray, n: Optional[int] = None
    ) -> "PointBlock":
        """Adopt externally owned ``(cap, d)``/``(cap,)`` buffers, zero-copy.

        This is the shared-memory attach path: a shard worker maps the
        coordinator's segments as numpy arrays and wraps them directly —
        no copy, no per-point conversion.  ``n`` selects the live row
        count (default: every row).  The block does **not** own the
        buffers; the first append past capacity reallocates into private
        memory (so mutation never writes through to the shared segment).

        Raises:
            DimensionalityError: shapes, dtypes, or layout do not match
                the block contract (C-contiguous float64/int64).
        """
        if data.ndim != 2 or data.dtype != np.float64:
            raise DimensionalityError(
                f"data must be a float64 (n, d) array, got "
                f"{data.dtype} shape {data.shape}"
            )
        if ids.ndim != 1 or ids.dtype != np.int64:
            raise DimensionalityError(
                f"ids must be an int64 (n,) array, got "
                f"{ids.dtype} shape {ids.shape}"
            )
        if data.shape[0] != ids.shape[0]:
            raise DimensionalityError(
                f"{data.shape[0]} data rows but {ids.shape[0]} ids"
            )
        if not data.flags["C_CONTIGUOUS"]:
            raise DimensionalityError("data buffer must be C-contiguous")
        count = data.shape[0] if n is None else n
        if not 0 <= count <= data.shape[0]:
            raise DimensionalityError(
                f"n={count} outside buffer capacity {data.shape[0]}"
            )
        block = cls(data.shape[1], capacity=1)
        block._data = data
        block._ids = ids
        block._n = count
        return block

    def copy_into(self, data: np.ndarray, ids: np.ndarray) -> int:
        """Export the live rows into caller-provided buffers; returns n.

        The shared-memory publish path: the coordinator copies a shard's
        columns into its segments with two vectorized assignments.  The
        destinations must be at least ``len(self)`` rows.

        Raises:
            DimensionalityError: destination too small or wrong width.
        """
        n = self._n
        if data.shape[0] < n or ids.shape[0] < n:
            raise DimensionalityError(
                f"destination holds {min(data.shape[0], ids.shape[0])} "
                f"rows, need {n}"
            )
        if data.ndim != 2 or data.shape[1] != self.dims:
            raise DimensionalityError(
                f"destination is {data.shape}, block dims {self.dims}"
            )
        data[:n] = self._data[:n]
        ids[:n] = self._ids[:n]
        return n

    # -- shape ----------------------------------------------------------------

    @property
    def dims(self) -> int:
        """Dimensionality of the stored points."""
        return self._data.shape[1]

    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0

    # -- columnar views --------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The live ``(n, d)`` view of the stored points.

        A *view* into the growable buffer: valid until the next append that
        triggers a reallocation.  Kernels consume it immediately; hold a
        ``.copy()`` to keep one across mutations.
        """
        return self._data[: self._n]

    @property
    def ids(self) -> np.ndarray:
        """The live ``(n,)`` view of the stable ids (same lifetime rules)."""
        return self._ids[: self._n]

    # -- row access ------------------------------------------------------------

    def point(self, i: int) -> Point:
        """Row ``i`` as a plain float tuple."""
        return tuple(map(float, self.data[i]))

    def id_of(self, i: int) -> int:
        """Stable id of row ``i``."""
        return int(self.ids[i])

    def points(self) -> List[Point]:
        """Every stored point as a list of float tuples (row order)."""
        return [tuple(map(float, row)) for row in self.data]

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points())

    # -- mutation --------------------------------------------------------------

    def append(self, point: Sequence[float], record_id: int = -1) -> int:
        """Append one point; returns its row index.

        ``record_id`` defaults to the row index, preserving the
        ids-are-positions convention of :meth:`from_points`.
        """
        row = self._n
        if row == self._data.shape[0]:
            self._grow()
        self._data[row] = point
        self._ids[row] = record_id if record_id != -1 else row
        self._n = row + 1
        return row

    def extend(
        self, points: Iterable[Sequence[float]], ids: Sequence[int] = ()
    ) -> None:
        """Append many points (ids default to their new row indexes)."""
        if len(ids):
            for point, record_id in zip(points, ids):
                self.append(point, record_id)
        else:
            for point in points:
                self.append(point)

    def _grow(self) -> None:
        capacity = self._data.shape[0] * 2
        data = np.empty((capacity, self.dims), dtype=np.float64)
        ids = np.empty(capacity, dtype=np.int64)
        data[: self._n] = self._data[: self._n]
        ids[: self._n] = self._ids[: self._n]
        self._data = data
        self._ids = ids

    # -- filtering -------------------------------------------------------------

    def subset(self, mask: np.ndarray) -> "PointBlock":
        """A new block holding the rows where ``mask`` is True (ids kept)."""
        selected = np.flatnonzero(np.asarray(mask, dtype=bool))
        return self.take(selected)

    def take(self, indexes: np.ndarray) -> "PointBlock":
        """A new block holding ``rows[indexes]`` in the given order."""
        indexes = np.asarray(indexes, dtype=np.intp)
        out = PointBlock(self.dims, capacity=max(1, len(indexes)))
        out._data[: len(indexes)] = self.data[indexes]
        out._ids[: len(indexes)] = self.ids[indexes]
        out._n = len(indexes)
        return out

    def __repr__(self) -> str:
        return f"PointBlock(n={self._n}, dims={self.dims})"
