"""Batch dominance kernels (Definition 3 over blocks).

The scalar :func:`repro.geometry.point.dominates` compares two points; these
kernels compare one point against a whole ``(n, d)`` block — or two blocks
against each other — in a constant number of numpy dispatches.  All kernels
use the paper's smaller-is-better convention: ``p`` dominates ``q`` iff
``p <= q`` everywhere and ``p < q`` somewhere.

Inputs are plain arrays (or anything ``np.asarray`` accepts), so the
kernels serve both :class:`repro.kernels.block.PointBlock` data and the
ad-hoc corner arrays the join algorithm builds from R-tree entries.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _as_block(block: "np.ndarray") -> np.ndarray:
    return np.asarray(block, dtype=np.float64)


def _as_row(point: Sequence[float]) -> np.ndarray:
    return np.asarray(point, dtype=np.float64)


def dominating_mask(
    block: "np.ndarray", point: Sequence[float]
) -> np.ndarray:
    """Boolean mask of block rows that dominate ``point``.

    ``mask[i]`` is True iff ``block[i] <= point`` on every dimension and
    ``block[i] < point`` on at least one.

    Scalar oracle: `repro.geometry.point.dominates`
    """
    rows = _as_block(block)
    row = _as_row(point)
    return (rows <= row).all(axis=1) & (rows < row).any(axis=1)


def dominated_mask(
    block: "np.ndarray", point: Sequence[float]
) -> np.ndarray:
    """Boolean mask of block rows that ``point`` dominates.

    Scalar oracle: `repro.geometry.point.dominates`
    """
    rows = _as_block(block)
    row = _as_row(point)
    return (row <= rows).all(axis=1) & (row < rows).any(axis=1)


def any_dominates(block: "np.ndarray", point: Sequence[float]) -> bool:
    """True iff some block row dominates ``point``.

    The is-dominated test of every skyline-maintenance loop.  Evaluates the
    weak relation first and short-circuits — on typical workloads most
    candidates fail the ``<=`` filter, so the second pass runs on a small
    remainder.

    Scalar oracle: `repro.geometry.point.dominates`
    """
    rows = _as_block(block)
    row = _as_row(point)
    weak = (rows <= row).all(axis=1)
    if not weak.any():
        return False
    return bool((rows[weak] < row).any())


def pairwise_dominance(
    a: "np.ndarray", b: "np.ndarray"
) -> np.ndarray:
    """The ``(len(a), len(b))`` matrix of ``a[i] dominates b[j]``.

    Materializes an ``(n, m, d)`` broadcast — intended for agreement tests
    and moderate blocks, not for the streaming hot paths (which only ever
    need one-vs-block masks).

    Scalar oracle: `repro.geometry.point.dominates`
    """
    lhs = _as_block(a)[:, None, :]
    rhs = _as_block(b)[None, :, :]
    return (lhs <= rhs).all(axis=2) & (lhs < rhs).any(axis=2)
