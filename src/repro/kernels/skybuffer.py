"""Array-backed incremental skyline maintenance.

BBS-style traversals (:mod:`repro.skyline.bbs`, Algorithm 3 in
:mod:`repro.core.dominators`) test thousands of candidate corners against
the skyline found so far.  :class:`SkylineBuffer` keeps the growing skyline
in a columnar block so the is-dominated test is one broadcast; beyond a few
dozen points that beats the per-point Python loop by two orders of
magnitude.  With kernels disabled (:func:`repro.kernels.switch`), the exact
scalar loop runs instead — same answers, pure-Python work.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.point import dominates
from repro.instrumentation import Counters
from repro.kernels.block import PointBlock
from repro.kernels.switch import kernels_enabled
from repro.reliability.faults import maybe_corrupt

Point = Tuple[float, ...]


class SkylineBuffer:
    """A growing skyline with a batch is-dominated test.

    Points are appended only after the caller has proven them undominated
    (the BBS pop-order argument); the buffer never removes points.  The
    columnar copy grows geometrically to amortize reallocation.

    Counter contract: :meth:`dominates_point` charges ``len(self)``
    dominance tests per call on *both* paths — the kernel evaluates all of
    them at once and the scalar loop may exit early, but the work counter
    stays path-independent so kernel and scalar runs report identical
    scale-free counters.
    """

    #: Below this size the scalar loop beats a numpy dispatch.
    _VECTOR_FROM = 32

    #: Scalar prefix scanned before the broadcast.  BBS pops candidates in
    #: ascending mindist, so a dominated candidate is almost always caught
    #: by one of the *earliest* (lowest coordinate-sum) skyline points —
    #: the prefix keeps that common case at scalar cost and the broadcast
    #: pays off exactly when the whole buffer must be scanned anyway.
    _PREFIX = 8

    __slots__ = ("points", "_block")

    def __init__(self, dims: int):
        self.points: List[Point] = []
        self._block = PointBlock(dims)

    def __len__(self) -> int:
        return len(self.points)

    def add(self, point: Point) -> None:
        """Append an (already verified undominated) skyline point."""
        self._block.append(point)
        self.points.append(point)

    def as_array(self) -> np.ndarray:
        """The live ``(n, d)`` view of the skyline (block lifetime rules)."""
        return self._block.data

    def dominates_point(
        self, p: Sequence[float], stats: Optional[Counters] = None
    ) -> bool:
        """True iff some stored skyline point dominates ``p``."""
        n = len(self.points)
        if stats is not None:
            stats.dominance_tests += n
        if n == 0:
            return False
        if n < self._VECTOR_FROM or not kernels_enabled():
            for s in self.points:
                if dominates(s, p):
                    return True
            return False
        for s in self.points[: self._PREFIX]:
            if dominates(s, p):
                return True
        rows = self._block.data[self._PREFIX :]
        row = np.asarray(p, dtype=np.float64)
        weak = (rows <= row).all(axis=1)
        if not weak.any():
            verdict = False
        else:
            verdict = bool((rows[weak] < row).any())
        # Chaos hook: the `kernels.dominance` corruption point flips this
        # broadcast verdict only — the scalar loop above stays the oracle.
        return bool(
            maybe_corrupt("kernels.dominance", verdict, lambda v: not v)
        )
