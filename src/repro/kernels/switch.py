"""The global kernel on/off switch (separate module to avoid import cycles).

:mod:`repro.kernels` re-exports everything here; call sites and the kernel
submodules import from this module directly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_ENABLED = True


def kernels_enabled() -> bool:
    """True iff hot paths may take the columnar kernel implementations."""
    return _ENABLED


def set_kernels_enabled(enabled: bool) -> bool:
    """Set the global kernel switch; returns the previous value.

    The switch is process-global and not synchronized: flip it at setup
    time (or around a whole benchmark run), not concurrently with queries.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def use_kernels(enabled: bool) -> Iterator[None]:
    """Temporarily force the kernel switch to ``enabled``.

    Example::

        with use_kernels(False):
            outcome = top_k_upgrades(...)  # pure scalar oracle run
    """
    previous = set_kernels_enabled(enabled)
    try:
        yield
    finally:
        set_kernels_enabled(previous)
