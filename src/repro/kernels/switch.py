"""The kernel on/off switch (separate module to avoid import cycles).

:mod:`repro.kernels` re-exports everything here; call sites and the kernel
submodules import from this module directly.

The switch is two-level and thread-safe:

* a **process-global default**, flipped by :func:`set_kernels_enabled`
  under a lock — this is what the kernel guard's *quarantine* uses to turn
  every worker scalar at once after a detected divergence;
* a **thread-local overlay** set by the :func:`use_kernels` context
  manager — so one request (or the guard's oracle recompute) can force the
  scalar path without racing concurrent serve queries on other threads.

:func:`kernels_enabled` reads the overlay first, then the default.  The
read is lock-free: a plain attribute load each side, and a stale read of
the default during a concurrent flip is harmless (both paths are correct;
the flip is a performance/trust decision, not a memory-safety one).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

_DEFAULT = True  # guarded-by: _DEFAULT_LOCK
_DEFAULT_LOCK = threading.Lock()
_LOCAL = threading.local()


def kernels_enabled() -> bool:
    """True iff hot paths may take the columnar kernel implementations.

    The calling thread's :func:`use_kernels` overlay (if any) wins over
    the process-global default.
    """
    override: Optional[bool] = getattr(_LOCAL, "override", None)
    if override is not None:
        return override
    return _DEFAULT  # skyup: ignore[SKY101] — benign race, see module doc


def set_kernels_enabled(enabled: bool) -> bool:
    """Set the process-global default; returns the previous default.

    Thread-safe; does not touch any thread's :func:`use_kernels` overlay.
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        previous = _DEFAULT
        _DEFAULT = bool(enabled)
    return previous


@contextmanager
def use_kernels(enabled: bool) -> Iterator[None]:
    """Force the switch to ``enabled`` on this thread for the block.

    Only the calling thread is affected — concurrent queries on other
    threads keep their own overlay or the global default.  Nests: the
    previous overlay is restored on exit.

    Example::

        with use_kernels(False):
            outcome = top_k_upgrades(...)  # pure scalar oracle run
    """
    previous: Optional[bool] = getattr(_LOCAL, "override", None)
    _LOCAL.override = bool(enabled)
    try:
        yield
    finally:
        _LOCAL.override = previous
