"""Batched per-pair lower bounds: ``LBC`` over a whole join list at once.

Algorithm 4 evaluates ``LBC(e_T, e_P)`` for every entry of a join list each
time a product-side node is expanded or refined.  The scalar
:func:`repro.core.bounds.lbc` classifies dimensions and prices escape
candidates one entry at a time; this kernel evaluates the *entire* join
list — classification, per-dimension escape deltas, and the Case 3/4
minima — as ``(|JL|, d)`` array operations, one attribute-cost vector
evaluation per dimension instead of a Python loop over entries.

The per-dimension decomposition of the product cost is only valid for
(weighted-)sum integrations; callers gate on
:func:`repro.core.bounds.supports_vector_bounds`.  Semantics (including the
``"corrected"`` vs ``"paper"`` mode split and the signature bytes) are
documented in :mod:`repro.core.bounds`, which delegates its
``pair_bounds_vector`` here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.costs.model import CostModel
from repro.exceptions import ConfigurationError
from repro.instrumentation import Counters

#: A per-entry bound plus the partition key of its dimension classification.
Pair = Tuple[float, bytes]

# Per-dimension category codes packed into the signature bytes; must match
# repro.core.bounds.signature_of (which imports these).
_DIS, _INC, _ADV = 1, 2, 0

_MODES = ("corrected", "paper")


def pair_bounds_block(
    t_low: Sequence[float],
    p_lows: "np.ndarray",
    p_highs: "np.ndarray",
    cost_model: CostModel,
    stats: Optional[Counters] = None,
    mode: str = "corrected",
) -> List[Pair]:
    """Vectorized ``lbc`` over many competitor entries at once.

    Args:
        t_low: ``e_T.min`` (for a leaf entry, the product point itself).
        p_lows: ``(n, d)`` array of ``e_P.min`` corners.
        p_highs: ``(n, d)`` array of ``e_P.max`` corners.
        cost_model: the product cost function ``f_p`` (must support
            per-dimension decomposition — see the module docstring).
        stats: optional counters (``lbc_evaluations`` += n).
        mode: ``"corrected"`` (valid lower bounds, default) or ``"paper"``
            (the literal Case 3/4 formulas).

    Returns:
        One ``(bound, signature)`` pair per row, agreeing with the scalar
        :func:`repro.core.bounds.lbc` to floating-point associativity.

    Scalar oracle: `repro.core.bounds.lbc`
    """
    if mode not in _MODES:
        raise ConfigurationError(
            f"unknown LBC mode {mode!r}; choose from {_MODES}"
        )
    p_lows = np.asarray(p_lows, dtype=np.float64)
    p_highs = np.asarray(p_highs, dtype=np.float64)
    n = p_lows.shape[0]
    if stats is not None:
        stats.lbc_evaluations += n
    if n == 0:
        return []
    t_row = np.asarray(t_low, dtype=np.float64)
    dis = p_highs < t_row
    adv = t_row < p_lows
    inc = ~(dis | adv)
    codes = np.where(dis, _DIS, np.where(inc, _INC, _ADV)).astype(np.uint8)

    zero_rows = adv.any(axis=1) | inc.all(axis=1)
    bounds = np.zeros(n, dtype=np.float64)
    active = ~zero_rows
    if active.any():
        # Per-dimension escape deltas: upgrade t_low's dim i to p_high[i]
        # (or p_low[i]); attribute costs evaluate column-wise.
        weights = _integration_weights(cost_model)
        ft = np.array(
            [f(v) for f, v in zip(cost_model.attribute_costs, t_row)]
        )
        delta_high = np.empty_like(p_highs)
        delta_low = np.empty_like(p_lows)
        for i, f in enumerate(cost_model.attribute_costs):
            delta_high[:, i] = (f.vector(p_highs[:, i]) - ft[i]) * weights[i]
            delta_low[:, i] = (f.vector(p_lows[:, i]) - ft[i]) * weights[i]
        all_dis = dis.all(axis=1)
        if mode == "paper":
            masked = np.where(dis, delta_high, 0.0)
            bounds[active] = masked[active].sum(axis=1)
        else:
            case3 = active & all_dis
            if case3.any():
                bounds[case3] = delta_high[case3].min(axis=1)
            one_inc = active & ~all_dis & (inc.sum(axis=1) == 1)
            if one_inc.any():
                cand = np.where(
                    dis, delta_high, np.where(inc, delta_low, np.inf)
                )
                bounds[one_inc] = cand[one_inc].min(axis=1)
            # Rows with >= 2 incomparable dims stay at the sound bound 0.
        np.maximum(bounds, 0.0, out=bounds)
    return [
        (float(b), codes[i].tobytes()) for i, b in enumerate(bounds)
    ]


def _integration_weights(cost_model: CostModel) -> "np.ndarray":
    """Per-dimension weights of a (weighted-)sum integration."""
    from repro.costs.integration import WeightedSumIntegration

    if isinstance(cost_model.integration, WeightedSumIntegration):
        return np.asarray(cost_model.integration.weights, dtype=np.float64)
    return np.ones(len(cost_model.attribute_costs), dtype=np.float64)
