"""Point primitives and the dominance relation.

A *point* throughout this library is a plain ``tuple`` of ``float``s.  The
paper's Definition 3 fixes the dominance convention we use everywhere:
smaller values are preferred on every dimension (a max-preferred attribute is
negated during data preparation, see :mod:`repro.data.normalize`).

``p`` dominates ``q`` (written ``p < q`` in the paper) iff ``p`` is no worse
(no larger) than ``q`` on all dimensions and strictly better (smaller) on at
least one.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

from repro.exceptions import DimensionalityError

Point = Tuple[float, ...]


def dominates(p: Sequence[float], q: Sequence[float]) -> bool:
    """Return ``True`` iff ``p`` dominates ``q`` (Definition 3).

    ``p`` dominates ``q`` when ``p[i] <= q[i]`` for every dimension ``i`` and
    ``p[i] < q[i]`` for at least one.  A point never dominates itself.
    """
    strict = False
    for a, b in zip(p, q):
        if a > b:
            return False
        if a < b:
            strict = True
    return strict


def dominates_or_equal(p: Sequence[float], q: Sequence[float]) -> bool:
    """Return ``True`` iff ``p[i] <= q[i]`` on every dimension.

    This is the *weak* dominance used for MBR corner reasoning: if the weak
    relation holds between ``e.max`` and a point, every point inside ``e``
    weakly dominates that point too.
    """
    for a, b in zip(p, q):
        if a > b:
            return False
    return True


def strictly_dominates(p: Sequence[float], q: Sequence[float]) -> bool:
    """Return ``True`` iff ``p[i] < q[i]`` on every dimension."""
    for a, b in zip(p, q):
        if a >= b:
            return False
    return True


def is_comparable(p: Sequence[float], q: Sequence[float]) -> bool:
    """Return ``True`` iff one of the two points dominates the other."""
    return dominates(p, q) or dominates(q, p)


def dimensionality(points: Iterable[Sequence[float]]) -> int:
    """Return the common dimensionality of ``points``.

    Raises:
        DimensionalityError: if the iterable is empty or mixes
            dimensionalities.
    """
    dims = None
    for p in points:
        if dims is None:
            dims = len(p)
        elif len(p) != dims:
            raise DimensionalityError(
                f"mixed dimensionalities: expected {dims}, got {len(p)}"
            )
    if dims is None:
        raise DimensionalityError("cannot infer dimensionality of no points")
    return dims


def validate_point(p: Sequence[float], dims: int = 0) -> Point:
    """Return ``p`` as a tuple of finite floats, checking dimensionality.

    Args:
        p: candidate point.
        dims: expected dimensionality; ``0`` disables the check.

    Raises:
        DimensionalityError: wrong number of coordinates.
        ValueError: non-finite coordinate.
    """
    point = tuple(float(v) for v in p)
    if dims and len(point) != dims:
        raise DimensionalityError(
            f"expected a {dims}-dimensional point, got {len(point)} coordinates"
        )
    for v in point:
        if not math.isfinite(v):
            raise ValueError(f"point has a non-finite coordinate: {point}")
    return point
