"""Geometric primitives: points, dominance, MBRs, and dominance regions.

Everything in this package is deliberately allocation-light: points are plain
tuples of floats and the hot dominance predicates are free functions, because
the R-tree and join algorithms call them millions of times per run.
"""

from repro.geometry.point import (
    dominates,
    dominates_or_equal,
    dimensionality,
    is_comparable,
    strictly_dominates,
    validate_point,
)
from repro.geometry.mbr import MBR
from repro.geometry.region import (
    adr_contains,
    mbr_overlaps_adr,
    point_in_adr,
)
from repro.geometry.classify import DimClassification, classify_dimensions

__all__ = [
    "MBR",
    "DimClassification",
    "adr_contains",
    "classify_dimensions",
    "dimensionality",
    "dominates",
    "dominates_or_equal",
    "is_comparable",
    "mbr_overlaps_adr",
    "point_in_adr",
    "strictly_dominates",
    "validate_point",
]
