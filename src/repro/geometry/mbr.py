"""Minimum bounding rectangles (hyper-rectangles) for the R-tree.

An :class:`MBR` stores its lower corner ``low`` (the paper's ``e.min``) and
upper corner ``high`` (``e.max``) as tuples.  MBRs are immutable; operations
that "grow" an MBR return a new one.  The R-tree split heuristics need area,
margin, enlargement, and pairwise overlap, all provided here.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.exceptions import DimensionalityError

Corner = Tuple[float, ...]


class MBR:
    """An axis-aligned hyper-rectangle ``[low, high]`` (closed on all sides)."""

    __slots__ = ("low", "high")

    def __init__(self, low: Sequence[float], high: Sequence[float]):
        if len(low) != len(high):
            raise DimensionalityError(
                f"corner dimensionalities differ: {len(low)} vs {len(high)}"
            )
        lo = tuple(float(v) for v in low)
        hi = tuple(float(v) for v in high)
        for a, b in zip(lo, hi):
            if a > b:
                raise ValueError(f"inverted MBR: low={lo} high={hi}")
        self.low = lo
        self.high = hi

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "MBR":
        """Return the degenerate MBR covering a single point."""
        return cls(point, point)

    @classmethod
    def from_points(cls, points: Iterable[Sequence[float]]) -> "MBR":
        """Return the tightest MBR enclosing ``points`` (must be non-empty)."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("cannot build an MBR from no points") from None
        low = list(first)
        high = list(first)
        for p in it:
            for i, v in enumerate(p):
                if v < low[i]:
                    low[i] = v
                elif v > high[i]:
                    high[i] = v
        return cls(low, high)

    @classmethod
    def union_all(cls, mbrs: Iterable["MBR"]) -> "MBR":
        """Return the tightest MBR enclosing every MBR in ``mbrs``."""
        it = iter(mbrs)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("cannot union no MBRs") from None
        low = list(first.low)
        high = list(first.high)
        for m in it:
            for i in range(len(low)):
                if m.low[i] < low[i]:
                    low[i] = m.low[i]
                if m.high[i] > high[i]:
                    high[i] = m.high[i]
        return cls(low, high)

    # -- basic properties --------------------------------------------------

    @property
    def dims(self) -> int:
        """Dimensionality of the rectangle."""
        return len(self.low)

    def area(self) -> float:
        """Hyper-volume (product of side lengths; 0 for degenerate MBRs)."""
        result = 1.0
        for a, b in zip(self.low, self.high):
            result *= b - a
        return result

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree "margin" criterion)."""
        return sum(b - a for a, b in zip(self.low, self.high))

    def center(self) -> Corner:
        """Geometric center of the rectangle."""
        return tuple((a + b) / 2.0 for a, b in zip(self.low, self.high))

    # -- predicates --------------------------------------------------------

    def contains_point(self, point: Sequence[float]) -> bool:
        """Return ``True`` iff ``point`` lies inside (or on) the rectangle."""
        for v, a, b in zip(point, self.low, self.high):
            if v < a or v > b:
                return False
        return True

    def contains(self, other: "MBR") -> bool:
        """Return ``True`` iff ``other`` lies entirely inside this MBR."""
        for a, b, c, d in zip(self.low, other.low, other.high, self.high):
            if b < a or c > d:
                return False
        return True

    def intersects(self, other: "MBR") -> bool:
        """Return ``True`` iff the two closed rectangles share a point."""
        for a, b, c, d in zip(self.low, self.high, other.low, other.high):
            if b < c or d < a:
                return False
        return True

    # -- measures used by split / insertion heuristics ----------------------

    def union(self, other: "MBR") -> "MBR":
        """Return the tightest MBR enclosing both rectangles."""
        low = tuple(min(a, b) for a, b in zip(self.low, other.low))
        high = tuple(max(a, b) for a, b in zip(self.high, other.high))
        return MBR(low, high)

    def extended(self, point: Sequence[float]) -> "MBR":
        """Return this MBR grown to also cover ``point``."""
        low = tuple(min(a, v) for a, v in zip(self.low, point))
        high = tuple(max(b, v) for b, v in zip(self.high, point))
        return MBR(low, high)

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed for this MBR to also cover ``other``."""
        return self.union(other).area() - self.area()

    def overlap_area(self, other: "MBR") -> float:
        """Hyper-volume of the intersection (0 when disjoint)."""
        result = 1.0
        for a, b, c, d in zip(self.low, self.high, other.low, other.high):
            side = min(b, d) - max(a, c)
            if side <= 0.0:
                return 0.0
            result *= side
        return result

    def min_distance(self, point: Sequence[float]) -> float:
        """Squared minimum Euclidean distance from ``point`` to the MBR."""
        total = 0.0
        for v, a, b in zip(point, self.low, self.high):
            if v < a:
                d = a - v
            elif v > b:
                d = v - b
            else:
                continue
            total += d * d
        return total

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MBR)
            and self.low == other.low
            and self.high == other.high
        )

    def __hash__(self) -> int:
        return hash((self.low, self.high))

    def __repr__(self) -> str:
        return f"MBR(low={self.low}, high={self.high})"
