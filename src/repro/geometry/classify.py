"""Dimension classification for the lower-bound machinery (paper §III-B3).

Given a product-set node ``e_T`` and a competitor node ``e_P``, the paper
partitions the dimension set ``D`` into three categories by comparing
``e_T.min`` (the best possible product in ``e_T``) against ``e_P``'s corners:

* **disadvantaged** ``D_D``: ``e_P.max.d_i < e_T.min.d_i`` — even the worst
  competitor value beats the best product value, so the products must improve
  on this dimension (or win elsewhere) to escape domination;
* **incomparable** ``D_I``: ``e_P.min.d_i <= e_T.min.d_i <= e_P.max.d_i`` —
  the best product value falls inside the competitor range;
* **advantaged** ``D_A``: ``e_T.min.d_i < e_P.min.d_i`` — the best product
  value already beats every competitor value on this dimension.

The three categories are exhaustive and pairwise disjoint.  The resulting
:class:`DimClassification` drives the four ``LBC`` cases and — via its
:attr:`~DimClassification.signature` — the aggressive lower bound's
partitioning of the join list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.exceptions import DimensionalityError


@dataclass(frozen=True)
class DimClassification:
    """Outcome of classifying every dimension of ``e_T`` against ``e_P``."""

    disadvantaged: Tuple[int, ...]
    incomparable: Tuple[int, ...]
    advantaged: Tuple[int, ...]

    @property
    def dims(self) -> int:
        """Total number of dimensions classified."""
        return (
            len(self.disadvantaged)
            + len(self.incomparable)
            + len(self.advantaged)
        )

    @property
    def has_advantage(self) -> bool:
        """True iff at least one dimension is advantaged (LBC Case 1)."""
        return bool(self.advantaged)

    @property
    def all_incomparable(self) -> bool:
        """True iff every dimension is incomparable (LBC Case 2)."""
        return len(self.incomparable) == self.dims

    @property
    def all_disadvantaged(self) -> bool:
        """True iff every dimension is disadvantaged (LBC Case 3)."""
        return len(self.disadvantaged) == self.dims

    @property
    def signature(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Hashable key identifying the (D_D, D_I) split.

        Two join-list entries fall into the same partition of the aggressive
        lower bound (Equation 4) exactly when their signatures match.  The
        advantaged set is implied by the other two, so it is omitted.
        """
        return (self.disadvantaged, self.incomparable)


def classify_dimensions(
    t_low: Sequence[float],
    p_low: Sequence[float],
    p_high: Sequence[float],
) -> DimClassification:
    """Classify each dimension of ``e_T`` against ``e_P`` (paper §III-B3).

    Args:
        t_low: ``e_T.min`` — lower corner of the product node's MBR.
        p_low: ``e_P.min`` — lower corner of the competitor node's MBR.
        p_high: ``e_P.max`` — upper corner of the competitor node's MBR.

    Returns:
        A :class:`DimClassification` with dimension indices sorted
        ascending in each category.
    """
    if not len(t_low) == len(p_low) == len(p_high):
        raise DimensionalityError(
            "corner dimensionalities differ: "
            f"{len(t_low)}, {len(p_low)}, {len(p_high)}"
        )
    disadvantaged = []
    incomparable = []
    advantaged = []
    for i, (tv, pl, ph) in enumerate(zip(t_low, p_low, p_high)):
        if ph < tv:
            disadvantaged.append(i)
        elif tv < pl:
            advantaged.append(i)
        else:
            incomparable.append(i)
    return DimClassification(
        tuple(disadvantaged), tuple(incomparable), tuple(advantaged)
    )
