"""Anti-dominant regions (ADR) and related pruning predicates.

The *anti-dominant region* of a point ``t`` (Tao et al., cited as [15] in the
paper) is the hyper-rectangle with ``t`` as its maximum corner and the domain
origin as its minimum corner.  Under the smaller-is-better convention, every
point that dominates ``t`` lies inside ``ADR(t)``, so range-restricting a
search to the ADR retrieves exactly the candidate dominators.

Because the library never assumes a finite domain minimum, the ADR is treated
as unbounded below: an MBR "overlaps" ``ADR(t)`` iff its lower corner is
coordinate-wise ``<= t``.  This is a *may-contain-a-dominator* test — points
equal to ``t`` on every dimension pass it but do not dominate ``t``; leaf
level code therefore re-checks strict dominance.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.mbr import MBR


def mbr_overlaps_adr(mbr: MBR, corner: Sequence[float]) -> bool:
    """Return ``True`` iff ``mbr`` may contain a point dominating ``corner``.

    ``corner`` is the ADR's maximum corner (``t`` for a probing query,
    ``e_T.max`` for a join-list filter).  Equivalent to
    ``mbr.low <= corner`` coordinate-wise.
    """
    for a, b in zip(mbr.low, corner):
        if a > b:
            return False
    return True


def point_in_adr(point: Sequence[float], corner: Sequence[float]) -> bool:
    """Return ``True`` iff ``point`` lies inside ``ADR(corner)``.

    Membership is coordinate-wise ``point <= corner``; it does *not* by
    itself imply dominance (the point may equal ``corner``).
    """
    for a, b in zip(point, corner):
        if a > b:
            return False
    return True


def adr_contains(corner: Sequence[float], mbr: MBR) -> bool:
    """Return ``True`` iff ``mbr`` lies entirely inside ``ADR(corner)``.

    When this holds, *every* point under ``mbr`` weakly dominates
    ``corner``; combined with a single strictness witness this certifies
    batch dominance without descending into the node.
    """
    for b, c in zip(mbr.high, corner):
        if b > c:
            return False
    return True
