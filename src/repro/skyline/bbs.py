"""Branch-and-Bound Skyline over an R-tree (Papadias et al., SIGMOD 2003).

BBS pops R-tree entries from a min-heap keyed by *mindist* (the coordinate
sum of the entry MBR's lower corner).  Because mindist is a monotone lower
bound of every point inside the entry, a popped point that is not dominated
by the current skyline is guaranteed final.  Entries whose lower corner is
dominated by an existing skyline point are pruned wholesale.

The dominated-by-current-skyline test — the inner loop of the whole
traversal — runs on the columnar
:class:`~repro.kernels.skybuffer.SkylineBuffer`: one numpy broadcast per
candidate when kernels are enabled, the exact scalar loop otherwise.

This module is the foundation of the paper's Algorithm 3
(:mod:`repro.core.dominators` restricts the same traversal to an
anti-dominant region).
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

from repro.instrumentation import Counters
from repro.kernels.skybuffer import SkylineBuffer
from repro.kernels.switch import kernels_enabled
from repro.obs import span
from repro.rtree.tree import RTree

Point = Tuple[float, ...]


def bbs_skyline(
    tree: RTree,
    stats: Optional[Counters] = None,
) -> List[Point]:
    """Return the skyline of every point indexed by ``tree``.

    Args:
        tree: R-tree over the point set (smaller-is-better on all dims).
        stats: optional counters — node accesses, heap traffic, dominance
            tests.

    Returns:
        Skyline points in ascending mindist (coordinate-sum) order, which is
        also the order BBS proves them final.
    """
    if tree.is_empty():
        return []
    with span(
        "skyline.bbs",
        kernel_or_scalar="kernel" if kernels_enabled() else "scalar",
    ) as sp:
        if stats is not None:
            label = "kernel.bbs" if kernels_enabled() else "scalar.bbs"
            with stats.timed(label):
                result = _bbs(tree, stats)
        else:
            result = _bbs(tree, stats)
        sp.set(skyline_size=len(result))
        return result


def _bbs(tree: RTree, stats: Optional[Counters]) -> List[Point]:
    skyline = SkylineBuffer(tree.dims)
    accepted = set()
    counter = itertools.count()
    heap: List[tuple] = []
    root = tree.root
    # Keys are (mindist, corner, seq): the lexicographic corner tie-break
    # keeps dominators ahead of dominated candidates even when coordinate
    # sums collide in floating point (a dominator is always
    # lexicographically smaller, exactly).
    root_low = root.compute_mbr().low
    heapq.heappush(heap, (0.0, root_low, next(counter), root))
    if stats is not None:
        stats.heap_pushes += 1

    while heap:
        _, corner, _, node = heapq.heappop(heap)
        if stats is not None:
            stats.heap_pops += 1
        # Re-check at pop: the skyline may have grown since the push.
        if skyline.dominates_point(corner, stats):
            if stats is not None:
                stats.entries_pruned += 1
            continue
        if node is None:  # a point candidate, proven final by pop order
            if corner not in accepted:
                accepted.add(corner)
                skyline.add(corner)
            continue
        if stats is not None:
            stats.node_accesses += 1
        if node.is_leaf:
            for e in node.entries:
                if not skyline.dominates_point(e.point, stats):
                    heapq.heappush(
                        heap, (sum(e.point), e.point, next(counter), None)
                    )
                    if stats is not None:
                        stats.heap_pushes += 1
        else:
            for e in node.entries:
                low = e.mbr.low
                if not skyline.dominates_point(low, stats):
                    heapq.heappush(
                        heap, (sum(low), low, next(counter), e.child)
                    )
                    if stats is not None:
                        stats.heap_pushes += 1
                elif stats is not None:
                    stats.entries_pruned += 1
    if stats is not None:
        stats.skyline_points += len(skyline)
    return skyline.points
