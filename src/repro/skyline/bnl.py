"""Block-Nested-Loops skyline (Börzsönyi, Kossmann, Stocker — ICDE 2001).

Maintains a window of incomparable points; each incoming point is compared
against the window, evicting dominated window points and being discarded if
itself dominated.  Always correct, ``O(n^2)`` worst case, excellent on small
inputs — which is why the core algorithms use it to reduce small dominator
sets to skylines.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.instrumentation import Counters

Point = Tuple[float, ...]


def bnl_skyline(
    points: Sequence[Sequence[float]],
    stats: Optional[Counters] = None,
) -> List[Point]:
    """Return the skyline of ``points`` (smaller-is-better on every dim).

    Duplicate points are kept once; points equal on all dimensions do not
    dominate each other (Definition 3 requires strict improvement somewhere).

    Args:
        points: the input set.
        stats: optional counters; ``dominance_tests`` is incremented per
            pairwise comparison.

    Returns:
        Skyline points as tuples, in first-seen order.
    """
    window: List[Point] = []
    seen = set()
    for raw in points:
        p = tuple(raw)
        if p in seen:
            continue
        dominated = False
        survivors: List[Point] = []
        for w in window:
            if stats is not None:
                stats.dominance_tests += 1
            if dominated:
                survivors.append(w)
                continue
            relation = _compare(w, p)
            if relation < 0:  # w dominates p
                dominated = True
                survivors.append(w)
            elif relation > 0:  # p dominates w: evict w
                seen.discard(w)
            else:
                survivors.append(w)
        window = survivors
        if not dominated:
            window.append(p)
            seen.add(p)
    return window


def _compare(a: Point, b: Point) -> int:
    """Return -1 if ``a`` dominates ``b``, 1 if ``b`` dominates ``a``, else 0."""
    a_better = False
    b_better = False
    for x, y in zip(a, b):
        if x < y:
            a_better = True
            if b_better:
                return 0
        elif y < x:
            b_better = True
            if a_better:
                return 0
    if a_better and not b_better:
        return -1
    if b_better and not a_better:
        return 1
    return 0
