"""Sort-Filter-Skyline (Chomicki, Godfrey, Gryz, Liang — ICDE 2003).

Pre-sorts the input by a monotone scoring function (the coordinate sum).
After sorting, no point can be dominated by a *later* point, so a single
forward pass suffices: each point is only checked against already-accepted
skyline points, never evicted.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.instrumentation import Counters

Point = Tuple[float, ...]


def sfs_skyline(
    points: Sequence[Sequence[float]],
    stats: Optional[Counters] = None,
) -> List[Point]:
    """Return the skyline of ``points`` via sort-filter-skyline.

    Args:
        points: the input set (smaller-is-better on every dimension).
        stats: optional counters (``dominance_tests`` per comparison).

    Returns:
        Skyline points as tuples, ordered by ascending coordinate sum.
    """
    unique = sorted({tuple(p) for p in points}, key=lambda p: (sum(p), p))
    skyline: List[Point] = []
    for p in unique:
        dominated = False
        for s in skyline:
            if stats is not None:
                stats.dominance_tests += 1
            if _dominates(s, p):
                dominated = True
                break
        if not dominated:
            skyline.append(p)
    return skyline


def _dominates(a: Point, b: Point) -> bool:
    strict = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            strict = True
    return strict
