"""Skyline computation algorithms.

The paper's machinery repeatedly needs skylines: the dominator set of a
product must be reduced to its skyline before Algorithm 1 runs, and the
improved probing algorithm folds a BBS-style skyline computation into its
range query.  This package implements the classic algorithms the paper cites
as related work, each usable standalone:

* :func:`~repro.skyline.bnl.bnl_skyline` — Block-Nested-Loops [Börzsönyi
  et al., ICDE 2001];
* :func:`~repro.skyline.sfs.sfs_skyline` — Sort-Filter-Skyline [Chomicki
  et al., ICDE 2003];
* :func:`~repro.skyline.dnc.dnc_skyline` — divide & conquer [Börzsönyi
  et al.];
* :func:`~repro.skyline.bbs.bbs_skyline` — Branch-and-Bound Skyline over an
  R-tree [Papadias et al., SIGMOD 2003];
* :func:`~repro.skyline.vectorized.numpy_skyline` — a vectorized reference
  used by tests and dataset preparation.
"""

from repro.skyline.bnl import bnl_skyline
from repro.skyline.sfs import sfs_skyline
from repro.skyline.dnc import dnc_skyline
from repro.skyline.bbs import bbs_skyline
from repro.skyline.skyband import dominance_counts, k_skyband
from repro.skyline.vectorized import numpy_skyline, numpy_skyline_mask
from repro.skyline.zorder import morton_codes, zorder_skyline

ALGORITHMS = {
    "bnl": bnl_skyline,
    "sfs": sfs_skyline,
    "dnc": dnc_skyline,
    "zorder": zorder_skyline,
}

__all__ = [
    "ALGORITHMS",
    "bbs_skyline",
    "bnl_skyline",
    "dnc_skyline",
    "dominance_counts",
    "k_skyband",
    "morton_codes",
    "numpy_skyline",
    "numpy_skyline_mask",
    "sfs_skyline",
    "zorder_skyline",
]
