"""Vectorized (numpy) skyline — the test-suite reference implementation.

``numpy_skyline_mask`` computes, for each row of an ``(n, d)`` matrix,
whether some other row dominates it, using a sorted sweep so only
candidate dominators (rows with a smaller-or-equal coordinate sum prefix)
are compared.  It is independent of every pointer-based implementation in
this package, which makes it the arbiter in algorithm-agreement tests, and
fast enough to pre-split experiment datasets into skyline / non-skyline
tuples (the Fig. 4 wine protocol needs exactly that).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def numpy_skyline_mask(data: "np.ndarray") -> "np.ndarray":
    """Return a boolean mask selecting the skyline rows of ``data``.

    Args:
        data: an ``(n, d)`` float array; smaller is better on every column.
            Duplicate rows are all marked as skyline members if the row is
            undominated (duplicates never dominate each other).

    Returns:
        Boolean array of shape ``(n,)``; ``True`` marks skyline rows.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"expected an (n, d) array, got shape {arr.shape}")
    n = arr.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    # Sort by coordinate sum: a dominator always has a <= sum, so each row
    # only needs comparing against earlier rows in this order.  The
    # lexicographic tie-break keeps dominators first even when sums
    # collide in floating point (e.g. one coordinate underflows): if p
    # dominates q, p is strictly lexicographically smaller, exactly.
    sums = arr.sum(axis=1)
    order = np.lexsort(
        tuple(arr[:, i] for i in range(arr.shape[1] - 1, -1, -1))
        + (sums,)
    )
    sorted_arr = arr[order]
    keep_sorted = np.ones(n, dtype=bool)
    kept_rows: List[int] = []
    for i in range(n):
        row = sorted_arr[i]
        if kept_rows:
            cand = sorted_arr[kept_rows]
            le = (cand <= row).all(axis=1)
            lt = (cand < row).any(axis=1)
            if bool(np.any(le & lt)):
                keep_sorted[i] = False
                continue
        kept_rows.append(i)
    mask = np.zeros(n, dtype=bool)
    mask[order] = keep_sorted
    return mask


def numpy_skyline(
    points: Sequence[Sequence[float]],
) -> List[Tuple[float, ...]]:
    """Return the skyline of ``points`` (deduplicated) via numpy.

    Convenience wrapper around :func:`numpy_skyline_mask` returning tuples,
    in ascending coordinate-sum order, without duplicates.
    """
    if len(points) == 0:
        return []
    arr = np.asarray(points, dtype=np.float64)
    mask = numpy_skyline_mask(arr)
    rows = arr[mask]
    seen = set()
    out: List[Tuple[float, ...]] = []
    order = np.argsort(rows.sum(axis=1), kind="stable")
    for i in order:
        t = tuple(float(v) for v in rows[i])
        if t not in seen:
            seen.add(t)
            out.append(t)
    return out
