"""k-skyband computation.

The *k-skyband* of a point set contains every point dominated by fewer
than ``k`` other points; the skyline is the 1-skyband.  In the upgrading
context the skyband is the natural "almost competitive" shortlist: a
manufacturer screening candidates can restrict the candidate set ``T`` to
its catalog's k-skyband complement, and the dominance-count itself is a
useful difficulty proxy (more dominators — costlier upgrades, under a
monotone cost model, in expectation).

Implemented as a counting variant of block-nested-loops: a window holds
``(point, dominator_count)`` pairs; points whose count reaches ``k`` are
evicted.  A numpy batch pre-counter handles large inputs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.instrumentation import Counters

Point = Tuple[float, ...]


def k_skyband(
    points: Sequence[Sequence[float]],
    k: int,
    stats: Optional[Counters] = None,
) -> List[Point]:
    """Return the points dominated by fewer than ``k`` others.

    Args:
        points: the input set (smaller-is-better on every dimension).
        k: the band width; ``k=1`` yields the skyline.
        stats: optional counters (``dominance_tests``).

    Returns:
        The k-skyband, deduplicated, in first-seen order.  Duplicates
        count as one point (equal points never dominate each other).
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    unique: List[Point] = []
    seen = set()
    for raw in points:
        p = tuple(float(v) for v in raw)
        if p not in seen:
            seen.add(p)
            unique.append(p)
    if not unique:
        return []
    if stats is not None:
        stats.dominance_tests += len(unique) * (len(unique) - 1)
    arr = np.asarray(unique, dtype=np.float64)
    counts = dominance_counts(arr)
    return [p for p, c in zip(unique, counts) if c < k]


def dominance_counts(points: "np.ndarray") -> "np.ndarray":
    """Return, per row, how many other rows dominate it.

    Vectorized row-vs-all comparison, chunked to bound peak memory at
    roughly ``chunk * n`` booleans.
    """
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim != 2:
        raise ConfigurationError(f"expected (n, d) points, got {arr.shape}")
    n = arr.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    chunk = max(1, 4_000_000 // max(1, n))
    for start in range(0, n, chunk):
        block = arr[start : start + chunk]          # (b, d)
        le = (arr[None, :, :] <= block[:, None, :]).all(axis=2)  # (b, n)
        lt = (arr[None, :, :] < block[:, None, :]).any(axis=2)
        counts[start : start + chunk] = (le & lt).sum(axis=1)
    return counts
