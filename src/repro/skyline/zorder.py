"""Z-order (Morton-curve) skyline computation.

The paper's related work cites Lee et al., *Approaching the skyline in Z
order* (VLDB 2007): sorting points by their Morton code yields a traversal
in which a point can only be dominated by points that precede it on the
curve *or* share a curve region with it.  The key property used here is
simpler and exact: the Morton order is a *topological sort of the dominance
order* — if ``p`` dominates ``q``, then ``p``'s Morton code is strictly
smaller (every coordinate bit of ``p`` is ``<=`` at equal positions, with
the first differing bit favouring ``p``).  A single forward pass with a
window of accepted skyline points (as in SFS) is therefore correct, and the
curve order tends to place dominators early, keeping the window effective.

Coordinates are quantized to ``bits`` per dimension over the data's
bounding box.  Quantization only affects the *visit order*; dominance tests
always use the exact coordinates, so results equal the other skyline
algorithms exactly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.instrumentation import Counters

Point = Tuple[float, ...]


def morton_codes(
    points: "np.ndarray", bits: int = 16
) -> "np.ndarray":
    """Return the Morton (Z-curve) code of every row of ``points``.

    Args:
        points: an ``(n, d)`` float array.
        bits: quantization bits per dimension; ``d * bits`` must fit in 63
            bits to keep the interleaved code in a signed int64.

    Returns:
        An ``(n,)`` int64 array of interleaved codes.
    """
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim != 2:
        raise ConfigurationError(f"expected (n, d) points, got {arr.shape}")
    n, dims = arr.shape
    if bits < 1 or dims * bits > 63:
        raise ConfigurationError(
            f"d*bits must be in [1, 63]: d={dims}, bits={bits}"
        )
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    lo = arr.min(axis=0)
    hi = arr.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    scale = (1 << bits) - 1
    cells = np.minimum(
        ((arr - lo) / span * scale).astype(np.int64), scale
    )
    codes = np.zeros(n, dtype=np.int64)
    for bit in range(bits - 1, -1, -1):
        for dim in range(dims):
            codes = (codes << 1) | ((cells[:, dim] >> bit) & 1)
    return codes


def zorder_skyline(
    points: Sequence[Sequence[float]],
    bits: int = 16,
    stats: Optional[Counters] = None,
) -> List[Point]:
    """Return the skyline of ``points`` via a Morton-order forward pass.

    Args:
        points: the input set (smaller-is-better on every dimension).
        bits: Morton quantization bits per dimension.
        stats: optional counters (``dominance_tests``).

    Returns:
        Skyline points (deduplicated), in Morton-code order.
    """
    unique = sorted(set(tuple(float(v) for v in p) for p in points))
    if not unique:
        return []
    arr = np.asarray(unique, dtype=np.float64)
    # Primary key: Morton code (a topological sort of dominance across
    # cells).  Within one quantized cell the code ties; the lexicographic
    # coordinate tie-break puts dominators first exactly (if p dominates
    # q, p is strictly lexicographically smaller — no floating-point sum
    # can disturb that), preserving the no-eviction invariant.
    order = np.lexsort(
        tuple(arr[:, i] for i in range(arr.shape[1] - 1, -1, -1))
        + (morton_codes(arr, bits),)
    )
    skyline: List[Point] = []
    for idx in order:
        p = unique[idx]
        dominated = False
        for s in skyline:
            if stats is not None:
                stats.dominance_tests += 1
            if _dominates(s, p):
                dominated = True
                break
        if not dominated:
            skyline.append(p)
    if stats is not None:
        stats.skyline_points += len(skyline)
    return skyline


def _dominates(a: Point, b: Point) -> bool:
    strict = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            strict = True
    return strict
