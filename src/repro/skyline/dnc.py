"""Divide-and-conquer skyline (Börzsönyi, Kossmann, Stocker — ICDE 2001).

Splits the input at the median of the first dimension, recursively computes
the two partial skylines, and merges: points from the "worse" half survive
only if no point of the "better" half dominates them.  ``O(n log n)`` for
two dimensions, and a useful cross-check implementation for the test suite's
algorithm-agreement properties.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.instrumentation import Counters

Point = Tuple[float, ...]
_SMALL = 16  # below this, BNL-style filtering beats recursion overhead


def dnc_skyline(
    points: Sequence[Sequence[float]],
    stats: Optional[Counters] = None,
) -> List[Point]:
    """Return the skyline of ``points`` by divide and conquer.

    Args:
        points: input set (smaller-is-better on every dimension).
        stats: optional counters (``dominance_tests`` per comparison).

    Returns:
        Skyline points as tuples (sorted by the first dimension).
    """
    unique = sorted({tuple(p) for p in points})
    return _dnc(unique, stats)


def _dnc(points: List[Point], stats: Optional[Counters]) -> List[Point]:
    if len(points) <= _SMALL:
        return _filter_small(points, stats)
    mid = len(points) // 2
    left = _dnc(points[:mid], stats)    # better (smaller) first-dim half
    right = _dnc(points[mid:], stats)   # worse first-dim half
    merged = list(left)
    for p in right:
        dominated = False
        for s in left:
            if stats is not None:
                stats.dominance_tests += 1
            if _dominates(s, p):
                dominated = True
                break
        if not dominated:
            merged.append(p)
    return merged


def _filter_small(points: List[Point], stats: Optional[Counters]) -> List[Point]:
    skyline: List[Point] = []
    for p in points:
        dominated = False
        for s in skyline:
            if stats is not None:
                stats.dominance_tests += 1
            if _dominates(s, p):
                dominated = True
                break
        if not dominated:
            # Sorted input: p cannot dominate an accepted point with a
            # strictly smaller first coordinate, but equal-first-coordinate
            # points can still be dominated, so evict those.
            skyline = [
                s
                for s in skyline
                if not _dominates(p, s)
            ]
            skyline.append(p)
    return skyline


def _dominates(a: Point, b: Point) -> bool:
    strict = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            strict = True
    return strict
