"""Seeded, deterministic fault injection for the serving stack.

A process-wide :class:`FaultInjector` arms a set of **named injection
points** that the serving stack's hot paths consult.  Each armed point can
inject a typed exception, a latency spike, or a corrupted result, at a
per-point probability drawn from one seeded PRNG — so a chaos run is
reproducible from its :class:`FaultPlan` alone (single-threaded runs
exactly; multi-threaded runs up to scheduler interleaving of the shared
draw sequence).

**Zero cost when disabled.**  Call sites go through :func:`maybe_inject` /
:func:`maybe_corrupt`, which read one module global and return immediately
when no injector is installed; points are consulted at per-query (not
per-node) granularity so even an armed injector costs one dict lookup per
query.  ``skyup serve-bench`` guards the disabled-path overhead.

The known points (see :data:`INJECTION_POINTS`):

``serve.handler``
    Worker batch execution (:meth:`UpgradeEngine._execute_batch`) —
    exercises worker supervision and :class:`WorkerCrashError` containment.
``serve.cache``
    Skyline/top-k cache lookups — a cache fault degrades to a recompute,
    never a failed request.
``rtree.query``
    R-tree traversals (range queries, dominator-skyline search) — raises
    :class:`~repro.exceptions.InjectedFaultError`, which the engine
    retries with capped backoff.
``kernels.dominance``
    The columnar dominance test's verdict (scalar oracle unaffected) —
    exercises the sampling kernel guard and quarantine.
``kernels.bounds``
    The batched join-list pair bounds (scalar oracle unaffected).
``persist.load``
    R-tree index loading.
``shard.transport.delay``
    Coordinator-side shard command submission (latency/error faults) —
    a latency spec stalls the command just like a slow IPC hop, which
    is what hedged scatter is calibrated against.
``shard.transport.drop``
    Shard command delivery (corrupt kind): the command is silently
    never enqueued, so its reply only ever resolves via a hedge
    re-issue or an RPC timeout — the breaker path.
``shard.transport.dup``
    Shard command delivery (corrupt kind): the command is enqueued
    twice, exercising the worker's idempotent (sequence-deduped)
    command handling.

Example::

    plan = FaultPlan(seed=7, rate=0.2, points=("rtree.query",))
    with inject_faults(plan) as injector:
        drive_engine()
    assert injector.stats()["rtree.query"]["fired"] > 0
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Mapping, Optional, Tuple, Union

from repro.exceptions import ConfigurationError, InjectedFaultError

#: Every injection point the stack consults, and the only names a
#: :class:`FaultPlan` may arm (typos fail fast at plan construction).
INJECTION_POINTS = frozenset(
    {
        "serve.handler",
        "serve.cache",
        "rtree.query",
        "kernels.dominance",
        "kernels.bounds",
        "persist.load",
        "shard.transport.delay",
        "shard.transport.drop",
        "shard.transport.dup",
    }
)

#: What an armed point does when its draw fires.
FAULT_KINDS = ("error", "latency", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """Behaviour of one armed injection point.

    Attributes:
        rate: probability in ``[0, 1]`` that a consultation fires.
        kind: ``"error"`` raises ``error_type``, ``"latency"`` sleeps
            ``latency_s``, ``"corrupt"`` mutates results at
            :func:`maybe_corrupt` sites (and is inert at
            :func:`maybe_inject` sites, and vice versa).
        error_type: exception type raised for ``kind="error"``.
        latency_s: sleep duration for ``kind="latency"``.
        max_fires: stop firing after this many hits (``None`` = unlimited).
    """

    rate: float = 0.1
    kind: str = "error"
    error_type: type = InjectedFaultError
    latency_s: float = 0.005
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"fault rate must be in [0, 1], got {self.rate}"
            )
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.latency_s < 0:
            raise ConfigurationError(
                f"latency_s must be >= 0, got {self.latency_s}"
            )


PointsArg = Union[Mapping[str, FaultSpec], Tuple[str, ...], Iterator[str]]


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible chaos scenario: seed, default rate, armed points.

    ``points`` is either a mapping ``{point: FaultSpec}`` or a plain
    iterable of point names, each armed as ``FaultSpec(rate=plan.rate)``
    (error kind).  Unknown point names raise
    :class:`~repro.exceptions.ConfigurationError`.
    """

    seed: int = 0
    rate: float = 0.1
    points: PointsArg = field(default_factory=tuple)

    def specs(self) -> Dict[str, FaultSpec]:
        """The normalized ``{point: FaultSpec}`` mapping (validated)."""
        if isinstance(self.points, Mapping):
            specs = dict(self.points)
        else:
            specs = {
                name: FaultSpec(rate=self.rate) for name in self.points
            }
        for name, spec in specs.items():
            if name not in INJECTION_POINTS:
                raise ConfigurationError(
                    f"unknown injection point {name!r}; known points: "
                    f"{', '.join(sorted(INJECTION_POINTS))}"
                )
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"point {name!r} must map to a FaultSpec, "
                    f"got {type(spec).__name__}"
                )
        return specs


class FaultInjector:
    """Executes a :class:`FaultPlan`; thread-safe, seeded, counting.

    One shared ``random.Random(plan.seed)`` drives every fire decision
    under a lock, so the total draw sequence is fixed by the seed; per
    point it tracks how often the point was *reached* and how often it
    *fired*.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._specs = plan.specs()
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._reached: Dict[str, int] = {}  # guarded-by: _lock
        self._fired: Dict[str, int] = {}  # guarded-by: _lock

    def _should_fire(self, point: str, spec: FaultSpec) -> bool:
        with self._lock:
            self._reached[point] = self._reached.get(point, 0) + 1
            if spec.rate <= 0.0:
                return False
            if (
                spec.max_fires is not None
                and self._fired.get(point, 0) >= spec.max_fires
            ):
                return False
            if self._rng.random() >= spec.rate:
                return False
            self._fired[point] = self._fired.get(point, 0) + 1
            return True

    def on_reach(self, point: str) -> None:
        """Consult ``point`` for an error/latency fault (may raise/sleep)."""
        spec = self._specs.get(point)
        if spec is None or spec.kind == "corrupt":
            return
        if not self._should_fire(point, spec):
            return
        if spec.kind == "latency":
            time.sleep(spec.latency_s)
            return
        raise spec.error_type(f"injected fault at {point!r}")

    def on_result(
        self, point: str, value: object, mutator: Callable[[object], object]
    ) -> object:
        """Consult ``point`` for a corruption fault on ``value``."""
        spec = self._specs.get(point)
        if spec is None or spec.kind != "corrupt":
            return value
        if not self._should_fire(point, spec):
            return value
        return mutator(value)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-point ``{"reached": n, "fired": m}`` counters."""
        with self._lock:
            points = set(self._reached) | set(self._specs)
            return {
                point: {
                    "reached": self._reached.get(point, 0),
                    "fired": self._fired.get(point, 0),
                }
                for point in sorted(points)
            }

    def fired(self, point: str) -> int:
        """How many times ``point`` has fired so far."""
        with self._lock:
            return self._fired.get(point, 0)

    def __repr__(self) -> str:
        armed = ", ".join(sorted(self._specs))
        return f"FaultInjector(seed={self.plan.seed}, armed=[{armed}])"


#: The process-wide injector consulted by every call site (None = chaos
#: off; the common case, kept to a single global read).
_ACTIVE: Optional[FaultInjector] = None
_INSTALL_LOCK = threading.Lock()


def active_injector() -> Optional[FaultInjector]:
    """The installed injector, or ``None`` when fault injection is off."""
    return _ACTIVE


def install(plan: Union[FaultPlan, FaultInjector]) -> FaultInjector:
    """Install a process-wide injector.

    Raises:
        ConfigurationError: an injector is already installed (nested chaos
            runs would silently share draw sequences; uninstall first).
    """
    global _ACTIVE
    injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    with _INSTALL_LOCK:
        if _ACTIVE is not None:
            raise ConfigurationError(
                "a fault injector is already installed; call uninstall() "
                "or use the inject_faults() context manager"
            )
        _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Remove the installed injector (idempotent)."""
    global _ACTIVE
    with _INSTALL_LOCK:
        _ACTIVE = None


@contextmanager
def inject_faults(
    plan: Union[FaultPlan, FaultInjector]
) -> Iterator[FaultInjector]:
    """Install ``plan`` for the duration of the block.

    Example::

        with inject_faults(FaultPlan(seed=3, points=("serve.cache",))):
            engine.execute_batch(queries)
    """
    injector = install(plan)
    try:
        yield injector
    finally:
        uninstall()


def maybe_inject(point: str) -> None:
    """Consult ``point`` if chaos is on; no-op (one global read) otherwise.

    Raises:
        InjectedFaultError: (or the spec's ``error_type``) when an armed
            error fault fires.
    """
    injector = _ACTIVE
    if injector is not None:
        injector.on_reach(point)


def maybe_corrupt(
    point: str, value: object, mutator: Callable[[object], object]
) -> object:
    """Return ``value``, possibly mutated by an armed corruption fault."""
    injector = _ACTIVE
    if injector is None:
        return value
    return injector.on_result(point, value, mutator)
