"""Retry policy for transiently-failed requests: capped backoff + jitter.

The serving engine retries a request when its execution raises a
:class:`~repro.exceptions.TransientError` (injected faults derive from it;
so would a flaky I/O layer).  Delays grow exponentially from
``base_delay_s``, are capped at ``max_delay_s``, and carry multiplicative
jitter so retries from concurrently-failing workers do not re-collide in
lockstep.  Retries sleep on the worker thread, so delays are kept in the
low-millisecond range — backoff here spreads contention, it does not wait
out multi-second outages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient failure, and how long to wait.

    Attributes:
        max_attempts: total tries including the first (1 = never retry).
        base_delay_s: delay before the first retry.
        max_delay_s: cap on any single delay (before jitter).
        jitter: delay is scaled by ``1 + uniform(0, jitter)``.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.001
    max_delay_s: float = 0.050
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ConfigurationError(
                f"need 0 <= base_delay_s <= max_delay_s, got "
                f"{self.base_delay_s} / {self.max_delay_s}"
            )
        if self.jitter < 0:
            raise ConfigurationError(
                f"jitter must be >= 0, got {self.jitter}"
            )

    def delay_s(
        self, attempt: int, rng: "random.Random | None" = None
    ) -> float:
        """Jittered delay before retry number ``attempt`` (1-based).

        ``rng`` pins the jitter draw for reproducible tests; the default
        uses the module-level PRNG.
        """
        raw = min(
            self.max_delay_s, self.base_delay_s * (2.0 ** (attempt - 1))
        )
        if self.jitter <= 0:
            return raw
        u = (rng or random).random()
        return raw * (1.0 + self.jitter * u)
