"""Reliability layer: fault injection, retries, and runtime result guards.

The serving stack (:mod:`repro.serve`) and the columnar kernels
(:mod:`repro.kernels`) promise correct-or-degraded answers under load;
this package is what backs that promise up:

* :mod:`repro.reliability.faults` — a seeded, deterministic
  fault-injection framework with named injection points threaded through
  the serve pool, caches, R-tree traversals, kernel dispatch, and
  persistence (zero-cost when disabled);
* :mod:`repro.reliability.retry` — capped exponential backoff + jitter
  for transiently-failed requests;
* :mod:`repro.reliability.guards` — the sampling kernel-vs-scalar
  cross-checker with quarantine, and the budgeted R-tree invariant check.

``tests/test_reliability_chaos.py`` drives the engine through hundreds of
seeded fault scenarios and asserts the core invariants: no deadlock, every
admitted query reaches a terminal response, pool capacity never degrades,
and divergence injection quarantines the kernels with served answers
matching the scalar oracle.
"""

from repro.reliability.faults import (
    FAULT_KINDS,
    INJECTION_POINTS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active_injector,
    inject_faults,
    install,
    maybe_corrupt,
    maybe_inject,
    uninstall,
)
from repro.reliability.guards import IndexGuard, KernelGuard, divergence
from repro.reliability.retry import RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "INJECTION_POINTS",
    "IndexGuard",
    "KernelGuard",
    "RetryPolicy",
    "active_injector",
    "divergence",
    "inject_faults",
    "install",
    "maybe_corrupt",
    "maybe_inject",
    "uninstall",
]
