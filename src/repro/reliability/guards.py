"""Runtime result guards: sampled kernel cross-checks and index validation.

Two guards keep a long-running engine's answers trustworthy:

* :class:`KernelGuard` — re-runs a configurable fraction of kernel-path
  results through the scalar oracle (the paper-verbatim implementations
  retained by :mod:`repro.kernels`).  On divergence it records a
  :class:`~repro.exceptions.KernelDivergenceError`, **quarantines** the
  kernels (flips the now thread-safe global switch to scalar), and the
  engine serves the oracle's answer — correctness degrades to slower, not
  wrong.  Sampling (rather than shadow-executing everything) is a
  deliberate cost choice; DESIGN.md discusses the tradeoff.
* :class:`IndexGuard` — a budgeted structural check of the session's
  R-trees (reusing :func:`repro.rtree.validate.validate_rtree`) after
  catalog mutations: full validation is ``O(n)``, so it runs every
  ``every``-th mutation instead of on each one.
"""

from __future__ import annotations

import math
import random
import threading
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import KernelDivergenceError
from repro.kernels.switch import set_kernels_enabled
from repro.obs import span

Point = Tuple[float, ...]


class KernelGuard:
    """Sampling cross-checker for kernel-path results.

    Args:
        sample_rate: fraction of kernel-path answers re-run through the
            scalar oracle (1.0 = check everything — the chaos suite does).
        seed: PRNG seed for the sampling draws.
        tolerance: absolute cost difference treated as agreement (the
            kernels are bit-identical to the oracles by construction, so
            any slack here is pure defensive margin).
        quarantine_after: divergences tolerated before the kernels are
            quarantined (1 = first divergence flips to scalar).
    """

    def __init__(
        self,
        sample_rate: float = 0.05,
        seed: int = 2012,
        tolerance: float = 1e-9,
        quarantine_after: int = 1,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        self.sample_rate = sample_rate
        self.tolerance = tolerance
        self.quarantine_after = quarantine_after
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.checks = 0  # guarded-by: _lock
        self.divergences: List[KernelDivergenceError] = (
            []
        )  # guarded-by: _lock
        self.quarantined = False  # guarded-by: _lock

    def should_check(self) -> bool:
        """Draw one sampling decision (always False once quarantined).

        After quarantine the kernels are globally off, so a cross-check
        would compare the scalar path against itself — pure waste.
        """
        # skyup: ignore[SKY101] — lock-free fast path; stale read is benign
        if self.quarantined or self.sample_rate <= 0.0:
            return False
        with self._lock:
            if self._rng.random() >= self.sample_rate:
                return False
            self.checks += 1
            return True

    def costs_match(self, served: float, oracle: float) -> bool:
        """True iff two result costs agree within the guard's tolerance."""
        if math.isnan(served) or math.isnan(oracle):
            return False
        return abs(served - oracle) <= self.tolerance

    def record_divergence(self, error: KernelDivergenceError) -> bool:
        """Log one divergence; returns True if it triggered quarantine."""
        with span("guard.divergence") as sp:
            with self._lock:
                self.divergences.append(error)
                if (
                    not self.quarantined
                    and len(self.divergences) >= self.quarantine_after
                ):
                    self.quarantined = True
                    triggered = True
                else:
                    triggered = False
            if triggered:
                set_kernels_enabled(False)
            sp.set(quarantined=triggered)
            return triggered

    def reset(self, re_enable_kernels: bool = True) -> None:
        """Clear divergence state and (optionally) lift the quarantine."""
        with self._lock:
            self.divergences = []
            was_quarantined = self.quarantined
            self.quarantined = False
        if was_quarantined and re_enable_kernels:
            set_kernels_enabled(True)

    def stats(self) -> Dict[str, object]:
        """JSON-ready counters for the metrics snapshot."""
        with self._lock:
            return {
                "sample_rate": self.sample_rate,
                "checks": self.checks,
                "divergences": len(self.divergences),
                "quarantined": self.quarantined,
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"KernelGuard(sample_rate={self.sample_rate}, "
                f"checks={self.checks}, "
                f"divergences={len(self.divergences)}, "
                f"quarantined={self.quarantined})"
            )


def divergence(
    kind: str,
    served: Sequence[Tuple[int, float]],
    oracle: Sequence[Tuple[int, float]],
) -> KernelDivergenceError:
    """Build a :class:`KernelDivergenceError` describing one mismatch.

    ``served``/``oracle`` are ``(record_id, cost)`` pairs — enough to
    reconstruct what diverged without holding full result objects alive.
    """
    return KernelDivergenceError(
        f"kernel/scalar divergence on {kind}: "
        f"kernel answered {list(served)}, oracle answered {list(oracle)}"
    )


class IndexGuard:
    """Budgeted R-tree invariant checking after catalog mutations.

    ``should_check()`` is called once per mutation and returns True every
    ``every``-th call; the engine then validates both session trees under
    its write lock.  ``every=0`` disables the guard entirely.
    """

    def __init__(self, every: int = 64):
        if every < 0:
            raise ValueError(f"every must be >= 0, got {every}")
        self.every = every
        self._lock = threading.Lock()
        self.mutations = 0  # guarded-by: _lock
        self.checks = 0  # guarded-by: _lock
        self.failures = 0  # guarded-by: _lock

    def should_check(self) -> bool:
        """Count one mutation; True when this one is due a validation."""
        if self.every == 0:
            return False
        with self._lock:
            self.mutations += 1
            if self.mutations % self.every != 0:
                return False
            self.checks += 1
            return True

    def record_failure(self) -> None:
        """Count one failed validation (the error itself propagates)."""
        with self._lock:
            self.failures += 1

    def stats(self) -> Dict[str, int]:
        """JSON-ready counters for the metrics snapshot."""
        with self._lock:
            return {
                "every": self.every,
                "mutations": self.mutations,
                "checks": self.checks,
                "failures": self.failures,
            }
