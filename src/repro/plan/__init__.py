"""Cost-based query planning for top-k product upgrading.

The paper leaves algorithm choice (probe-based vs join-based, NLB/CLB/ALB
join bounds) to the caller, but the right choice depends on catalog
statistics the library already tracks.  This package closes that gap:

* :mod:`repro.plan.stats` — a :class:`CatalogProfile` summarizing the
  catalogs (sizes, dimensionality, R-tree shape, estimated dominator
  skyline size) from :mod:`repro.rtree.stats`;
* :mod:`repro.plan.logical` — the :class:`LogicalPlan` describing *what*
  to compute, independent of *how*;
* :mod:`repro.plan.physical` — executable :class:`PhysicalPlan`
  alternatives (method × bound × kernel cutover) and their execution;
* :mod:`repro.plan.cost` — the :class:`PlanCostModel` mapping catalog
  statistics to estimated work counters and seconds;
* :mod:`repro.plan.planner` — the :class:`Planner`: enumerate, cost,
  choose, and learn from observed runtimes (EWMA per-plan scales plus
  periodic non-negative least-squares refits of the unit costs);
* :mod:`repro.plan.explain` — the EXPLAIN tree with estimated vs actual
  costs per node, rendered by ``skyup explain`` and ``explain=True``.

Layering: ``repro.plan`` may import ``repro.core`` and ``repro.rtree``
but never ``repro.serve`` (the serving engine imports the planner, not
the other way around) — enforced by lint rule SKY701.
"""

from repro.plan.cost import PlanCostModel, WorkEstimate
from repro.plan.explain import (
    ExplainReport,
    PlanNode,
    validate_explain_json,
)
from repro.plan.logical import LogicalPlan
from repro.plan.physical import PhysicalPlan, execute_plan
from repro.plan.planner import PlannedQuery, Planner, default_planner
from repro.plan.stats import CatalogProfile, profile_catalog

__all__ = [
    "CatalogProfile",
    "ExplainReport",
    "LogicalPlan",
    "PhysicalPlan",
    "PlanCostModel",
    "PlanNode",
    "PlannedQuery",
    "Planner",
    "WorkEstimate",
    "default_planner",
    "execute_plan",
    "profile_catalog",
    "validate_explain_json",
]
