"""The logical side of planning: *what* to compute.

A :class:`LogicalPlan` pairs the query shape (top-k over the current
catalogs) with the :class:`~repro.plan.stats.CatalogProfile` the cost
model will consult.  Physical concerns — which algorithm, which bound,
which kernel cutover — live in :mod:`repro.plan.physical`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.plan.stats import CatalogProfile


@dataclass(frozen=True)
class LogicalPlan:
    """A top-k upgrade query over profiled catalogs.

    Attributes:
        k: how many cheapest-to-upgrade products are requested.
        profile: catalog statistics at planning time.
        lbc_mode: the per-pair bound variant any join-family physical
            plan must use (a correctness setting, not a planner choice).
    """

    k: int
    profile: CatalogProfile
    lbc_mode: str = "corrected"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")

    def describe(self) -> str:
        """Header line of the EXPLAIN tree."""
        return f"topk k={self.k} {self.profile.describe()}"
