"""The planner: enumerate, cost, choose — then learn from what ran.

:meth:`Planner.plan` evaluates every physical alternative against the
cost model and picks the cheapest (enumeration-order ties go to the
join with the default bound, so a fresh planner on a toss-up catalog
behaves exactly like the pre-planner default).  :meth:`Planner.observe`
closes the loop after execution:

* every run folds its actual/estimated ratio into the plan's EWMA scale;
* ``misestimate_patience`` consecutive ratios outside
  ``[1/misestimate_ratio, misestimate_ratio]`` snap the scale to the
  observed value and bump :attr:`Planner.version` — callers that cache a
  chosen plan (the serving engine) key on the version and re-plan;
* once a family accumulates enough (counters, seconds) observations,
  its unit costs are refit by non-negative least squares
  (:func:`repro.costs.calibration.fit_unit_costs`), again bumping the
  version.

The kernel-vs-scalar join-list cutover — historically the hard-coded
``_VECTOR_JL_FROM = 8`` — is a planner attribute:
:meth:`calibrate_vector_cutover` micro-benchmarks the dominance kernel
against the scalar loop on this machine and every subsequent join plan
carries the measured crossover.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.join import _VECTOR_JL_FROM
from repro.exceptions import CostFunctionError
from repro.geometry.point import dominates
from repro.instrumentation import Counters, Stopwatch
from repro.kernels.dominance import dominating_mask
from repro.plan.cost import PlanCostModel, WorkEstimate
from repro.plan.explain import ExplainReport, PlanNode
from repro.plan.logical import LogicalPlan
from repro.plan.physical import PhysicalPlan

#: Enumeration order doubles as the tie-break: earlier wins on equal
#: estimates, so ``join[clb]`` — the library's historical default —
#: prevails unless something is measurably cheaper.
_CANDIDATE_ORDER: Tuple[Tuple[str, str], ...] = (
    ("join", "clb"),
    ("join", "alb"),
    ("join", "nlb"),
    ("probing", "clb"),
    ("basic-probing", "clb"),
)


@dataclass(frozen=True)
class CandidateEstimate:
    """One costed alternative, as enumerated by :meth:`Planner.plan`."""

    plan: PhysicalPlan
    work: WorkEstimate
    seconds: float


@dataclass(frozen=True)
class PlannedQuery:
    """The planner's answer: the chosen plan plus everything it beat."""

    logical: LogicalPlan
    plan: PhysicalPlan
    candidates: Tuple[CandidateEstimate, ...]
    version: int
    forced: bool = False

    @property
    def estimated_seconds(self) -> float:
        for candidate in self.candidates:
            if candidate.plan == self.plan:
                return candidate.seconds
        return 0.0

    def explain(self) -> ExplainReport:
        """Build the EXPLAIN tree (no actuals yet; see ``attach_actual``)."""
        children = []
        for candidate in self.candidates:
            chosen = candidate.plan == self.plan
            node = PlanNode(
                label=candidate.plan.describe(),
                estimated={
                    "seconds": candidate.seconds,
                    **candidate.work.to_dict(),
                },
                chosen=chosen,
                detail=candidate.plan.to_dict(),
            )
            children.append(node)
        root = PlanNode(
            label=self.logical.describe()
            + (" (forced)" if self.forced else ""),
            estimated={"seconds": self.estimated_seconds},
            chosen=True,
            children=children,
        )
        return ExplainReport(
            tree=root,
            chosen=self.plan.label,
            planner_version=self.version,
            profile=self.logical.profile.to_dict(),
        )


def attach_actual(
    report: ExplainReport,
    elapsed_s: float,
    counters: Optional[Counters] = None,
) -> ExplainReport:
    """Record measured cost on every executed node of an EXPLAIN tree.

    The root (the query) and the chosen candidate both executed; the
    losing candidates keep ``actual=None``.
    """
    actual: Dict[str, float] = {"seconds": elapsed_s}
    if counters is not None:
        actual.update(
            node_accesses=float(counters.node_accesses),
            dominance_tests=float(counters.dominance_tests),
            upgrade_calls=float(counters.upgrade_calls),
        )
    report.tree.actual = dict(actual)
    for child in report.tree.children:
        if child.chosen:
            child.actual = dict(actual)
    return report


@dataclass
class _PlanHealth:
    """Per-label feedback state."""

    observations: int = 0
    miss_streak: int = 0
    last_ratio: float = 1.0
    estimate_log_error: float = 0.0


class Planner:
    """Thread-safe cost-based plan selection with calibration feedback.

    Args:
        cost_model: override the seeded :class:`PlanCostModel`.
        misestimate_ratio: actual/estimated beyond this (either way)
            counts as a misestimate.
        misestimate_patience: consecutive misestimates of one plan that
            trigger a version bump (re-plan signal) and a scale snap.
        refit_window: refit a family's unit costs every this many
            observations of that family (needs at least one full window).
        vector_jl_from: initial kernel cutover for join plans; replaced
            by :meth:`calibrate_vector_cutover` when called.
    """

    def __init__(
        self,
        cost_model: Optional[PlanCostModel] = None,
        misestimate_ratio: float = 3.0,
        misestimate_patience: int = 3,
        refit_window: int = 8,
        vector_jl_from: int = _VECTOR_JL_FROM,
    ) -> None:
        self.cost_model = cost_model or PlanCostModel()
        self.misestimate_ratio = misestimate_ratio
        self.misestimate_patience = misestimate_patience
        self.refit_window = refit_window
        self.vector_jl_from = vector_jl_from  # guarded-by: _lock
        self.version = 0  # guarded-by: _lock
        self.calibrated_cutover = False  # guarded-by: _lock
        self._lock = threading.Lock()
        self._health: Dict[str, _PlanHealth] = {}
        self._samples: Dict[str, List[Tuple[Tuple[float, ...], float]]] = {}
        self._plans_chosen: Dict[str, int] = {}
        self._replans = 0

    # -- planning ----------------------------------------------------------

    # holds-lock: _lock
    def candidates(self, logical: LogicalPlan) -> List[PhysicalPlan]:
        """The physical alternatives enumerated for ``logical``."""
        plans = []
        for method, bound in _CANDIDATE_ORDER:
            plans.append(
                PhysicalPlan(
                    method=method,
                    bound=bound,
                    lbc_mode=logical.lbc_mode,
                    vector_jl_from=self.vector_jl_from,
                )
            )
        return plans

    def plan(
        self,
        logical: LogicalPlan,
        force: Optional[PhysicalPlan] = None,
    ) -> PlannedQuery:
        """Cost every alternative and choose (or honor ``force``).

        ``force`` still costs the full candidate set — EXPLAIN on a fixed
        method shows what the planner *would* have picked.
        """
        with self._lock:
            estimates: List[CandidateEstimate] = []
            plans = self.candidates(logical)
            if force is not None and all(p != force for p in plans):
                plans.append(force)
            for plan in plans:
                work = self.cost_model.estimate_work(plan, logical)
                seconds = self.cost_model.estimate_seconds(plan, logical)
                estimates.append(CandidateEstimate(plan, work, seconds))
            if force is not None:
                chosen = force
            else:
                chosen = min(estimates, key=lambda c: c.seconds).plan
            self._plans_chosen[chosen.label] = (
                self._plans_chosen.get(chosen.label, 0) + 1
            )
            return PlannedQuery(
                logical=logical,
                plan=chosen,
                candidates=tuple(estimates),
                version=self.version,
                forced=force is not None,
            )

    # -- feedback ----------------------------------------------------------

    def observe(
        self,
        planned: PlannedQuery,
        elapsed_s: float,
        counters: Optional[Counters] = None,
    ) -> None:
        """Fold one execution's measured cost back into the model."""
        estimated = planned.estimated_seconds
        if estimated <= 0 or elapsed_s <= 0:
            return
        label = planned.plan.label
        family = planned.plan.family
        ratio = elapsed_s / estimated
        with self._lock:
            health = self._health.setdefault(label, _PlanHealth())
            health.observations += 1
            health.last_ratio = ratio
            alpha = 0.3
            health.estimate_log_error = (
                (1 - alpha) * health.estimate_log_error
                + alpha * abs(float(np.log(ratio)))
            )
            if (
                ratio > self.misestimate_ratio
                or ratio < 1.0 / self.misestimate_ratio
            ):
                health.miss_streak += 1
            else:
                health.miss_streak = 0
            if health.miss_streak >= self.misestimate_patience:
                # Repeated misestimates: jump the scale to reality and
                # tell plan-caching callers to re-plan.
                self.cost_model.snap_scale(label, ratio)
                health.miss_streak = 0
                self.version += 1
                self._replans += 1
            else:
                self.cost_model.rescale(label, ratio)
            if counters is not None:
                features = (
                    float(counters.node_accesses),
                    float(counters.dominance_tests),
                    float(
                        counters.skyline_points
                        * planned.logical.profile.dims
                    ),
                )
                samples = self._samples.setdefault(family, [])
                samples.append((features, elapsed_s))
                if (
                    len(samples) >= self.refit_window
                    and len(samples) % self.refit_window == 0
                ):
                    self._refit_locked(family)

    def _refit_locked(self, family: str) -> None:  # holds-lock: _lock
        samples = self._samples[family][-4 * self.refit_window:]
        features = [s[0] for s in samples]
        runtimes = [s[1] for s in samples]
        try:
            applied = self.cost_model.refit(family, features, runtimes)
        except CostFunctionError:
            return
        if applied:
            self.version += 1

    # -- kernel cutover calibration ---------------------------------------

    def calibrate_vector_cutover(
        self,
        dims: int = 2,
        sizes: Sequence[int] = (2, 4, 6, 8, 12, 16, 24, 32),
        repeats: int = 300,
    ) -> int:
        """Measure the kernel-vs-scalar crossover for dominance filtering.

        Times the columnar :func:`repro.kernels.dominance.dominating_mask`
        against the scalar :func:`repro.geometry.point.dominates` loop on
        join lists of increasing size and keeps the smallest size where
        the kernel wins; join plans produced afterwards carry it.
        """
        rng = np.random.default_rng(7)
        point = tuple(1.0 for _ in range(dims))
        crossover = max(sizes)
        for size in sorted(sizes):
            block = rng.random((size, dims))
            rows = [tuple(row) for row in block]
            watch = Stopwatch()
            for _ in range(repeats):
                for row in rows:
                    dominates(row, point)
            scalar_s = watch.split()
            for _ in range(repeats):
                dominating_mask(block, point)
            kernel_s = watch.split() - scalar_s
            if kernel_s < scalar_s:
                crossover = size
                break
        with self._lock:
            self.vector_jl_from = max(1, crossover)
            self.calibrated_cutover = True
            self.version += 1
            return self.vector_jl_from

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Metrics snapshot (serving layer's ``planner`` section)."""
        with self._lock:
            return {
                "version": self.version,
                "replans": self._replans,
                "vector_jl_from": self.vector_jl_from,
                "calibrated_cutover": self.calibrated_cutover,
                "plans_chosen": dict(sorted(self._plans_chosen.items())),
                "plan_health": {
                    label: {
                        "observations": h.observations,
                        "last_ratio": round(h.last_ratio, 3),
                        "log_error_ewma": round(h.estimate_log_error, 3),
                    }
                    for label, h in sorted(self._health.items())
                },
                "cost_model": self.cost_model.to_dict(),
            }


_default_planner: Optional[Planner] = None
_default_planner_lock = threading.Lock()


def default_planner() -> Planner:
    """The process-wide planner used by ``top_k_upgrades(method="auto")``.

    One shared instance so one-shot API calls accumulate calibration
    across invocations; long-lived engines own private planners instead.
    """
    global _default_planner
    with _default_planner_lock:
        if _default_planner is None:
            _default_planner = Planner()
        return _default_planner
