"""The planner's cost model: catalog statistics → work counters → seconds.

Two-stage estimation, mirroring how the algorithms are instrumented:

1. **Work formulas** predict the dominant :class:`Counters` fields per
   physical alternative from the profile (sizes ``|P|``/``|T|``, dims
   ``d``, skyline estimate Ŝ, tree shapes).  The formulas were fitted
   against measured counter traces on the paper's synthetic workloads
   (see DESIGN.md "Cost model vs learned selection"); they are
   deliberately k-free — on upgrade workloads every method enumerates
   all of ``T`` before the heap drains, and measured counters confirm
   k-independence.
2. **Unit costs** (seconds per node access / dominance test / unit of
   upgrade work) turn counters into time.  Seeds come from the same
   measurements; :meth:`PlanCostModel.refit` replaces them with
   non-negative least-squares fits over *observed* (counters, runtime)
   pairs once enough observations accumulate, and a per-plan EWMA scale
   absorbs residual per-machine bias between refits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.costs.calibration import fit_unit_costs
from repro.exceptions import UnknownOptionError
from repro.plan.logical import LogicalPlan
from repro.plan.physical import PhysicalPlan

#: Per-family seconds per (node access, dominance test, unit of upgrade
#: work).  Join node accesses are few but each unpacks a heap entry and
#: rebuilds join lists; probing accesses are simple tree reads.
_UNIT_COST_SEEDS: Dict[str, Tuple[float, float, float]] = {
    "join": (5e-6, 2e-6, 5e-7),
    "probing": (1e-5, 3e-7, 5e-7),
    "basic-probing": (1e-5, 4e-7, 5e-7),
}

#: Relative dominance-test volume by join bound: ALB maintains pair
#: bounds that prune harder (measured ~25% fewer tests than NLB/CLB at
#: d=2).  See :func:`_bound_work` for ALB's dimensionality correction.
_BOUND_WORK = {"nlb": 1.05, "clb": 1.0, "alb": 0.78, "max": 1.0}

#: Skyline-size corrections beyond d=2, fitted on the recorded
#: planner-bench workloads.  As the estimated skyline Ŝ grows, every
#: bound's pruning power converges toward "prune nothing" and what
#: separates the bounds is per-pair evaluation cost: ALB pays O(d) per
#: pair for its adaptive bound, so its d=2 advantage (alb/clb ≈ 0.85)
#: erodes and inverts (≈ 1.1 at Ŝ ≈ 60, worse beyond); NLB is the
#: cheapest bound to evaluate, and its weaker pruning stops mattering
#: on large skylines (nlb/clb ≈ 1.05 at d=2 but ≈ 0.87 at Ŝ ≈ 110).
#: Corrections are log-linear in Ŝ above the pivot and only engage for
#: d > 2 — at d=2 skylines stay small and the seeds already fit.
_SKY_PIVOT = 30.0
_ALB_SKY_PENALTY = 0.35
_NLB_SKY_DISCOUNT = 0.06


def _bound_work(bound: str, dims: int, sky: float) -> float:
    work = _BOUND_WORK.get(bound, 1.0)
    if dims > 2 and sky > _SKY_PIVOT:
        grown = math.log(sky / _SKY_PIVOT)
        if bound == "alb":
            work += _ALB_SKY_PENALTY * grown
        elif bound == "nlb":
            work -= _NLB_SKY_DISCOUNT * grown
    return max(work, 0.5)

#: EWMA weight of the newest actual/estimated ratio.
_SCALE_ALPHA = 0.3


@dataclass(frozen=True)
class WorkEstimate:
    """Predicted work counters for one physical plan."""

    node_accesses: float
    dominance_tests: float
    upgrade_work: float

    def features(self) -> Tuple[float, float, float]:
        """The regression feature vector, in unit-cost order."""
        return (self.node_accesses, self.dominance_tests, self.upgrade_work)

    def to_dict(self) -> dict:
        return {
            "node_accesses": round(self.node_accesses, 1),
            "dominance_tests": round(self.dominance_tests, 1),
            "upgrade_work": round(self.upgrade_work, 1),
        }


class PlanCostModel:
    """Maps (physical plan, logical plan) to estimated work and seconds.

    Instances are not thread-safe on their own; the owning
    :class:`~repro.plan.planner.Planner` serializes access.
    """

    def __init__(self) -> None:
        self.unit_costs: Dict[str, Tuple[float, float, float]] = dict(
            _UNIT_COST_SEEDS
        )
        self.scales: Dict[str, float] = {}
        self.refits = 0

    # -- work formulas -----------------------------------------------------

    def estimate_work(
        self, plan: PhysicalPlan, logical: LogicalPlan
    ) -> WorkEstimate:
        """Predicted counters for running ``plan`` on ``logical``."""
        p = logical.profile
        n_p, n_t, d = p.n_competitors, p.n_products, p.dims
        sky = max(1.0, p.skyline_estimate) if n_p else 0.0
        upgrade_work = n_t * sky * d
        if plan.family == "join":
            work = _bound_work(plan.bound, d, sky)
            return WorkEstimate(
                # The best-first join touches a fraction of both trees.
                node_accesses=0.4 * (p.competitor_nodes + p.product_nodes),
                dominance_tests=work * 7.0 * n_t * sky,
                upgrade_work=upgrade_work,
            )
        if plan.family == "probing":
            # getDominatingSky visits about one node per skyline point
            # (never fewer than a root-to-leaf path) and dominance-tests
            # each visited node's entries against the partial skyline.
            per_product = max(p.competitor_height, 0.7 * sky)
            fanout = max(2.0, p.competitor_fanout)
            return WorkEstimate(
                node_accesses=n_t * per_product,
                dominance_tests=0.5 * n_t * per_product * fanout * sky,
                upgrade_work=upgrade_work,
            )
        if plan.family == "basic-probing":
            # A full ADR range query per product, then a quadratic-ish
            # skyline pass over every dominator found.
            return WorkEstimate(
                node_accesses=float(n_t * p.competitor_nodes),
                dominance_tests=float(n_t) * n_p * (1.0 + sky),
                upgrade_work=upgrade_work,
            )
        raise UnknownOptionError(
            "method", plan.method, tuple(_UNIT_COST_SEEDS)
        )

    # -- seconds -----------------------------------------------------------

    def estimate_seconds(
        self, plan: PhysicalPlan, logical: LogicalPlan
    ) -> float:
        """Estimated wall-clock seconds, including the learned scale."""
        work = self.estimate_work(plan, logical)
        units = self.unit_costs[plan.family]
        base = sum(u * f for u, f in zip(units, work.features()))
        return base * self.scales.get(plan.label, 1.0)

    # -- feedback ----------------------------------------------------------

    def rescale(self, label: str, ratio: float) -> float:
        """Fold one actual/estimated ratio into the plan's EWMA scale."""
        ratio = min(max(ratio, 1e-3), 1e3)
        old = self.scales.get(label, 1.0)
        new = (1.0 - _SCALE_ALPHA) * old + _SCALE_ALPHA * old * ratio
        self.scales[label] = new
        return new

    def snap_scale(self, label: str, ratio: float) -> None:
        """Jump the scale straight to the observed ratio (misestimates)."""
        old = self.scales.get(label, 1.0)
        self.scales[label] = min(max(old * ratio, 1e-3), 1e3)

    def refit(
        self,
        family: str,
        features: Sequence[Sequence[float]],
        runtimes: Sequence[float],
    ) -> bool:
        """Refit a family's unit costs from observed (counters, seconds).

        Returns True when the fit was applied.  Fits that would zero out
        every coefficient (degenerate observations) are rejected.
        """
        fit = fit_unit_costs(features, runtimes)
        if not any(c > 0 for c in fit.coefficients):
            return False
        self.unit_costs[family] = fit.coefficients
        # Unit costs now embody the observations; reset learned scales
        # for that family so they re-converge against the new baseline.
        for label in list(self.scales):
            if label.startswith(family):
                del self.scales[label]
        self.refits += 1
        return True

    def to_dict(self) -> dict:
        """Snapshot for metrics/EXPLAIN output."""
        return {
            "unit_costs": {
                family: [float(f"{u:.3g}") for u in units]
                for family, units in self.unit_costs.items()
            },
            "scales": {
                label: round(scale, 4)
                for label, scale in sorted(self.scales.items())
            },
            "refits": self.refits,
        }


def mean_log_error(pairs: Sequence[Tuple[float, float]]) -> float:
    """Geometric-mean |log(actual/estimated)| over (estimated, actual).

    The planner's misestimate metric: symmetric in over/underestimation
    and insensitive to workload scale.
    """
    if not pairs:
        return 0.0
    total = 0.0
    for estimated, actual in pairs:
        if estimated <= 0 or actual <= 0:
            continue
        total += abs(math.log(actual / estimated))
    return total / len(pairs)
