"""EXPLAIN output: the plan tree with estimated vs actual costs.

The tree has one root node for the logical query and one child per
costed physical alternative.  After execution, the chosen node (and the
root) carry an ``actual`` dict next to their ``estimated`` one — the
acceptance bar for the planner is precisely that every *executed* node
reports both.  :func:`validate_explain_json` is the schema check CI's
planner smoke step runs against ``skyup explain --format json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class PlanNode:
    """One node of the EXPLAIN tree."""

    label: str
    estimated: Dict[str, float] = field(default_factory=dict)
    actual: Optional[Dict[str, float]] = None
    chosen: bool = False
    detail: Dict[str, object] = field(default_factory=dict)
    children: List["PlanNode"] = field(default_factory=list)

    def to_dict(self) -> dict:
        doc: dict = {
            "label": self.label,
            "estimated": self.estimated,
            "actual": self.actual,
            "chosen": self.chosen,
        }
        if self.detail:
            doc["detail"] = self.detail
        if self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc


@dataclass
class ExplainReport:
    """The full EXPLAIN answer: chosen plan, candidates, planner state."""

    tree: PlanNode
    chosen: str
    planner_version: int
    profile: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "chosen": self.chosen,
            "planner_version": self.planner_version,
            "profile": self.profile,
            "tree": self.tree.to_dict(),
        }

    def format_tree(self) -> str:
        """ASCII rendering for terminals and the README."""
        lines: List[str] = []
        _render(self.tree, "", True, True, lines)
        return "\n".join(lines)


def _costs_column(node: PlanNode) -> str:
    parts = []
    if "seconds" in node.estimated:
        parts.append(f"est={node.estimated['seconds']:.4g}s")
    if node.actual and "seconds" in node.actual:
        parts.append(f"act={node.actual['seconds']:.4g}s")
    return "  ".join(parts)


def _render(
    node: PlanNode, prefix: str, is_last: bool, is_root: bool,
    lines: List[str],
) -> None:
    marker = "" if is_root else ("└── " if is_last else "├── ")
    tag = "  (chosen)" if node.chosen else ""
    costs = _costs_column(node)
    line = f"{prefix}{marker}{node.label}{tag}"
    if costs:
        line = f"{line}  [{costs}]"
    lines.append(line)
    child_prefix = prefix if is_root else prefix + (
        "    " if is_last else "│   "
    )
    for i, child in enumerate(node.children):
        _render(
            child, child_prefix, i == len(node.children) - 1, False, lines
        )


_REQUIRED_TOP = ("chosen", "planner_version", "profile", "tree")
_REQUIRED_NODE = ("label", "estimated", "actual", "chosen")


def validate_explain_json(doc: dict) -> None:
    """Validate the dict shape of :meth:`ExplainReport.to_dict`.

    Raises:
        ValueError: a required key is missing or has the wrong type.
    """
    if not isinstance(doc, dict):
        raise ValueError(f"explain document must be a dict, got {type(doc)}")
    for key in _REQUIRED_TOP:
        if key not in doc:
            raise ValueError(f"explain document missing key {key!r}")
    if not isinstance(doc["chosen"], str) or not doc["chosen"]:
        raise ValueError("'chosen' must be a non-empty plan label")
    if not isinstance(doc["planner_version"], int):
        raise ValueError("'planner_version' must be an int")
    if not isinstance(doc["profile"], dict):
        raise ValueError("'profile' must be a dict")
    chosen_labels = _validate_node(doc["tree"], path="tree")
    if doc["chosen"] not in chosen_labels:
        raise ValueError(
            f"chosen plan {doc['chosen']!r} has no chosen=true node"
        )


def _validate_node(node: object, path: str) -> List[str]:
    if not isinstance(node, dict):
        raise ValueError(f"{path}: node must be a dict")
    for key in _REQUIRED_NODE:
        if key not in node:
            raise ValueError(f"{path}: node missing key {key!r}")
    if not isinstance(node["estimated"], dict):
        raise ValueError(f"{path}: 'estimated' must be a dict")
    if node["actual"] is not None and not isinstance(node["actual"], dict):
        raise ValueError(f"{path}: 'actual' must be a dict or null")
    if node["chosen"] and node["actual"] is not None:
        for key in ("seconds",):
            if key not in node["actual"]:
                raise ValueError(
                    f"{path}: executed node lacks actual {key!r}"
                )
    detail = node.get("detail")
    plan_label = (
        detail.get("label", node["label"])
        if isinstance(detail, dict)
        else node["label"]
    )
    chosen = [plan_label] if node["chosen"] else []
    for i, child in enumerate(node.get("children", [])):
        chosen.extend(_validate_node(child, f"{path}.children[{i}]"))
    return chosen
