"""Catalog statistics consumed by the planner's cost model.

A :class:`CatalogProfile` condenses everything the cost formulas need:
set sizes, dimensionality, R-tree shape (node counts, heights, fanout),
and the estimated dominator-skyline size Ŝ.  Profiling must stay cheap
relative to the queries it optimizes, so the competitor tree is walked
once (:func:`repro.rtree.stats.collect_stats` plus a strided skyline
sample) and the product tree — which the probing methods never build —
is characterized analytically from its size alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.rtree.stats import (
    collect_stats,
    estimate_skyline_size,
    sample_skyline_size,
)
from repro.rtree.tree import RTree

#: STR bulk loading fills leaves nearly to capacity; dynamic trees settle
#: around two thirds.  The analytic node-count estimate splits the
#: difference.
_FILL_FACTOR = 0.8


@dataclass(frozen=True)
class CatalogProfile:
    """Everything the plan cost model knows about one catalog pair."""

    n_competitors: int
    n_products: int
    dims: int
    #: Estimated competitor-skyline size Ŝ — the planner's proxy for
    #: dominator-skyline sizes and join-list lengths.
    skyline_estimate: float
    competitor_nodes: int
    competitor_height: int
    competitor_fanout: float
    product_nodes: int
    product_height: int

    def describe(self) -> str:
        """Compact one-line rendering for EXPLAIN headers."""
        return (
            f"|P|={self.n_competitors} |T|={self.n_products} "
            f"d={self.dims} Ŝ≈{self.skyline_estimate:.1f}"
        )

    def to_dict(self) -> dict:
        """JSON-ready form (EXPLAIN output, metrics snapshots)."""
        return {
            "n_competitors": self.n_competitors,
            "n_products": self.n_products,
            "dims": self.dims,
            "skyline_estimate": round(self.skyline_estimate, 3),
            "competitor_nodes": self.competitor_nodes,
            "competitor_height": self.competitor_height,
            "competitor_fanout": round(self.competitor_fanout, 2),
            "product_nodes": self.product_nodes,
            "product_height": self.product_height,
        }


def _analytic_tree_shape(n: int, max_entries: int) -> tuple:
    """(nodes, height) of a hypothetical R-tree over ``n`` points."""
    if n == 0:
        return 1, 1
    fanout = max(2.0, max_entries * _FILL_FACTOR)
    nodes, level_count, height = 0, float(n), 0
    while True:
        level_count = max(1.0, math.ceil(level_count / fanout))
        nodes += int(level_count)
        height += 1
        if level_count <= 1.0:
            break
    return nodes, height


def profile_catalog(
    competitor_tree: RTree,
    n_products: int,
    dims: int,
    product_tree: Optional[RTree] = None,
    max_entries: int = 32,
    sample: bool = True,
) -> CatalogProfile:
    """Profile a catalog pair for planning.

    Args:
        competitor_tree: the built competitor index ``R_P``.
        n_products: ``|T|``; the product tree itself is optional.
        dims: dimensionality of the attribute space.
        product_tree: pass when already built (e.g. by a session); its
            measured shape then replaces the analytic estimate.
        max_entries: node capacity assumed for the analytic product-tree
            shape when no tree is given.
        sample: refine the i.i.d. skyline prior with a strided sample of
            the competitor points (cheap; see
            :func:`repro.rtree.stats.sample_skyline_size`).
    """
    n_p = len(competitor_tree)
    if competitor_tree.is_empty():
        skyline = 0.0
        competitor_nodes, competitor_height, fanout = 1, 1, 0.0
    else:
        tree_stats = collect_stats(competitor_tree)
        competitor_nodes = tree_stats.node_count
        competitor_height = tree_stats.height
        fanout = tree_stats.leaf_fill
        if sample:
            skyline = sample_skyline_size(competitor_tree, dims)
        else:
            skyline = estimate_skyline_size(n_p, dims)
    if product_tree is not None and not product_tree.is_empty():
        product_stats = collect_stats(product_tree)
        product_nodes = product_stats.node_count
        product_height = product_stats.height
    else:
        product_nodes, product_height = _analytic_tree_shape(
            n_products, max_entries
        )
    return CatalogProfile(
        n_competitors=n_p,
        n_products=n_products,
        dims=dims,
        skyline_estimate=skyline,
        competitor_nodes=competitor_nodes,
        competitor_height=competitor_height,
        competitor_fanout=fanout,
        product_nodes=product_nodes,
        product_height=product_height,
    )
