"""The physical side of planning: *how* to compute, and execution.

A :class:`PhysicalPlan` pins every knob the algorithms expose — method,
join bound, per-pair bound mode, and the kernel-vs-scalar join-list
cutover that used to be the hard-coded ``_VECTOR_JL_FROM`` constant.
:func:`execute_plan` runs one against built indexes, so
:func:`repro.core.api.top_k_upgrades` and the serving engine share a
single execution path for planner-chosen plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.bounds import BOUND_NAMES, LBC_MODES
from repro.core.join import _VECTOR_JL_FROM, JoinUpgrader
from repro.core.probing import basic_probing, improved_probing
from repro.core.types import UpgradeConfig, UpgradeOutcome
from repro.costs.model import CostModel
from repro.exceptions import ConfigurationError, UnknownOptionError
from repro.rtree.tree import RTree

#: Methods a physical plan can name (the planner enumerates these).
PLAN_METHODS = ("join", "probing", "basic-probing")

_DEFAULT_CONFIG = UpgradeConfig()


@dataclass(frozen=True)
class PhysicalPlan:
    """One fully specified way to execute a top-k upgrade query."""

    method: str
    bound: str = "clb"
    lbc_mode: str = "corrected"
    vector_jl_from: int = _VECTOR_JL_FROM

    def __post_init__(self) -> None:
        if self.method not in PLAN_METHODS:
            raise UnknownOptionError("method", self.method, PLAN_METHODS)
        if self.bound not in BOUND_NAMES:
            raise UnknownOptionError("bound", self.bound, BOUND_NAMES)
        if self.lbc_mode not in LBC_MODES:
            raise UnknownOptionError("lbc_mode", self.lbc_mode, LBC_MODES)
        if self.vector_jl_from < 1:
            raise ConfigurationError(
                f"vector_jl_from must be >= 1, got {self.vector_jl_from}"
            )

    @property
    def family(self) -> str:
        """Unit-cost family; the bound only scales work within it."""
        return self.method

    @property
    def label(self) -> str:
        """Stable display/feedback key, e.g. ``join[clb]`` or ``probing``."""
        if self.method == "join":
            return f"join[{self.bound}]"
        return self.method

    def describe(self) -> str:
        """EXPLAIN node line: the label plus non-default knobs."""
        parts = [self.label]
        if self.method == "join":
            parts.append(f"vec>={self.vector_jl_from}")
            if self.lbc_mode != "corrected":
                parts.append(f"lbc={self.lbc_mode}")
        return " ".join(parts)

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "bound": self.bound,
            "lbc_mode": self.lbc_mode,
            "vector_jl_from": self.vector_jl_from,
            "label": self.label,
        }


def execute_plan(
    plan: PhysicalPlan,
    competitor_tree: RTree,
    products: Sequence[Sequence[float]],
    cost_model: CostModel,
    k: int,
    config: UpgradeConfig = _DEFAULT_CONFIG,
    max_entries: int = 32,
    product_tree: Optional[RTree] = None,
) -> UpgradeOutcome:
    """Run ``plan`` against a built competitor index.

    The product tree is only built (STR bulk load) when a join-family
    plan actually needs it — probing plans iterate ``products`` directly,
    which is exactly why the planner can prefer them on tiny catalogs.
    """
    if plan.method == "join":
        if product_tree is None:
            product_tree = RTree.bulk_load(products, max_entries=max_entries)
        upgrader = JoinUpgrader(
            competitor_tree,
            product_tree,
            cost_model,
            bound=plan.bound,
            config=config,
            lbc_mode=plan.lbc_mode,
            vector_jl_from=plan.vector_jl_from,
        )
        return upgrader.run(k)
    if plan.method == "probing":
        return improved_probing(competitor_tree, products, cost_model, k, config)
    return basic_probing(competitor_tree, products, cost_model, k, config)
