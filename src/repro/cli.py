"""Command-line interface.

Three subcommands::

    skyup generate --distribution anti_correlated --n 10000 --dims 3 out.csv
    skyup run --competitors P.csv --products T.csv --k 5 --method join
    skyup explain --n-competitors 2000 --n-products 800 --k 5
    skyup figure fig6a --scale 100
    skyup serve-bench --requests 2000 --save-json BENCH_serve.json
    skyup bench-kernels --competitors 100000 --dims 4 --method auto
    skyup bench-planner --save-json BENCH_planner.json
    skyup trace --requests 200 --slowest 3 --format chrome --out trace.json
    skyup lint --format json

``generate`` writes synthetic point sets; ``run`` solves one top-k upgrading
instance from CSV files; ``explain`` prints the cost-based planner's plan
tree — every costed physical alternative with estimated (and, after
execution, actual) costs (:mod:`repro.plan`); ``bench-planner`` measures
planner-chosen plans against every fixed plan
(:mod:`repro.bench.planner`); ``figure`` regenerates one of the paper's
experiment figures (see :mod:`repro.bench.figures` for ids and
EXPERIMENTS.md for the recorded outputs); ``serve-bench`` measures the
serving engine's cached-vs-cold throughput (:mod:`repro.serve.bench`);
``bench-kernels`` compares the columnar kernels against their scalar
oracles (:mod:`repro.bench.kernels`); ``trace`` replays a traced request
stream through the serving engine and dumps the slowest request traces
(:mod:`repro.obs`) as a span tree or Chrome Trace Event JSON; ``lint``
runs the project-specific
static analysis rules (:mod:`repro.analysis`) and exits non-zero on
unsuppressed findings.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="skyup",
        description=(
            "Top-k product upgrading (Lu & Jensen, ICDE 2012 reproduction)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"skyup {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic point set")
    gen.add_argument("output", help="destination CSV path")
    gen.add_argument(
        "--distribution",
        default="independent",
        choices=["independent", "correlated", "anti_correlated"],
    )
    gen.add_argument("--n", type=int, default=10000, help="point count")
    gen.add_argument("--dims", type=int, default=3, help="dimensionality")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--low", type=float, default=0.0)
    gen.add_argument("--high", type=float, default=1.0)

    run = sub.add_parser("run", help="solve one top-k upgrading instance")
    run.add_argument("--competitors", required=True, help="CSV of P")
    run.add_argument("--products", required=True, help="CSV of T")
    run.add_argument("--k", type=int, default=1)
    run.add_argument(
        "--method",
        default="join",
        choices=["auto", "join", "probing", "basic-probing"],
    )
    run.add_argument(
        "--bound", default="clb", choices=["nlb", "clb", "alb", "max"]
    )
    run.add_argument(
        "--lbc-mode", default="corrected", choices=["corrected", "paper"]
    )
    run.add_argument(
        "--cost-offset",
        type=float,
        default=1e-3,
        help="offset of the reciprocal attribute cost 1/(v+offset)",
    )
    run.add_argument(
        "--show-counters",
        action="store_true",
        help="also print the work counters of the run",
    )

    cat = sub.add_parser(
        "catalog",
        help="single-set variant: upgrade a catalog's own products",
    )
    cat.add_argument("--catalog", required=True, help="CSV of the catalog")
    cat.add_argument("--k", type=int, default=1)
    cat.add_argument("--method", default="join", choices=["join", "probing"])
    cat.add_argument(
        "--bound", default="clb", choices=["nlb", "clb", "alb", "max"]
    )
    cat.add_argument("--cost-offset", type=float, default=1e-3)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument(
        "figure_id",
        help="figure id, e.g. fig4, fig6a, fig10 (use 'list' to enumerate)",
    )
    fig.add_argument(
        "--scale",
        type=float,
        default=None,
        help="cardinality divisor vs the paper (default per figure)",
    )
    fig.add_argument(
        "--quick",
        action="store_true",
        help="run a reduced sweep for a fast smoke check",
    )
    fig.add_argument(
        "--chart",
        action="store_true",
        help="render a log-scale ASCII bar chart instead of the table",
    )
    fig.add_argument(
        "--save-json",
        metavar="DIR",
        default=None,
        help="also write the figure's series as JSON under DIR",
    )

    tab = sub.add_parser("table", help="print one of the paper's tables")
    tab.add_argument(
        "table_id",
        help="table id: I, II, III, IV, or V ('list' to enumerate)",
    )

    rep = sub.add_parser(
        "report",
        help="render recorded figure JSONs as a Markdown appendix",
    )
    rep.add_argument(
        "results_dir",
        nargs="?",
        default="benchmarks/results",
        help="directory of fig*.json files (default: benchmarks/results)",
    )

    exp = sub.add_parser(
        "explain",
        help="show the planner's plan tree (estimated vs actual costs)",
    )
    exp.add_argument(
        "--competitors", default=None, help="CSV of P (omit for synthetic)"
    )
    exp.add_argument(
        "--products", default=None, help="CSV of T (omit for synthetic)"
    )
    exp.add_argument(
        "--n-competitors", type=int, default=2000,
        help="synthetic market size |P|",
    )
    exp.add_argument(
        "--n-products", type=int, default=800,
        help="synthetic catalog size |T|",
    )
    exp.add_argument("--dims", type=int, default=2)
    exp.add_argument(
        "--distribution",
        default="independent",
        choices=["independent", "correlated", "anti_correlated"],
    )
    exp.add_argument("--seed", type=int, default=2012)
    exp.add_argument("--k", type=int, default=5)
    exp.add_argument(
        "--method",
        default="auto",
        choices=["auto", "join", "probing", "basic-probing"],
        help="force a method (the tree still shows every candidate)",
    )
    exp.add_argument(
        "--bound", default="clb", choices=["nlb", "clb", "alb", "max"]
    )
    exp.add_argument(
        "--no-execute",
        action="store_true",
        help="plan only — skip running the chosen plan (no actual costs)",
    )
    exp.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=["text", "json"],
        help="text = ASCII plan tree; json = ExplainReport document",
    )
    exp.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the output to PATH instead of stdout",
    )

    pln = sub.add_parser(
        "bench-planner",
        help="planner-chosen plan vs every fixed physical plan",
    )
    pln.add_argument(
        "--dims",
        default="2,4",
        help="comma-separated dimensionalities (default: 2,4)",
    )
    pln.add_argument(
        "--k",
        default="1,10,50",
        help="comma-separated top-k depths (default: 1,10,50)",
    )
    pln.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="timing repetitions per fixed plan (best is reported)",
    )
    pln.add_argument("--seed", type=int, default=2012)
    pln.add_argument(
        "--quick",
        action="store_true",
        help="tiny catalogs and shallow k for a fast smoke check",
    )
    pln.add_argument(
        "--save-json",
        metavar="PATH",
        default=None,
        help="also write the full report as JSON to PATH",
    )

    srv = sub.add_parser(
        "serve-bench",
        help="measure the serving engine: cached vs cold throughput",
    )
    srv.add_argument(
        "--method",
        default="join",
        choices=["auto", "join", "probing"],
        help=(
            "engine execution strategy for whole-catalog top-k requests "
            "(auto = planner-chosen; the report names the chosen plans)"
        ),
    )
    srv.add_argument(
        "--competitors", type=int, default=4000, help="market size |P|"
    )
    srv.add_argument(
        "--products", type=int, default=1500, help="catalog size |T|"
    )
    srv.add_argument("--dims", type=int, default=3)
    srv.add_argument(
        "--distribution",
        default="independent",
        choices=["independent", "correlated", "anti_correlated"],
    )
    srv.add_argument(
        "--requests", type=int, default=2000, help="request-stream length"
    )
    srv.add_argument(
        "--hot-pool",
        type=int,
        default=64,
        help="size of the popular-product working set",
    )
    srv.add_argument(
        "--topk-every",
        type=int,
        default=25,
        help="issue a whole-catalog top-k every N requests (0 = never)",
    )
    srv.add_argument("--k", type=int, default=5, help="top-k depth")
    srv.add_argument("--seed", type=int, default=2012)
    srv.add_argument(
        "--processes",
        type=int,
        default=0,
        help=(
            "also replay through the sharded multi-process engine with "
            "N worker processes (0 = skip the sharded run)"
        ),
    )
    srv.add_argument(
        "--shards",
        type=int,
        default=0,
        help=(
            "shard count for the sharded run "
            "(default: one shard per process)"
        ),
    )
    srv.add_argument(
        "--hedge-delay",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "sharded run: fixed delay before a straggling shard RPC is "
            "hedged to a second attempt (default: adaptive, p95-based)"
        ),
    )
    srv.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        metavar="N",
        help=(
            "sharded run: consecutive shard-RPC failures that trip a "
            "process's circuit breaker (0 = breakers off)"
        ),
    )
    srv.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="arm seeded fault injection at this per-point rate (0 = off)",
    )
    srv.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="fault-injection seed (default: --seed)",
    )
    srv.add_argument(
        "--fault-points",
        default="serve.cache,rtree.query",
        help="comma-separated injection points to arm",
    )
    srv.add_argument(
        "--save-json",
        metavar="PATH",
        default=None,
        help="also write the full report as JSON to PATH",
    )

    krn = sub.add_parser(
        "bench-kernels",
        help="compare the columnar kernels against their scalar oracles",
    )
    krn.add_argument(
        "--competitors", type=int, default=20000, help="market size |P|"
    )
    krn.add_argument(
        "--products", type=int, default=2000, help="catalog size |T|"
    )
    krn.add_argument("--dims", type=int, default=4)
    krn.add_argument(
        "--distribution",
        default="independent",
        choices=["independent", "correlated", "anti_correlated"],
    )
    krn.add_argument(
        "--bound",
        default="clb",
        help="join-list bound for the end-to-end join cell",
    )
    krn.add_argument(
        "--method",
        default="join",
        choices=["auto", "join", "probing", "basic-probing"],
        help=(
            "algorithm of the end-to-end cell (auto = planner-chosen; "
            "the report names the chosen physical plan)"
        ),
    )
    krn.add_argument("--seed", type=int, default=2012)
    krn.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions per path (best is reported)",
    )
    krn.add_argument(
        "--save-json",
        metavar="PATH",
        default=None,
        help="also write the full report as JSON to PATH",
    )

    trc = sub.add_parser(
        "trace",
        help="run a traced workload and dump the slowest request traces",
    )
    trc.add_argument(
        "--competitors", type=int, default=2000, help="market size |P|"
    )
    trc.add_argument(
        "--products", type=int, default=800, help="catalog size |T|"
    )
    trc.add_argument("--dims", type=int, default=3)
    trc.add_argument(
        "--distribution",
        default="independent",
        choices=["independent", "correlated", "anti_correlated"],
    )
    trc.add_argument(
        "--requests", type=int, default=200, help="request-stream length"
    )
    trc.add_argument(
        "--hot-pool",
        type=int,
        default=32,
        help="size of the popular-product working set",
    )
    trc.add_argument(
        "--topk-every",
        type=int,
        default=25,
        help="issue a whole-catalog top-k every N requests (0 = never)",
    )
    trc.add_argument("--k", type=int, default=5, help="top-k depth")
    trc.add_argument("--seed", type=int, default=2012)
    trc.add_argument(
        "--workers", type=int, default=2, help="engine worker threads"
    )
    trc.add_argument(
        "--slowest",
        type=int,
        default=5,
        metavar="N",
        help="dump the N slowest traces (default: 5)",
    )
    trc.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=["text", "chrome"],
        help=(
            "text = indented span tree; chrome = Trace Event Format JSON "
            "for chrome://tracing or https://ui.perfetto.dev"
        ),
    )
    trc.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the dump to PATH instead of stdout",
    )

    lint = sub.add_parser(
        "lint",
        help="run the project-specific static analysis rules",
    )
    lint.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE",
        help=(
            "rule id (SKY101) or name (lock-discipline); repeat or "
            "comma-separate to select several (default: all rules)"
        ),
    )
    lint.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=["text", "json", "github"],
        help=(
            "report format; 'github' emits ::error workflow "
            "annotations for CI (default: text)"
        ),
    )
    lint.add_argument(
        "--root",
        default=".",
        help="repository root containing src/repro (default: cwd)",
    )
    lint.add_argument(
        "--deep",
        action="store_true",
        help=(
            "also run the interprocedural SKY1000 rules (lock-set "
            "dataflow, guard inference, deadline propagation)"
        ),
    )
    lint.add_argument(
        "--cache-dir",
        default=".skyup-cache",
        metavar="DIR",
        help=(
            "summary-cache directory for --deep, relative to --root "
            "(default: .skyup-cache; 'none' disables caching)"
        ),
    )
    lint.add_argument(
        "--baseline",
        nargs="?",
        const="lint-baseline.json",
        default=None,
        metavar="PATH",
        help=(
            "subtract known findings recorded in PATH "
            "(default path: lint-baseline.json)"
        ),
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.data.generators import generate
    from repro.data.io import save_points_csv

    points = generate(
        args.distribution,
        args.n,
        args.dims,
        seed=args.seed,
        low=args.low,
        high=args.high,
    )
    save_points_csv(args.output, points)
    print(
        f"wrote {args.n} {args.distribution} points "
        f"({args.dims}-d, [{args.low}, {args.high}]) to {args.output}"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.api import top_k_upgrades
    from repro.costs.model import paper_cost_model
    from repro.data.io import load_points_csv

    competitors, _ = load_points_csv(args.competitors)
    products, _ = load_points_csv(args.products)
    cost_model = paper_cost_model(products.shape[1], offset=args.cost_offset)
    outcome = top_k_upgrades(
        competitors,
        products,
        k=args.k,
        cost_model=cost_model,
        method=args.method,
        bound=args.bound,
        lbc_mode=args.lbc_mode,
    )
    plan = outcome.report.extras.get("plan")
    print(
        f"# {outcome.report.algorithm}: |P|={len(competitors)} "
        f"|T|={len(products)} k={args.k} "
        f"elapsed={outcome.report.elapsed_s:.4f}s"
        + (f" plan={plan}" if plan else "")
    )
    print("rank,record_id,cost,original,upgraded")
    for rank, r in enumerate(outcome.results, start=1):
        orig = ";".join(f"{v:.6g}" for v in r.original)
        upgr = ";".join(f"{v:.6g}" for v in r.upgraded)
        print(f"{rank},{r.record_id},{r.cost:.6g},{orig},{upgr}")
    if args.show_counters:
        for name, value in outcome.report.counters.as_dict().items():
            print(f"# {name}={value}")
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    from repro.core.single_set import single_set_top_k, split_catalog
    from repro.costs.model import paper_cost_model
    from repro.data.io import load_points_csv

    catalog, _ = load_points_csv(args.catalog)
    cost_model = paper_cost_model(catalog.shape[1], offset=args.cost_offset)
    skyline_rows, candidates, _ = split_catalog(catalog)
    outcome = single_set_top_k(
        catalog,
        k=args.k,
        cost_model=cost_model,
        method=args.method,
        bound=args.bound,
    )
    print(
        f"# catalog of {len(catalog)}: {len(skyline_rows)} competitive, "
        f"{len(candidates)} candidates; {outcome.report.algorithm} "
        f"elapsed={outcome.report.elapsed_s:.4f}s"
    )
    print("rank,record_id,cost,original,upgraded")
    for rank, r in enumerate(outcome.results, start=1):
        orig = ";".join(f"{v:.6g}" for v in r.original)
        upgr = ";".join(f"{v:.6g}" for v in r.upgraded)
        print(f"{rank},{r.record_id},{r.cost:.6g},{orig},{upgr}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from repro.core.api import top_k_upgrades
    from repro.costs.model import paper_cost_model
    from repro.plan import (
        LogicalPlan,
        PhysicalPlan,
        default_planner,
        profile_catalog,
    )
    from repro.rtree.tree import RTree

    from repro.exceptions import ConfigurationError

    try:
        for name in ("n_competitors", "n_products", "dims", "k"):
            flag = "--" + name.replace("_", "-")
            value = getattr(args, name)
            _require(flag, value, "must be >= 1", value >= 1)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if (args.competitors is None) != (args.products is None):
        print(
            "error: pass both --competitors and --products, or neither",
            file=sys.stderr,
        )
        return 2
    if args.competitors is not None:
        from repro.data.io import load_points_csv

        competitors, _ = load_points_csv(args.competitors)
        products, _ = load_points_csv(args.products)
    else:
        from repro.data.generators import paper_workload

        competitors, products = paper_workload(
            args.distribution,
            args.n_competitors,
            args.n_products,
            args.dims,
            seed=args.seed,
        )
    if args.no_execute:
        dims = products.shape[1] if hasattr(products, "shape") else len(
            products[0]
        )
        tree = RTree.bulk_load(competitors)
        profile = profile_catalog(tree, len(products), int(dims))
        planner = default_planner()
        force = None
        if args.method != "auto":
            force = PhysicalPlan(
                method=args.method,
                bound=args.bound,
                vector_jl_from=planner.vector_jl_from,
            )
        planned = planner.plan(
            LogicalPlan(k=args.k, profile=profile), force=force
        )
        report = planned.explain()
    else:
        dims = products.shape[1] if hasattr(products, "shape") else len(
            products[0]
        )
        outcome = top_k_upgrades(
            competitors,
            products,
            k=args.k,
            cost_model=paper_cost_model(int(dims)),
            method=args.method,
            bound=args.bound,
            explain=True,
        )
        report = outcome.report.extras["explain"]
    if args.fmt == "json":
        dump = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        dump = report.format_tree()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(dump)
            fh.write("\n")
        print(f"[explain written to {args.out}]")
    else:
        print(dump)
    return 0


def _cmd_bench_planner(args: argparse.Namespace) -> int:
    from repro.bench.planner import format_planner_report, run_planner_bench
    from repro.exceptions import ConfigurationError, InvalidOptionValueError

    try:
        _require(
            "--repeats", args.repeats, "must be >= 1", args.repeats >= 1
        )
        try:
            dims_list = tuple(int(d) for d in args.dims.split(","))
        except ValueError:
            raise InvalidOptionValueError(
                "--dims", args.dims, "must be comma-separated integers"
            ) from None
        try:
            k_values = tuple(int(k) for k in args.k.split(","))
        except ValueError:
            raise InvalidOptionValueError(
                "--k", args.k, "must be comma-separated integers"
            ) from None
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    kwargs = {
        "dims_list": dims_list,
        "k_values": k_values,
        "repeats": args.repeats,
        "seed": args.seed,
    }
    if args.quick:
        kwargs["sizes"] = (("small", 400, 160), ("large", 900, 360))
        kwargs["k_values"] = tuple(k for k in k_values if k <= 10) or (1,)
        kwargs["repeats"] = 1
    report = run_planner_bench(**kwargs)
    print(format_planner_report(report))
    if args.save_json:
        import json

        with open(args.save_json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"[report written to {args.save_json}]")
    summary = report["summary"]
    ok = summary["all_within_15pct_of_best"] and summary["never_worst"]
    return 0 if ok else 1


def _require(option: str, value: object, requirement: str, ok: bool) -> None:
    """Typed CLI option validation.

    Raises:
        InvalidOptionValueError: ``ok`` is false — the message carries
            the option name, offending value, and the requirement, so
            every subcommand renders the same diagnostic shape.
    """
    from repro.exceptions import InvalidOptionValueError

    if not ok:
        raise InvalidOptionValueError(option, value, requirement)


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.exceptions import ConfigurationError, UnknownOptionError
    from repro.reliability.faults import INJECTION_POINTS
    from repro.serve.bench import format_report, run_serve_bench

    fault_points = [
        p.strip() for p in args.fault_points.split(",") if p.strip()
    ]
    try:
        for name in ("competitors", "products", "requests", "k"):
            value = getattr(args, name)
            _require(f"--{name}", value, "must be >= 1", value >= 1)
        _require(
            "--fault-rate",
            args.fault_rate,
            "must be in [0, 1]",
            0.0 <= args.fault_rate <= 1.0,
        )
        _require(
            "--processes",
            args.processes,
            "must be >= 0 (0 skips the sharded run)",
            args.processes >= 0,
        )
        _require(
            "--shards",
            args.shards,
            "must be >= 0 (0 means one shard per process)",
            args.shards >= 0,
        )
        _require(
            "--shards",
            args.shards,
            f"must be >= --processes ({args.processes}) so every "
            "worker process owns at least one shard",
            not (args.processes and args.shards)
            or args.shards >= args.processes,
        )
        _require(
            "--shards",
            args.shards,
            "requires --processes > 0",
            not (args.shards and not args.processes),
        )
        _require(
            "--hedge-delay",
            args.hedge_delay,
            "must be >= 0",
            args.hedge_delay is None or args.hedge_delay >= 0,
        )
        _require(
            "--breaker-threshold",
            args.breaker_threshold,
            "must be >= 0 (0 disables breakers)",
            args.breaker_threshold >= 0,
        )
        for point in sorted(set(fault_points) - INJECTION_POINTS):
            raise UnknownOptionError(
                "--fault-points", point, sorted(INJECTION_POINTS)
            )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_serve_bench(
        n_competitors=args.competitors,
        n_products=args.products,
        dims=args.dims,
        distribution=args.distribution,
        n_requests=args.requests,
        hot_pool=args.hot_pool,
        topk_every=args.topk_every,
        k=args.k,
        seed=args.seed,
        fault_rate=args.fault_rate,
        fault_points=fault_points,
        fault_seed=args.fault_seed,
        method=args.method,
        processes=args.processes,
        shards=args.shards,
        hedge_delay_s=args.hedge_delay,
        breaker_threshold=args.breaker_threshold,
    )
    print(format_report(report))
    if args.save_json:
        import json

        with open(args.save_json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"[report written to {args.save_json}]")
    return 0


def _cmd_bench_kernels(args: argparse.Namespace) -> int:
    from repro.bench.kernels import format_kernel_report, run_kernel_bench
    from repro.core.bounds import BOUND_NAMES
    from repro.exceptions import ConfigurationError, UnknownOptionError

    try:
        for name in ("competitors", "products", "dims", "repeats"):
            value = getattr(args, name)
            _require(f"--{name}", value, "must be >= 1", value >= 1)
        if args.bound not in BOUND_NAMES:
            raise UnknownOptionError("bound", args.bound, BOUND_NAMES)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_kernel_bench(
        n_competitors=args.competitors,
        n_products=args.products,
        dims=args.dims,
        distribution=args.distribution,
        bound=args.bound,
        seed=args.seed,
        repeats=args.repeats,
        method=args.method,
    )
    print(format_kernel_report(report))
    if args.save_json:
        import json

        with open(args.save_json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"[report written to {args.save_json}]")
    return 0 if report["all_agree"] else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.exceptions import ConfigurationError
    from repro.obs import format_text, to_chrome_json
    from repro.serve.bench import run_trace_workload

    try:
        for name in (
            "competitors",
            "products",
            "requests",
            "k",
            "slowest",
            "workers",
        ):
            value = getattr(args, name)
            _require(f"--{name}", value, "must be >= 1", value >= 1)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    traces = run_trace_workload(
        n_competitors=args.competitors,
        n_products=args.products,
        dims=args.dims,
        distribution=args.distribution,
        n_requests=args.requests,
        hot_pool=args.hot_pool,
        topk_every=args.topk_every,
        k=args.k,
        seed=args.seed,
        workers=args.workers,
    )
    traces.sort(key=lambda t: t.duration_s, reverse=True)
    slowest = traces[: args.slowest]
    if args.fmt == "chrome":
        dump = to_chrome_json(slowest, indent=2)
    else:
        dump = format_text(slowest)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(dump)
            fh.write("\n")
        print(
            f"[{len(slowest)} slowest of {len(traces)} traces "
            f"written to {args.out}]"
        )
    else:
        print(dump)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.engine import (
        format_github,
        format_json,
        format_text,
        iter_rules,
        load_baseline,
        run_lint,
        save_baseline,
    )
    from repro.exceptions import ConfigurationError

    if args.list_rules:
        for info in iter_rules():
            tag = " [deep]" if info.deep else ""
            print(f"{info.rule_id}  {info.name:28s} {info.doc}{tag}")
        return 0
    select = None
    if args.select:
        select = [
            token for group in args.select for token in group.split(",")
        ]
    root = Path(args.root).resolve()
    baseline_path = (
        root / args.baseline if args.baseline is not None else None
    )
    cache_dir = None
    if args.deep and args.cache_dir and args.cache_dir != "none":
        cache_dir = root / args.cache_dir
    try:
        baseline = None
        if baseline_path is not None and not args.update_baseline:
            baseline = load_baseline(baseline_path)
        ctx_out: list = []
        findings = run_lint(
            root,
            select=select,
            baseline=baseline,
            deep=args.deep,
            cache_dir=cache_dir,
            ctx_out=ctx_out,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = ctx_out[0].flow_stats if ctx_out else {}
    if stats:
        temp = "warm" if stats.get("warm") else "cold"
        print(
            f"[deep: {temp} cache, "
            f"{stats.get('summary_hits', 0)}/{stats.get('files', 0)} "
            f"file summaries reused, "
            f"{stats.get('seconds', 0.0):.2f}s analysis]",
            file=sys.stderr,
        )
    if args.update_baseline:
        target = baseline_path or root / "lint-baseline.json"
        save_baseline(target, findings)
        print(f"[baseline of {len(findings)} finding(s) written to {target}]")
        return 0
    if args.fmt == "json":
        print(format_json(findings))
    elif args.fmt == "github":
        print(format_github(findings))
    else:
        print(format_text(findings))
    return 1 if findings else 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.bench.figures import FIGURES, run_figure

    if args.figure_id == "list":
        for fid, spec in sorted(FIGURES.items()):
            print(f"{fid:8s} {spec.title}")
        return 0
    if args.figure_id not in FIGURES:
        print(
            f"unknown figure {args.figure_id!r}; run 'skyup figure list'",
            file=sys.stderr,
        )
        return 2
    result = run_figure(args.figure_id, scale=args.scale, quick=args.quick)
    if args.chart:
        from repro.bench.render import render_series_chart

        print(render_series_chart(result))
    else:
        print(result.format_table())
    if args.save_json:
        path = result.save_json(args.save_json)
        print(f"[series written to {path}]")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.bench.tables import TABLE_IDS, format_table

    if args.table_id == "list":
        for tid in TABLE_IDS:
            print(tid)
        return 0
    if args.table_id not in TABLE_IDS:
        print(
            f"unknown table {args.table_id!r}; choose from {TABLE_IDS}",
            file=sys.stderr,
        )
        return 2
    print(format_table(args.table_id))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "catalog":
            return _cmd_catalog(args)
        if args.command == "table":
            return _cmd_table(args)
        if args.command == "explain":
            return _cmd_explain(args)
        if args.command == "bench-planner":
            return _cmd_bench_planner(args)
        if args.command == "serve-bench":
            return _cmd_serve_bench(args)
        if args.command == "bench-kernels":
            return _cmd_bench_kernels(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "report":
            from repro.bench.report import render_report

            print(render_report(args.results_dir))
            return 0
        return _cmd_figure(args)
    except BrokenPipeError:  # pragma: no cover - e.g. `skyup ... | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
