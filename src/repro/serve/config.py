"""The consolidated serving-engine configuration.

:class:`EngineConfig` is the one place every :class:`UpgradeEngine`
tunable lives.  It is a frozen dataclass so a config can be shared
between engines, logged, and compared; ``dataclasses.replace`` derives
variants (the benchmark harness builds its cold/warm configs that way).
Validation happens at construction — a bad value fails fast with a
:class:`~repro.exceptions.ConfigurationError` instead of surfacing as a
confusing runtime failure deep inside the pool or tracer.

The legacy keyword style (``UpgradeEngine(session, workers=4, ...)``)
still works for one release: the engine folds the kwargs into an
:class:`EngineConfig` and emits a single :class:`DeprecationWarning`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional

from repro.exceptions import ConfigurationError, UnknownOptionError
from repro.reliability.guards import KernelGuard
from repro.reliability.retry import RetryPolicy

__all__ = ["EngineConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """Every :class:`~repro.serve.engine.UpgradeEngine` tunable.

    Attributes:
        workers: worker-pool threads (0 = synchronous-only engine: no
            pool, ``submit`` unavailable, ``query``/``execute_batch``
            still work).
        method: how whole-catalog top-k queries execute — ``"auto"``
            (default: the engine's cost-based planner picks per catalog
            epoch and re-plans on calibration feedback), ``"join"`` (the
            fixed pre-planner behaviour), or ``"probing"`` (fixed
            improved probing).
        queue_capacity: admission bound of the request queue.
        batch_max: largest batch a worker drains at once.
        cache: enable the epoch-versioned caches (disable to measure
            the cold path — ``skyup serve-bench`` does exactly that).
        skyline_cache_entries: LRU capacity of the skyline cache.
        default_deadline_s: deadline applied to queries that do not
            carry their own (``None`` = no deadline).
        metrics_window: rolling latency window of the metrics layer.
        retry_policy: backoff policy for transiently-failed requests
            (``None`` = the default :class:`RetryPolicy`; use
            ``RetryPolicy(max_attempts=1)`` to disable retries).
        kernel_guard: the sampling kernel-vs-scalar cross-checker
            (``None`` = a default 5%-sampling guard; use
            ``KernelGuard(sample_rate=0.0)`` to disable).
        index_check_every: validate both R-trees every N-th catalog
            mutation (0 = never).
        trace_sample_rate: fraction of requests traced by the
            structured tracer (0.0 = tracing off — the allocation-free
            fast path).
        trace_slow_s: when set, every request is recorded and traces at
            least this slow are always kept, even when the sampling
            draw said no (tail-based sampling).
        trace_store_capacity: ring-buffer capacity of kept traces
            (``engine.recent_traces()``).
        trace_seed: PRNG seed for the sampling draws.
        trace_max_spans: per-trace span cap (runaway-loop backstop).
        processes: shard worker *processes* for the
            :class:`~repro.shard.engine.ShardedUpgradeEngine` (0 = not
            sharded; ignored by the thread-tier ``UpgradeEngine``).
        shards: competitor-catalog partitions (0 = one per process).
            May exceed ``processes`` — a process then hosts several
            shards and pre-merges their answers locally.
        hedge_delay_s: sharded tier only — fixed delay before a
            straggling shard RPC is re-issued (idempotent hedging).
            ``None`` (default) selects the adaptive policy: hedge at
            p95 × 3 of observed shard-RPC latency once calibrated.
        breaker_threshold: consecutive shard-RPC failures (crashes,
            RPC-bound timeouts) that trip a process's circuit breaker;
            tripped processes are skipped (answers degrade to
            ``coverage < 1``) until a half-open probe succeeds.
            0 disables breakers.
        breaker_cooldown_s: initial wait before a tripped breaker is
            probed; doubles on every failed probe (capped).
        health_interval_s: period of the shard-health supervisor thread
            (breaker probes + health scoring).
        shard_rpc_timeout_s: upper bound on any single shard RPC wait
            when the request deadline is not the binding constraint
            (``None`` = unbounded — not recommended; a dropped reply
            would then wait forever).
    """

    workers: int = 2
    method: str = "auto"
    queue_capacity: int = 1024
    batch_max: int = 64
    cache: bool = True
    skyline_cache_entries: int = 4096
    default_deadline_s: Optional[float] = None
    metrics_window: int = 2048
    retry_policy: Optional[RetryPolicy] = None
    kernel_guard: Optional[KernelGuard] = None
    index_check_every: int = 64
    trace_sample_rate: float = 0.0
    trace_slow_s: Optional[float] = None
    trace_store_capacity: int = 64
    trace_seed: int = 2012
    trace_max_spans: int = 20_000
    processes: int = 0
    shards: int = 0
    hedge_delay_s: Optional[float] = None
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 0.5
    health_interval_s: float = 0.25
    shard_rpc_timeout_s: Optional[float] = 30.0

    #: Execution strategies the engine knows how to drive.
    METHODS = ("auto", "join", "probing")

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {self.workers}"
            )
        if self.method not in self.METHODS:
            raise UnknownOptionError("method", self.method, self.METHODS)
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.batch_max < 1:
            raise ConfigurationError(
                f"batch_max must be >= 1, got {self.batch_max}"
            )
        if self.skyline_cache_entries < 1:
            raise ConfigurationError(
                f"skyline_cache_entries must be >= 1, got "
                f"{self.skyline_cache_entries}"
            )
        if self.metrics_window < 1:
            raise ConfigurationError(
                f"metrics_window must be >= 1, got {self.metrics_window}"
            )
        if (
            self.default_deadline_s is not None
            and self.default_deadline_s < 0
        ):
            # 0.0 is legal: an already-expired deadline immediately yields
            # a partial response (the degradation path, testable directly).
            raise ConfigurationError(
                f"default_deadline_s must be >= 0, got "
                f"{self.default_deadline_s}"
            )
        if self.index_check_every < 0:
            raise ConfigurationError(
                f"index_check_every must be >= 0, got "
                f"{self.index_check_every}"
            )
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ConfigurationError(
                f"trace_sample_rate must be in [0, 1], got "
                f"{self.trace_sample_rate}"
            )
        if self.trace_slow_s is not None and self.trace_slow_s < 0:
            raise ConfigurationError(
                f"trace_slow_s must be >= 0, got {self.trace_slow_s}"
            )
        if self.trace_store_capacity < 1:
            raise ConfigurationError(
                f"trace_store_capacity must be >= 1, got "
                f"{self.trace_store_capacity}"
            )
        if self.trace_max_spans < 1:
            raise ConfigurationError(
                f"trace_max_spans must be >= 1, got {self.trace_max_spans}"
            )
        if self.processes < 0:
            raise ConfigurationError(
                f"processes must be >= 0, got {self.processes}"
            )
        if self.shards < 0:
            raise ConfigurationError(
                f"shards must be >= 0, got {self.shards}"
            )
        if self.shards and self.processes and self.shards < self.processes:
            raise ConfigurationError(
                f"shards ({self.shards}) must be >= processes "
                f"({self.processes}): an idle worker process would own "
                f"no partition"
            )
        if self.hedge_delay_s is not None and self.hedge_delay_s < 0:
            raise ConfigurationError(
                f"hedge_delay_s must be >= 0, got {self.hedge_delay_s}"
            )
        if self.breaker_threshold < 0:
            raise ConfigurationError(
                f"breaker_threshold must be >= 0, got "
                f"{self.breaker_threshold}"
            )
        if self.breaker_cooldown_s <= 0:
            raise ConfigurationError(
                f"breaker_cooldown_s must be > 0, got "
                f"{self.breaker_cooldown_s}"
            )
        if self.health_interval_s <= 0:
            raise ConfigurationError(
                f"health_interval_s must be > 0, got "
                f"{self.health_interval_s}"
            )
        if (
            self.shard_rpc_timeout_s is not None
            and self.shard_rpc_timeout_s <= 0
        ):
            raise ConfigurationError(
                f"shard_rpc_timeout_s must be > 0, got "
                f"{self.shard_rpc_timeout_s}"
            )

    @classmethod
    def field_names(cls) -> tuple:
        """The configurable field names (the legacy-kwarg surface)."""
        return tuple(f.name for f in fields(cls))

    def describe(self) -> Dict[str, object]:
        """A JSON-ready snapshot of every field.

        The two policy objects are expanded to their own parameter
        dicts; ``None`` stays ``None`` so the reader can tell "engine
        default" from an explicit policy.
        """
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, RetryPolicy):
                value = asdict(value)
            elif isinstance(value, KernelGuard):
                value = {
                    "sample_rate": value.sample_rate,
                    "tolerance": value.tolerance,
                    "quarantine_after": value.quarantine_after,
                }
            out[f.name] = value
        return out
