"""Serving-layer benchmark: cached engine vs cold per-query execution.

The workload models the serving shape the ROADMAP targets: a large stream
of requests over a *small working set* of popular products (every real
catalog has hot items) with periodic whole-catalog top-k refreshes.  The
same request sequence is replayed twice through identical engines — one
with the epoch-versioned caches enabled, one executing every query cold —
and throughput is compared.  ``skyup serve-bench`` is the CLI wrapper;
``benchmarks/results/BENCH_serve.json`` records a baseline produced by it.

Requests are pre-generated so both runs execute the byte-identical
sequence, and both runs use the synchronous execution path (no worker
pool) so the measurement compares query execution, not thread scheduling.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro.core.session import MarketSession
from repro.serve.engine import ProductQuery, Query, TopKQuery, UpgradeEngine

_BATCH = 32


def build_session(
    n_competitors: int = 4000,
    n_products: int = 1500,
    dims: int = 3,
    distribution: str = "independent",
    seed: int = 2012,
    max_entries: int = 32,
) -> MarketSession:
    """A bulk-loaded session over the paper's synthetic market layout."""
    from repro.bench.workloads import serve_session

    return serve_session(
        distribution,
        n_competitors,
        n_products,
        dims,
        seed=seed,
        max_entries=max_entries,
    )


def generate_requests(
    n_requests: int,
    n_products: int,
    hot_pool: int = 64,
    topk_every: int = 25,
    k: int = 5,
    seed: int = 7,
) -> List[Query]:
    """A repeated-query request stream.

    Every ``topk_every``-th request is a :class:`TopKQuery`; the rest are
    :class:`ProductQuery` draws from a ``hot_pool``-sized working set of
    product ids (drawn with replacement, so popular ids repeat — the
    regime caching is for).
    """
    rng = np.random.default_rng(seed)
    pool = rng.choice(
        n_products, size=min(hot_pool, n_products), replace=False
    )
    requests: List[Query] = []
    for i in range(n_requests):
        if topk_every and i % topk_every == 0:
            requests.append(TopKQuery(k=k))
        else:
            requests.append(ProductQuery(int(rng.choice(pool))))
    return requests


def _replay(
    session: MarketSession, requests: List[Query], cache: bool
) -> Dict[str, object]:
    engine = UpgradeEngine(session, workers=0, cache=cache)
    try:
        start = time.perf_counter()
        hits = 0
        for lo in range(0, len(requests), _BATCH):
            for response in engine.execute_batch(requests[lo:lo + _BATCH]):
                if response.cache_hit:
                    hits += 1
        elapsed = time.perf_counter() - start
        metrics = engine.metrics()
    finally:
        engine.close()
    return {
        "cache": cache,
        "requests": len(requests),
        "elapsed_s": elapsed,
        "throughput_rps": len(requests) / elapsed if elapsed > 0 else 0.0,
        "cache_hits": hits,
        "cache_hit_rate": hits / len(requests) if requests else 0.0,
        "latency_s": metrics["latency_s"],
        "counters": metrics["counters"],
        "timings_s": metrics.get("timings_s", {}),
    }


def run_serve_bench(
    n_competitors: int = 4000,
    n_products: int = 1500,
    dims: int = 3,
    distribution: str = "independent",
    n_requests: int = 2000,
    hot_pool: int = 64,
    topk_every: int = 25,
    k: int = 5,
    seed: int = 2012,
    session: Optional[MarketSession] = None,
) -> Dict[str, object]:
    """Run the cached-vs-cold comparison; returns a JSON-ready report.

    ``report["speedup"]`` is cached throughput over cold throughput on the
    identical request sequence.
    """
    if session is None:
        session = build_session(
            n_competitors, n_products, dims, distribution, seed
        )
    requests = generate_requests(
        n_requests,
        session.product_count,
        hot_pool=hot_pool,
        topk_every=topk_every,
        k=k,
        seed=seed + 1,
    )
    cold = _replay(session, requests, cache=False)
    cached = _replay(session, requests, cache=True)
    speedup = (
        cached["throughput_rps"] / cold["throughput_rps"]
        if cold["throughput_rps"]
        else float("inf")
    )
    return {
        "workload": {
            "distribution": distribution,
            "competitors": session.competitor_count,
            "products": session.product_count,
            "dims": session.dims,
            "requests": n_requests,
            "hot_pool": hot_pool,
            "topk_every": topk_every,
            "k": k,
            "seed": seed,
        },
        "cold": cold,
        "cached": cached,
        "speedup": speedup,
    }


def format_report(report: Dict[str, object]) -> str:
    """Human-readable table for the CLI."""
    wl = report["workload"]
    lines = [
        (
            f"# serve-bench: |P|={wl['competitors']} |T|={wl['products']} "
            f"d={wl['dims']} {wl['distribution']}; "
            f"{wl['requests']} requests (hot pool {wl['hot_pool']}, "
            f"top-{wl['k']} every {wl['topk_every']})"
        ),
        (
            f"{'mode':8s} {'elapsed_s':>10s} {'req/s':>10s} "
            f"{'hit_rate':>9s} {'p50_ms':>8s} {'p95_ms':>8s}"
        ),
    ]
    for mode in ("cold", "cached"):
        run = report[mode]
        lat = run["latency_s"]
        lines.append(
            f"{mode:8s} {run['elapsed_s']:10.3f} "
            f"{run['throughput_rps']:10.1f} "
            f"{run['cache_hit_rate']:9.2%} "
            f"{lat['p50'] * 1e3:8.3f} {lat['p95'] * 1e3:8.3f}"
        )
    lines.append(f"speedup (cached/cold): {report['speedup']:.2f}x")
    split = _timing_split(report)
    if split:
        lines.append(split)
    return "\n".join(lines)


def _timing_split(report: Dict[str, object]) -> str:
    """Kernel-vs-scalar time split across both runs (empty if untimed)."""
    kernel = scalar = 0.0
    for mode in ("cold", "cached"):
        timings = report[mode].get("timings_s") or {}
        for name, seconds in timings.items():
            if name.startswith("kernel."):
                kernel += seconds
            elif name.startswith("scalar."):
                scalar += seconds
    total = kernel + scalar
    if total <= 0.0:
        return ""
    return (
        f"hot-path split: kernel {kernel:.3f}s ({kernel / total:.1%}), "
        f"scalar {scalar:.3f}s ({scalar / total:.1%})"
    )
