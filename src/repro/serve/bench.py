"""Serving-layer benchmark: cached engine vs cold per-query execution.

The workload models the serving shape the ROADMAP targets: a large stream
of requests over a *small working set* of popular products (every real
catalog has hot items) with periodic whole-catalog top-k refreshes.  The
same request sequence is replayed twice through identical engines — one
with the epoch-versioned caches enabled, one executing every query cold —
and throughput is compared.  ``skyup serve-bench`` is the CLI wrapper;
``benchmarks/results/BENCH_serve.json`` records a baseline produced by it.

Requests are pre-generated so both runs execute the byte-identical
sequence, and both runs use the synchronous execution path (no worker
pool) so the measurement compares query execution, not thread scheduling.

With ``--fault-rate > 0`` the replay runs under seeded fault injection
(:mod:`repro.reliability.faults`): each run installs its own injector
built from the same :class:`~repro.reliability.faults.FaultPlan`, so both
modes see the identical draw sequence, and requests that still fail after
retries are counted rather than aborting the replay.  The report then
carries a ``reliability`` section per mode (errors, retries, cache
faults, fired counts).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.session import MarketSession
from repro.obs import Trace
from repro.reliability.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    inject_faults,
)
from repro.reliability.guards import KernelGuard
from repro.serve.config import EngineConfig
from repro.serve.engine import ProductQuery, Query, TopKQuery, UpgradeEngine
from repro.shard import ShardedUpgradeEngine

_BATCH = 32


def build_session(
    n_competitors: int = 4000,
    n_products: int = 1500,
    dims: int = 3,
    distribution: str = "independent",
    seed: int = 2012,
    max_entries: int = 32,
) -> MarketSession:
    """A bulk-loaded session over the paper's synthetic market layout."""
    from repro.bench.workloads import serve_session

    return serve_session(
        distribution,
        n_competitors,
        n_products,
        dims,
        seed=seed,
        max_entries=max_entries,
    )


def generate_requests(
    n_requests: int,
    n_products: int,
    hot_pool: int = 64,
    topk_every: int = 25,
    k: int = 5,
    seed: int = 7,
) -> List[Query]:
    """A repeated-query request stream.

    Every ``topk_every``-th request is a :class:`TopKQuery`; the rest are
    :class:`ProductQuery` draws from a ``hot_pool``-sized working set of
    product ids (drawn with replacement, so popular ids repeat — the
    regime caching is for).
    """
    rng = np.random.default_rng(seed)
    pool = rng.choice(
        n_products, size=min(hot_pool, n_products), replace=False
    )
    requests: List[Query] = []
    for i in range(n_requests):
        if topk_every and i % topk_every == 0:
            requests.append(TopKQuery(k=k))
        else:
            requests.append(ProductQuery(int(rng.choice(pool))))
    return requests


def _replay(
    session: MarketSession,
    requests: List[Query],
    cache: bool,
    fault_plan: Optional[FaultPlan] = None,
    method: str = "join",
    processes: int = 0,
    shards: int = 0,
    hedge_delay_s: Optional[float] = None,
    breaker_threshold: int = 5,
) -> Dict[str, object]:
    # The guard is pinned off: its sampled scalar-oracle recomputes are a
    # reliability cost, not query-execution cost, and would skew the
    # cached-vs-cold comparison against the recorded baseline.
    config = EngineConfig(
        workers=0,
        cache=cache,
        method=method,
        processes=processes,
        shards=shards,
        hedge_delay_s=hedge_delay_s,
        breaker_threshold=breaker_threshold,
        kernel_guard=KernelGuard(sample_rate=0.0),
    )
    if processes > 0:
        # Fault injectors are process-local: only coordinator-side
        # points (the caches) can fire here — the shard workers run in
        # their own processes and never see the armed plan.
        engine = ShardedUpgradeEngine(session, config)
    else:
        engine = UpgradeEngine(session, config)
    injector: Optional[FaultInjector] = None
    try:
        start = time.perf_counter()
        if fault_plan is not None:
            with inject_faults(fault_plan) as injector:
                hits, failures = _drain(engine, requests)
        else:
            hits, failures = _drain(engine, requests)
        elapsed = time.perf_counter() - start
        metrics = engine.metrics()
    finally:
        engine.close()
    out = {
        "cache": cache,
        "requests": len(requests),
        "elapsed_s": elapsed,
        "throughput_rps": len(requests) / elapsed if elapsed > 0 else 0.0,
        "cache_hits": hits,
        "cache_hit_rate": hits / len(requests) if requests else 0.0,
        "latency_s": metrics["latency_s"],
        "counters": metrics["counters"],
        "timings_s": metrics.get("timings_s", {}),
        "planner": (
            {
                "plans_chosen": metrics["planner"]["plans_chosen"],
                "replans": metrics["planner"]["replans"],
                "version": metrics["planner"]["version"],
            }
            if metrics.get("planner") is not None
            else None
        ),
        "reliability": {
            "failed_requests": failures,
            "retries": metrics["retries"],
            "cache_faults": metrics["cache_faults"],
            "worker_crashes": metrics["worker_crashes"],
            "quarantines": metrics["quarantines"],
        },
    }
    if processes > 0:
        out["shards"] = metrics["shards"]
        out["reliability"]["worker_respawns"] = metrics["reliability"][
            "worker_respawns"
        ]
        health = metrics["shard_health"]
        hedge = health["hedge"]
        issued = hedge["hedges"]
        out["resilience"] = {
            "hedges_issued": issued,
            "hedges_won": hedge["wins"],
            "hedge_rate": issued / len(requests) if requests else 0.0,
            "breaker_trips": health["breaker_trips"],
            "breaker_skips": health["breaker_skips"],
            "rpc_timeouts": health["rpc_timeouts"],
            "deadline_truncations": health["deadline_truncations"],
            "partials": metrics["partials"],
            "degraded": metrics["degraded"],
            "coverage": metrics["coverage"],
        }
    if injector is not None:
        out["reliability"]["faults_fired"] = {
            point: counts["fired"]
            for point, counts in injector.stats().items()
        }
    return out


def _drain(
    engine: UpgradeEngine, requests: List[Query]
) -> Tuple[int, int]:
    """Replay ``requests`` through ``engine``; returns (hits, failures).

    Failed slots (typed errors under fault injection) are counted, not
    raised — a chaos replay must survive its own faults.
    """
    hits = 0
    failures = 0
    for lo in range(0, len(requests), _BATCH):
        batch = requests[lo:lo + _BATCH]
        for response in engine.execute_batch(batch, raise_errors=False):
            if isinstance(response, BaseException):
                failures += 1
            elif response.cache_hit:
                hits += 1
    return hits, failures


def run_serve_bench(
    n_competitors: int = 4000,
    n_products: int = 1500,
    dims: int = 3,
    distribution: str = "independent",
    n_requests: int = 2000,
    hot_pool: int = 64,
    topk_every: int = 25,
    k: int = 5,
    seed: int = 2012,
    session: Optional[MarketSession] = None,
    fault_rate: float = 0.0,
    fault_points: Optional[List[str]] = None,
    fault_seed: Optional[int] = None,
    method: str = "join",
    processes: int = 0,
    shards: int = 0,
    hedge_delay_s: Optional[float] = None,
    breaker_threshold: int = 5,
) -> Dict[str, object]:
    """Run the cached-vs-cold comparison; returns a JSON-ready report.

    ``report["speedup"]`` is cached throughput over cold throughput on the
    identical request sequence.  ``fault_rate > 0`` arms ``fault_points``
    (default: ``serve.cache`` and ``rtree.query``) with error faults at
    that rate for both runs, from the same seed.  ``method`` is the
    engine execution strategy for whole-catalog top-k requests
    (``"join"``, the recorded baseline's behaviour; ``"probing"``; or
    ``"auto"`` — each run's report then carries the planner's chosen
    physical plans under ``report[mode]["planner"]``).

    ``processes > 0`` replays the same request sequence a third time
    through the cached :class:`~repro.shard.ShardedUpgradeEngine` at
    that process count (``shards`` defaults to one per process); the
    ``report["sharded"]`` run then carries topology and per-process
    health — owned shards, queue depth, crash/respawn counts — under
    ``report["sharded"]["shards"]``, plus a ``resilience`` section
    (hedge rate, breaker trips/skips, coverage percentiles).
    ``hedge_delay_s`` and ``breaker_threshold`` tune the sharded run's
    hedged-scatter delay and circuit breakers (``skyup serve-bench
    --hedge-delay/--breaker-threshold``).  Coordinator-side fault
    points (``shard.transport.*``) *do* fire for the sharded run when
    armed explicitly; the default cache/rtree points live in the
    workers' processes and would never see the injector, so faults are
    not armed for the sharded run unless the caller names transport
    points.
    """
    if session is None:
        session = build_session(
            n_competitors, n_products, dims, distribution, seed
        )
    requests = generate_requests(
        n_requests,
        session.product_count,
        hot_pool=hot_pool,
        topk_every=topk_every,
        k=k,
        seed=seed + 1,
    )
    fault_plan = None
    if fault_rate > 0.0:
        fault_plan = FaultPlan(
            seed=fault_seed if fault_seed is not None else seed,
            rate=fault_rate,
            points=tuple(fault_points or ("serve.cache", "rtree.query")),
        )
    cold = _replay(
        session, requests, cache=False, fault_plan=fault_plan, method=method
    )
    cached = _replay(
        session, requests, cache=True, fault_plan=fault_plan, method=method
    )
    speedup = (
        cached["throughput_rps"] / cold["throughput_rps"]
        if cold["throughput_rps"]
        else float("inf")
    )
    sharded = None
    if processes > 0:
        transport_plan = None
        if fault_plan is not None:
            # Only coordinator-side transport points can fire in the
            # sharded run; re-key their kinds to what each site consults
            # (delay is a maybe_inject latency site, drop/dup are
            # maybe_corrupt sites) so plain-name arming does what the
            # flag says instead of silently doing nothing.
            transport_specs: Dict[str, FaultSpec] = {}
            for point, spec in fault_plan.specs().items():
                if not point.startswith("shard.transport."):
                    continue
                if point == "shard.transport.delay":
                    if spec.kind == "error":
                        spec = FaultSpec(rate=spec.rate, kind="latency")
                elif spec.kind != "corrupt":
                    spec = FaultSpec(rate=spec.rate, kind="corrupt")
                transport_specs[point] = spec
            if transport_specs:
                transport_plan = FaultPlan(
                    seed=fault_plan.seed,
                    rate=fault_plan.rate,
                    points=transport_specs,
                )
        sharded = _replay(
            session,
            requests,
            cache=True,
            fault_plan=transport_plan,
            method=method,
            processes=processes,
            shards=shards,
            hedge_delay_s=hedge_delay_s,
            breaker_threshold=breaker_threshold,
        )
    report = {
        "workload": {
            "distribution": distribution,
            "competitors": session.competitor_count,
            "products": session.product_count,
            "dims": session.dims,
            "requests": n_requests,
            "hot_pool": hot_pool,
            "topk_every": topk_every,
            "k": k,
            "seed": seed,
            "method": method,
            "processes": processes,
            "shards": shards or (processes if processes else 0),
            "hedge_delay_s": hedge_delay_s,
            "breaker_threshold": breaker_threshold,
        },
        "cold": cold,
        "cached": cached,
        "speedup": speedup,
        "faults": (
            {
                "rate": fault_plan.rate,
                "seed": fault_plan.seed,
                "points": sorted(fault_plan.specs()),
            }
            if fault_plan is not None
            else None
        ),
    }
    if sharded is not None:
        report["sharded"] = sharded
    return report


def run_trace_workload(
    n_competitors: int = 2000,
    n_products: int = 800,
    dims: int = 3,
    distribution: str = "independent",
    n_requests: int = 200,
    hot_pool: int = 32,
    topk_every: int = 25,
    k: int = 5,
    seed: int = 2012,
    workers: int = 2,
    session: Optional[MarketSession] = None,
) -> List[Trace]:
    """Replay a request stream with tracing on; returns the kept traces.

    Every request is traced (``trace_sample_rate=1.0``) and the trace
    store is sized to hold the whole stream, so the caller can rank all
    of them — ``skyup trace`` dumps the slowest N.  The pooled submission
    path is used (unlike :func:`run_serve_bench`'s synchronous replay):
    the point of a trace dump is to see queue waits and batch execution,
    which only exist with workers.
    """
    if session is None:
        session = build_session(
            n_competitors, n_products, dims, distribution, seed
        )
    requests = generate_requests(
        n_requests,
        session.product_count,
        hot_pool=hot_pool,
        topk_every=topk_every,
        k=k,
        seed=seed + 1,
    )
    config = EngineConfig(
        workers=max(1, workers),
        queue_capacity=max(1024, len(requests)),
        trace_sample_rate=1.0,
        trace_store_capacity=max(1, len(requests)),
        trace_seed=seed,
    )
    with UpgradeEngine(session, config) as engine:
        pending = engine.submit_batch(requests)
        for p in pending:
            p.result()
        return engine.recent_traces()


def format_report(report: Dict[str, object]) -> str:
    """Human-readable table for the CLI."""
    wl = report["workload"]
    modes = ["cold", "cached"]
    if "sharded" in report:
        modes.append("sharded")
    lines = [
        (
            f"# serve-bench: |P|={wl['competitors']} |T|={wl['products']} "
            f"d={wl['dims']} {wl['distribution']}; "
            f"{wl['requests']} requests (hot pool {wl['hot_pool']}, "
            f"top-{wl['k']} every {wl['topk_every']})"
        ),
        (
            f"{'mode':8s} {'elapsed_s':>10s} {'req/s':>10s} "
            f"{'hit_rate':>9s} {'p50_ms':>8s} {'p95_ms':>8s}"
        ),
    ]
    for mode in modes:
        run = report[mode]
        lat = run["latency_s"]
        lines.append(
            f"{mode:8s} {run['elapsed_s']:10.3f} "
            f"{run['throughput_rps']:10.1f} "
            f"{run['cache_hit_rate']:9.2%} "
            f"{lat['p50'] * 1e3:8.3f} {lat['p95'] * 1e3:8.3f}"
        )
    lines.append(f"speedup (cached/cold): {report['speedup']:.2f}x")
    shard_run = report.get("sharded")
    if shard_run is not None:
        stats = shard_run["shards"]
        rel = shard_run["reliability"]
        lines.append(
            f"sharded: {stats['n_processes']} processes x "
            f"{stats['n_shards']} shards "
            f"(respawns={rel['worker_respawns']})"
        )
        for proc in stats["per_process"]:
            owned = ",".join(str(s) for s in proc["shards"])
            lines.append(
                f"  proc {proc['proc']}: shards=[{owned}] "
                f"queue_depth={proc['queue_depth']} "
                f"crashes={proc['crashes']} "
                f"respawns={proc['respawns']} "
                f"alive={proc['alive']}"
            )
        res = shard_run.get("resilience")
        if res is not None:
            cov = res["coverage"]
            lines.append(
                f"  resilience: hedge_rate={res['hedge_rate']:.2%} "
                f"(issued={res['hedges_issued']} won={res['hedges_won']}) "
                f"breaker_trips={res['breaker_trips']} "
                f"skips={res['breaker_skips']} "
                f"rpc_timeouts={res['rpc_timeouts']}"
            )
            lines.append(
                f"  coverage: mean={cov['mean']:.3f} p50={cov['p50']:.3f} "
                f"p05={cov['p05']:.3f} partials={res['partials']} "
                f"degraded={res['degraded']}"
            )
    for mode in ("cold", "cached"):
        planner = report[mode].get("planner")
        if planner:
            chosen = ", ".join(
                f"{label}×{count}"
                for label, count in sorted(planner["plans_chosen"].items())
            ) or "none"
            lines.append(
                f"  {mode:8s} plans: {chosen} "
                f"(replans={planner['replans']})"
            )
    split = _timing_split(report)
    if split:
        lines.append(split)
    faults = report.get("faults")
    if faults:
        lines.append(
            f"chaos: rate={faults['rate']} seed={faults['seed']} "
            f"points={','.join(faults['points'])}"
        )
        for mode in ("cold", "cached"):
            rel = report[mode]["reliability"]
            fired = sum((rel.get("faults_fired") or {}).values())
            lines.append(
                f"  {mode:8s} fired={fired} failed={rel['failed_requests']} "
                f"retries={rel['retries']} "
                f"cache_faults={rel['cache_faults']} "
                f"crashes={rel['worker_crashes']}"
            )
    return "\n".join(lines)


def _timing_split(report: Dict[str, object]) -> str:
    """Kernel-vs-scalar time split across both runs (empty if untimed)."""
    kernel = scalar = 0.0
    for mode in ("cold", "cached"):
        timings = report[mode].get("timings_s") or {}
        for name, seconds in timings.items():
            if name.startswith("kernel."):
                kernel += seconds
            elif name.startswith("scalar."):
                scalar += seconds
    total = kernel + scalar
    if total <= 0.0:
        return ""
    return (
        f"hot-path split: kernel {kernel:.3f}s ({kernel / total:.1%}), "
        f"scalar {scalar:.3f}s ({scalar / total:.1%})"
    )
