"""The concurrent upgrade-query engine.

:class:`UpgradeEngine` wraps a :class:`~repro.core.session.MarketSession`
for production-style serving:

* **Epoch-versioned caching** — dominator skylines and the whole-catalog
  top-k prefix are cached and invalidated *precisely* on catalog mutations
  (region overlap against the mutated point, not wholesale; see
  :mod:`repro.serve.cache`).
* **Batch execution** — concurrent top-k requests drained from the queue
  together are served by *one* progressive join run to the largest
  requested ``k``; each request receives its prefix.  This amortizes the
  R-tree traversal exactly the way the join algorithm amortizes it over
  products, instead of issuing N independent probes.
* **Bounded concurrency** — a thread worker pool with an admission-bounded
  queue (:mod:`repro.serve.pool` documents the GIL tradeoff), a
  readers-writer lock so queries run concurrently while mutations are
  exclusive, and per-request deadlines with graceful degradation: on
  deadline the progressive prefix emitted so far is returned with
  ``partial=True`` instead of an error.
* **Metrics** — per-worker :class:`~repro.instrumentation.Counters`
  merged on demand, cache hit rates, queue depth, and rolling latency
  percentiles via :meth:`UpgradeEngine.metrics`.
* **Reliability** (:mod:`repro.reliability`) — worker supervision (a
  crashing batch execution is contained, counted, and failed with a typed
  :class:`~repro.exceptions.WorkerCrashError`; the worker survives),
  retries of :class:`~repro.exceptions.TransientError` failures under a
  capped-backoff :class:`~repro.reliability.retry.RetryPolicy`, cache
  faults degrading to recomputes, a sampling kernel-vs-scalar result
  guard that quarantines diverging kernels, and a budgeted R-tree
  invariant check after catalog mutations.
* **Tracing** (:mod:`repro.obs`) — a sampled request produces a
  structured trace of nested spans covering every phase it passes
  through (admission, queue wait, cache lookups, the join's heap work,
  R-tree traversals, guard recomputes).  The trace is created at
  admission, rides on the :class:`PendingQuery` across the queue, and is
  re-activated on the worker thread; kept traces land in
  :meth:`UpgradeEngine.recent_traces` and the ``skyup trace`` CLI.

Configuration is consolidated in the frozen
:class:`~repro.serve.config.EngineConfig` dataclass; the legacy keyword
style (``UpgradeEngine(session, workers=4)``) still works for one
release and emits a single :class:`DeprecationWarning`.

Deadlines are *cooperative*: they are checked between progressive results,
so a response can overshoot by at most one result-to-result step of the
join.  Retry backoff sleeps on the worker thread (inside the read lock),
which is why :class:`~repro.reliability.retry.RetryPolicy` keeps delays in
the low milliseconds.  Catalog mutations must go through the engine's
mutator methods (or otherwise be externally synchronized) — the underlying
session is not itself thread-safe.

Example::

    session = MarketSession.from_points(P, T)
    config = EngineConfig(workers=4, trace_sample_rate=0.1)
    with UpgradeEngine(session, config) as engine:
        pending = engine.submit_batch(
            [TopKQuery(k=5), TopKQuery(k=10, deadline_s=0.05)]
        )
        for p in pending:
            response = p.result(timeout=1.0)
            use(response.results, response.partial)
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.probing import improved_probing
from repro.core.session import MarketSession, MutationEvent
from repro.core.types import UpgradeResult
from repro.core.upgrade import upgrade
from repro.exceptions import (
    ConfigurationError,
    EngineClosedError,
    EngineOverloadedError,
    RTreeError,
    TransientError,
    WorkerCrashError,
)
from repro.instrumentation import Counters, Stopwatch
from repro.kernels.switch import kernels_enabled, use_kernels
from repro.obs import Trace, Tracer, TraceStore, activate, clock, span
from repro.plan import LogicalPlan, PhysicalPlan, Planner, profile_catalog
from repro.plan.planner import PlannedQuery
from repro.reliability.faults import active_injector, maybe_inject
from repro.reliability.guards import IndexGuard, KernelGuard, divergence
from repro.reliability.retry import RetryPolicy
from repro.serve.cache import SkylineCache, TopKCache
from repro.serve.config import EngineConfig
from repro.serve.metrics import EngineMetrics
from repro.serve.pool import ReadWriteLock, WorkerPool

Epoch = Tuple[int, int]
Point = Tuple[float, ...]


@dataclass(frozen=True)
class TopKQuery:
    """Top-k cheapest upgrades over the whole catalog.

    Attributes:
        k: number of results wanted.
        deadline_s: per-request budget from submission; ``None`` uses the
            engine default (which may itself be ``None`` — no deadline).
    """

    k: int = 1
    deadline_s: Optional[float] = None


@dataclass(frozen=True)
class ProductQuery:
    """The optimal upgrade of one catalog product against the market."""

    product_id: int
    deadline_s: Optional[float] = None


Query = Union[TopKQuery, ProductQuery]


@dataclass
class QueryResponse:
    """What a request resolves to.

    Attributes:
        results: ranked upgrade results (a single element for
            :class:`ProductQuery`; possibly short for partial responses).
        partial: the deadline expired before the full answer was ready;
            ``results`` is the valid progressive prefix emitted so far.
        cache_hit: served from the epoch-versioned cache.
        epoch: catalog epoch the answer is valid for.
        queue_wait_s: time from submission to worker pickup.
        elapsed_s: end-to-end time from submission to response.
        coverage: fraction of catalog shards that contributed
            (``1.0`` outside the sharded tier).  A partial response at
            full coverage is an exact prefix of the canonical order; at
            ``coverage < 1`` the results are exact over the reduced
            market formed by the live shards — per-product lower bounds
            on the true costs.
    """

    results: List[UpgradeResult] = field(default_factory=list)
    partial: bool = False
    cache_hit: bool = False
    epoch: Epoch = (0, 0)
    queue_wait_s: float = 0.0
    elapsed_s: float = 0.0
    coverage: float = 1.0


class PendingQuery:
    """A submitted request; resolves to a :class:`QueryResponse`.

    Carries the request's (possibly absent) :class:`~repro.obs.Trace`
    across the submit→worker thread hop — the worker re-activates it so
    spans opened on both sides nest under the same root.
    """

    __slots__ = (
        "query",
        "abs_deadline",
        "enqueued_at",
        "picked_up_at",
        "trace",
        "_event",
        "_response",
        "_exception",
    )

    def __init__(self, query: Query, default_deadline_s: Optional[float]):
        self.query = query
        self.enqueued_at = time.monotonic()
        self.picked_up_at: Optional[float] = None
        self.trace: Optional[Trace] = None
        budget = (
            query.deadline_s
            if query.deadline_s is not None
            else default_deadline_s
        )
        self.abs_deadline = (
            self.enqueued_at + budget if budget is not None else None
        )
        self._event = threading.Event()
        self._response: Optional[QueryResponse] = None
        self._exception: Optional[BaseException] = None

    def mark_picked_up(self, at: float) -> None:
        """Stamp worker pickup (first stamp wins; the pool calls this at
        batch drain, the batch executor backstops it)."""
        if self.picked_up_at is None:
            self.picked_up_at = at

    @property
    def queue_wait_s(self) -> float:
        """Seconds between submission and worker pickup (0.0 if never
        picked up)."""
        if self.picked_up_at is None:
            return 0.0
        return self.picked_up_at - self.enqueued_at

    def done(self) -> bool:
        """True once a response (or error) is available."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResponse:
        """Block for the response.

        Raises:
            TimeoutError: ``timeout`` elapsed with no response.
            Exception: whatever the request failed with (e.g.
                :class:`~repro.exceptions.ConfigurationError` for an
                unknown product id).
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"no response within {timeout}s for {self.query}"
            )
        if self._exception is not None:
            raise self._exception
        assert self._response is not None
        return self._response

    def _resolve(self, response: QueryResponse) -> None:
        self._response = response
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._exception = exc
        self._event.set()


class UpgradeEngine:
    """Serve top-k upgrade queries against a live market session.

    Args:
        session: the owned market state.  The engine registers a mutation
            listener; route mutations through the engine's mutator methods
            so they synchronize with in-flight queries.
        config: every tunable, consolidated in one frozen
            :class:`~repro.serve.config.EngineConfig` (``None`` = all
            defaults).
        **legacy: the pre-:class:`EngineConfig` keyword style
            (``workers=4, cache=False, ...``).  Deprecated — the kwargs
            are folded into ``config`` (overriding its fields) and a
            single :class:`DeprecationWarning` is emitted per
            construction.
    """

    def __init__(
        self,
        session: MarketSession,
        config: Optional[EngineConfig] = None,
        **legacy: object,
    ):
        if legacy:
            unknown = set(legacy) - set(EngineConfig.field_names())
            if unknown:
                raise ConfigurationError(
                    f"unknown engine option(s): {sorted(unknown)}; "
                    f"valid options are {list(EngineConfig.field_names())}"
                )
            warnings.warn(
                "passing UpgradeEngine tunables as keyword arguments is "
                "deprecated; pass config=EngineConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = replace(config or EngineConfig(), **legacy)
        elif config is None:
            config = EngineConfig()
        self.config = config
        self.session = session
        self.cache_enabled = config.cache
        self.default_deadline_s = config.default_deadline_s
        self.retry_policy = (
            config.retry_policy
            if config.retry_policy is not None
            else RetryPolicy()
        )
        self.kernel_guard = (
            config.kernel_guard
            if config.kernel_guard is not None
            else KernelGuard()
        )
        self.index_guard = IndexGuard(every=config.index_check_every)
        self.skyline_cache = SkylineCache(
            max_entries=config.skyline_cache_entries
        )
        self.topk_cache = TopKCache()
        self.tracer = Tracer(
            sample_rate=config.trace_sample_rate,
            slow_threshold_s=config.trace_slow_s,
            seed=config.trace_seed,
            max_spans=config.trace_max_spans,
        )
        self.trace_store = TraceStore(capacity=config.trace_store_capacity)
        self._metrics = EngineMetrics(window=config.metrics_window)
        # Each engine owns its planner: calibration feedback from this
        # catalog should not leak into unrelated processes' plans.
        self.planner = Planner()
        self._plan_lock = threading.Lock()
        self._plan_cache: Optional[Tuple[Epoch, int, PlannedQuery]] = None
        self._rw = ReadWriteLock()
        self._extern_counters: Dict[int, Counters] = (
            {}
        )  # guarded-by: _extern_lock
        self._extern_lock = threading.Lock()
        # Oracle recomputes are guard overhead, not request work: they get
        # their own counters so the request counters still equal a serial
        # run's exactly (the suite asserts that equality).
        self._guard_stats = Counters()  # guarded-by: _guard_stats_lock
        self._guard_stats_lock = threading.Lock()
        self._closed = False
        self._pool: Optional[WorkerPool] = None
        if config.workers > 0:
            self._pool = WorkerPool(
                self._handle_batch,
                workers=config.workers,
                queue_capacity=config.queue_capacity,
                batch_max=config.batch_max,
                on_batch_error=self._fail_batch,
            )
        session.add_mutation_listener(self._on_mutation)

    # -- lifecycle ------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> int:
        """Stop the pool and detach from the session (idempotent).

        Returns the number of workers that failed to join within
        ``timeout`` (0 = clean shutdown; stragglers are named in
        ``pool.stuck_workers``).
        """
        stuck = 0
        if self._pool is not None:
            stuck = self._pool.close(timeout=timeout)
        if not self._closed:
            self._closed = True
            self.session.remove_mutation_listener(self._on_mutation)
        return stuck

    def __enter__(self) -> "UpgradeEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- catalog mutation (exclusive) -----------------------------------------

    def add_competitor(self, point: Sequence[float]) -> int:
        """Insert a competitor; precisely invalidates overlapping caches."""
        with self._rw.write_locked():
            cid = self.session.add_competitor(point)
            self._check_indexes()
            return cid

    def remove_competitor(self, competitor_id: int) -> bool:
        """Remove a competitor; precisely invalidates overlapping caches."""
        with self._rw.write_locked():
            removed = self.session.remove_competitor(competitor_id)
            if removed:
                self._check_indexes()
            return removed

    def add_product(self, point: Sequence[float]) -> int:
        """Add a catalog product (drops the cached top-k prefix)."""
        with self._rw.write_locked():
            pid = self.session.add_product(point)
            self._check_indexes()
            return pid

    def remove_product(self, product_id: int) -> bool:
        """Remove a catalog product (drops the cached top-k prefix)."""
        with self._rw.write_locked():
            removed = self.session.remove_product(product_id)
            if removed:
                self._check_indexes()
            return removed

    def commit_upgrade(self, result: UpgradeResult) -> None:
        """Commit an upgrade result (drops the cached top-k prefix)."""
        with self._rw.write_locked():
            self.session.commit_upgrade(result)
            self._check_indexes()

    def _check_indexes(self) -> None:
        """Budgeted structural validation, inside the mutation's write lock.

        Raises:
            RTreeError: an index invariant is violated — surfaced to the
                mutating caller, since serving from a corrupt index would
                silently return wrong answers.
        """
        if not self.index_guard.should_check():
            return
        try:
            self.session.validate_indexes()
        except RTreeError:
            self.index_guard.record_failure()
            raise

    def _on_mutation(self, event: MutationEvent) -> None:
        """Precise invalidation — runs inside the mutation's write lock.

        Competitor mutations drop skyline entries whose ADR contains the
        mutated point, and the top-k prefix only when some product lies in
        the point's dominance region.  Product mutations change the ranked
        set itself, so the top-k prefix always goes; skylines (competitor
        functions) survive.

        If the overlap probe fails transiently (e.g. an injected
        ``rtree.query`` fault), the prefix is dropped anyway: when in
        doubt, invalidating is always correct — keeping a stale prefix is
        not.
        """
        with self._plan_lock:
            # The chosen plan is keyed on the epoch anyway, but dropping
            # it eagerly keeps the cache from pinning a dead PlannedQuery.
            self._plan_cache = None
        if event.side == "competitor":
            self.skyline_cache.invalidate_point(event.point)
            try:
                overlaps = self.session.any_product_in_dominance_region(
                    event.point
                )
            except TransientError:
                self._metrics.record_cache_fault()
                overlaps = True
            if overlaps:
                self.topk_cache.invalidate()
        else:
            self.topk_cache.invalidate()

    # -- query submission ------------------------------------------------------

    def query(self, query: Query) -> QueryResponse:
        """Execute one request synchronously on the calling thread."""
        return self.execute_batch([query])[0]

    # error-boundary: chaos drivers replay through typed failures
    def execute_batch(
        self, queries: Sequence[Query], raise_errors: bool = True
    ) -> List[QueryResponse]:
        """Execute a batch synchronously; responses in request order.

        Top-k requests in the batch share a single progressive join run.
        With ``raise_errors`` (the default) the per-request exception
        (e.g. unknown product id) is raised exactly as
        :meth:`PendingQuery.result` would; with ``raise_errors=False``
        failed slots hold the exception object instead — chaos drivers
        use this to keep replaying through typed failures.
        """
        pendings = [self._admit(q) for q in queries]
        self._execute_batch(pendings, self._calling_thread_counters())
        if raise_errors:
            return [p.result(timeout=0) for p in pendings]
        out: List[QueryResponse] = []
        for p in pendings:
            try:
                out.append(p.result(timeout=0))
            except Exception as exc:
                out.append(exc)  # type: ignore[arg-type]
        return out

    def submit(self, query: Query) -> PendingQuery:
        """Enqueue one request on the worker pool."""
        return self.submit_batch([query])[0]

    def submit_batch(self, queries: Sequence[Query]) -> List[PendingQuery]:
        """Enqueue requests atomically on the worker pool.

        Raises:
            ConfigurationError: no pool (``workers=0``) or bad query.
            EngineOverloadedError: the bounded queue is full.
            EngineClosedError: the engine was closed.
        """
        if self._pool is None:
            raise ConfigurationError(
                "engine has no worker pool (workers=0); use query() / "
                "execute_batch()"
            )
        pendings = [self._admit(q) for q in queries]
        try:
            self._pool.submit_many(pendings)
        except (EngineClosedError, EngineOverloadedError):
            self._metrics.record_rejection()
            raise
        return pendings

    def _admit(self, query: Query) -> PendingQuery:
        if isinstance(query, TopKQuery):
            if query.k < 1:
                raise ConfigurationError(f"k must be >= 1, got {query.k}")
        elif not isinstance(query, ProductQuery):
            raise ConfigurationError(
                f"unsupported query type: {type(query).__name__}"
            )
        pending = PendingQuery(query, self.default_deadline_s)
        if self.tracer.enabled:
            if isinstance(query, TopKQuery):
                trace = self.tracer.start("topk", k=query.k)
            else:
                trace = self.tracer.start(
                    "product", product_id=query.product_id
                )
            if trace is not None:
                pending.trace = trace
                # The root span's extent is admission → resolution; it is
                # closed by _finish_trace, not a lexical block.
                trace.span("engine.request").__enter__()
        return pending

    # -- execution -------------------------------------------------------------

    def _handle_batch(
        self, batch: List[PendingQuery], counters: Counters
    ) -> None:
        self._execute_batch(batch, counters)

    def _fail_batch(
        self, pendings: Sequence[PendingQuery], exc: BaseException
    ) -> None:
        """Terminal containment: every unresolved request gets a typed
        :class:`WorkerCrashError` so no caller is left hanging.

        Doubles as the pool's ``on_batch_error`` backstop — already-done
        requests are left untouched, so double delivery is impossible.
        """
        self._metrics.record_worker_crash()
        wrapped = WorkerCrashError(f"batch execution crashed: {exc!r}")
        wrapped.__cause__ = exc
        for pending in pendings:
            if not pending.done():
                kind = (
                    "topk"
                    if isinstance(pending.query, TopKQuery)
                    else "product"
                )
                self._metrics.record_request(
                    kind, 0.0, 0.0, partial=False, error=True
                )
                pending._fail(wrapped)
            if pending.trace is not None:
                pending.trace.attrs.setdefault("error", type(exc).__name__)
                self._finish_trace(pending)

    # error-boundary: batch containment — no caller is left hanging
    def _execute_batch(
        self, pendings: List[PendingQuery], counters: Counters
    ) -> None:
        now = time.monotonic()
        worker = threading.current_thread().name
        for p in pendings:
            p.mark_picked_up(now)
            if p.trace is not None:
                # Retroactive: the span's extent (submission → pickup) is
                # only known once the worker has the request in hand.
                p.trace.record(
                    "engine.queue_wait",
                    p.trace.spans[0].t0,
                    clock(),
                    queue_wait_s=round(p.queue_wait_s, 6),
                    worker=worker,
                )
        local = Counters()
        try:
            maybe_inject("serve.handler")
            with self._rw.read_locked():
                epoch = self.session.epoch
                topk_group: List[PendingQuery] = []
                for pending in pendings:
                    if isinstance(pending.query, TopKQuery):
                        topk_group.append(pending)
                    else:
                        self._serve_product(pending, local, epoch)
                if topk_group:
                    self._serve_topk_group(topk_group, local, epoch)
        except Exception as exc:
            self._fail_batch(pendings, exc)
        counters.merge(local)
        self._metrics.record_batch(len(pendings))

    # -- cache access (faults degrade to recomputes) ---------------------------

    def _cached_skyline_entry(self, point: Point):
        if not self.cache_enabled:
            return None
        try:
            maybe_inject("serve.cache")
            return self.skyline_cache.get(point)
        except TransientError:
            self._metrics.record_cache_fault()
            return None

    def _store_skyline(self, point, skyline, result, epoch) -> None:
        if not self.cache_enabled:
            return
        try:
            maybe_inject("serve.cache")
            self.skyline_cache.put(point, skyline, result, epoch)
        except TransientError:
            self._metrics.record_cache_fault()

    def _cached_topk(self, k: int):
        if not self.cache_enabled:
            return None
        try:
            maybe_inject("serve.cache")
            return self.topk_cache.get(k)
        except TransientError:
            self._metrics.record_cache_fault()
            return None

    def _store_topk(self, results, exhausted, epoch) -> None:
        if not self.cache_enabled:
            return
        try:
            maybe_inject("serve.cache")
            self.topk_cache.put(results, exhausted, epoch)
        except TransientError:
            self._metrics.record_cache_fault()

    # -- retries ---------------------------------------------------------------

    def _retry_or_fail(
        self,
        pendings: Sequence[PendingQuery],
        exc: TransientError,
        attempt: int,
        kind: str,
    ) -> bool:
        """Back off and return True to retry; fail ``pendings`` otherwise.

        Retries stop at the policy's attempt cap or once every waiting
        request's deadline has passed (a retry nobody can wait for is
        wasted work).
        """
        now = time.monotonic()
        waiting = [
            p
            for p in pendings
            if not p.done()
            and (p.abs_deadline is None or p.abs_deadline > now)
        ]
        if attempt >= self.retry_policy.max_attempts or not waiting:
            for pending in pendings:
                if not pending.done():
                    self._metrics.record_request(
                        kind, 0.0, 0.0, partial=False, error=True
                    )
                    pending._fail(exc)
            return False
        self._metrics.record_retry()
        time.sleep(self.retry_policy.delay_s(attempt))
        return True

    # error-boundary: per-request containment — fail, never hang
    def _serve_product(
        self, pending: PendingQuery, stats: Counters, epoch: Epoch
    ) -> None:
        try:
            with activate(pending.trace):
                with span("engine.execute", kind="product"):
                    self._serve_product_retrying(pending, stats, epoch)
        finally:
            self._finish_trace(pending)

    # error-boundary: per-request containment — fail, never hang
    def _serve_product_retrying(
        self, pending: PendingQuery, stats: Counters, epoch: Epoch
    ) -> None:
        attempt = 1
        while not pending.done():
            try:
                self._serve_product_once(pending, stats, epoch)
                return
            except TransientError as exc:
                if not self._retry_or_fail(
                    [pending], exc, attempt, "product"
                ):
                    return
                attempt += 1
            except Exception as exc:
                self._metrics.record_request(
                    "product", 0.0, 0.0, partial=False, error=True
                )
                pending._fail(exc)
                return

    def _serve_product_once(
        self, pending: PendingQuery, stats: Counters, epoch: Epoch
    ) -> None:
        query = pending.query
        point = self.session.product_point(query.product_id)
        if point is None:
            raise ConfigurationError(
                f"unknown product id {query.product_id}"
            )
        if (
            pending.abs_deadline is not None
            and time.monotonic() >= pending.abs_deadline
        ):
            self._respond(pending, [], partial=True, cache_hit=False,
                          epoch=epoch, kind="product")
            return
        entry = self._cached_skyline_entry(point)
        if entry is not None:
            cached = entry.result
            result = UpgradeResult(
                query.product_id, point, cached.upgraded, cached.cost
            )
            self._respond(pending, [result], partial=False,
                          cache_hit=True, epoch=epoch, kind="product")
            return
        skyline = self.session.dominator_skyline(point, stats)
        cost, upgraded = upgrade(
            skyline,
            point,
            self.session.cost_model,
            self.session.config,
            stats,
        )
        result = UpgradeResult(query.product_id, point, upgraded, cost)
        result = self._guarded_product_result(result)
        self._store_skyline(point, skyline, result, epoch)
        self._respond(pending, [result], partial=False,
                      cache_hit=False, epoch=epoch, kind="product")

    # -- planning --------------------------------------------------------------

    def _current_plan(self, epoch: Epoch) -> Optional[PlannedQuery]:
        """The planner's choice for this catalog epoch (None = fixed join).

        Cached per ``(epoch, planner version)``: mutations move the epoch
        and calibration feedback (repeated misestimates, unit-cost
        refits) bumps the version, so either forces a re-plan.  With
        ``config.method="join"`` planning is skipped entirely — the
        legacy fixed path.
        """
        if self.config.method == "join":
            return None
        with self._plan_lock:
            cached = self._plan_cache
            if (
                cached is not None
                and cached[0] == epoch
                and cached[1] == self.planner.version
            ):
                return cached[2]
        session = self.session
        with span("engine.plan", method=self.config.method):
            profile = profile_catalog(
                session.competitor_index,
                session.product_count,
                session.dims,
                product_tree=session.product_index,
            )
            logical = LogicalPlan(k=1, profile=profile)
            force = None
            if self.config.method == "probing":
                force = PhysicalPlan(
                    method="probing",
                    vector_jl_from=self.planner.vector_jl_from,
                )
            planned = self.planner.plan(logical, force=force)
        with self._plan_lock:
            self._plan_cache = (epoch, planned.version, planned)
        return planned

    def _make_plan_upgrader(self, planned: Optional[PlannedQuery]):
        """A session upgrader honoring the plan's join knobs (if any)."""
        if planned is None:
            return self.session.make_upgrader()
        plan = planned.plan
        return self.session.make_upgrader(
            bound=plan.bound, vector_jl_from=plan.vector_jl_from
        )

    def _probing_topk(
        self, k: int, stats: Counters
    ) -> Tuple[List[UpgradeResult], bool, float]:
        """One improved-probing run mapped back to catalog product ids.

        Returns ``(results, exhausted, elapsed_s)``.  Work is charged to
        ``stats`` — pass the request counters on the serving path, the
        guard counters on oracle recomputes.
        """
        ids, points = self.session.products_by_id()
        if not points:
            return [], True, 0.0
        outcome = improved_probing(
            self.session.competitor_index,
            points,
            self.session.cost_model,
            k,
            self.session.config,
        )
        stats.merge(outcome.report.counters)
        results = [
            replace(r, record_id=ids[r.record_id])
            for r in outcome.results
        ]
        return results, len(results) < k, outcome.report.elapsed_s

    # -- kernel result guard ---------------------------------------------------

    def _guarded_product_result(
        self, result: UpgradeResult
    ) -> UpgradeResult:
        """Maybe cross-check one kernel-path answer against the oracle.

        On divergence: record it, quarantine the kernels (global flip to
        scalar), and serve the oracle's answer — the client never sees the
        divergent result.  The recompute is charged to the engine's guard
        counters, never the request counters (see ``guard_counters``).
        """
        guard = self.kernel_guard
        if not kernels_enabled() or not guard.should_check():
            return result
        work = Counters()
        with span("guard.recompute", kind="product"), use_kernels(False):
            skyline = self.session.dominator_skyline(result.original, work)
            cost, upgraded = upgrade(
                skyline,
                result.original,
                self.session.cost_model,
                self.session.config,
                work,
            )
        with self._guard_stats_lock:
            self._guard_stats.merge(work)
        if guard.costs_match(result.cost, cost) and all(
            abs(a - b) <= guard.tolerance
            for a, b in zip(result.upgraded, upgraded)
        ):
            return result
        if guard.record_divergence(
            divergence(
                "product",
                [(result.record_id, result.cost)],
                [(result.record_id, cost)],
            )
        ):
            self._metrics.record_quarantine()
        return UpgradeResult(result.record_id, result.original, upgraded, cost)

    def _oracle_topk(
        self, k: int, method: str = "join"
    ) -> List[UpgradeResult]:
        """The scalar-path top-``k`` prefix (the guard's reference run).

        Recomputes with the same ``method`` the guarded run used, so the
        comparison isolates kernel-vs-scalar.  Charged to the guard
        counters, not the request counters.
        """
        oracle_stats = Counters()
        with span("guard.recompute", kind="topk", k=k), use_kernels(False):
            if method != "join":
                results, _exhausted, _ = self._probing_topk(k, oracle_stats)
            else:
                upgrader = self.session.make_upgrader()
                results = []
                for result in upgrader.results():
                    results.append(result)
                    if len(results) >= k:
                        break
                oracle_stats.merge(upgrader.stats)
        with self._guard_stats_lock:
            self._guard_stats.merge(oracle_stats)
        return results

    # error-boundary: per-request containment — fail, never hang
    def _serve_topk_group(
        self,
        group: List[PendingQuery],
        stats: Counters,
        epoch: Epoch,
    ) -> None:
        """Serve a group of top-k requests under the group's traces.

        The group shares one progressive join run, so its detailed spans
        would be identical in every member's trace; they are recorded
        once, into the first traced member (the *primary*).  Every other
        traced member gets a retroactive ``engine.execute`` span pointing
        at the primary's trace id, keeping queue wait and execution
        separable per request without duplicating the join's span tree.
        """
        traced = [p for p in group if p.trace is not None]
        if not traced:
            self._serve_topk_group_retrying(group, stats, epoch)
            return
        primary = traced[0]
        start = clock()
        try:
            with activate(primary.trace):
                with span(
                    "engine.execute", kind="topk", group_size=len(group)
                ):
                    self._serve_topk_group_retrying(group, stats, epoch)
        finally:
            end = clock()
            primary_id = primary.trace.trace_id
            for p in traced:
                if p is not primary and p.trace is not None:
                    p.trace.record(
                        "engine.execute",
                        start,
                        end,
                        kind="topk",
                        group_size=len(group),
                        shared_with_trace=primary_id,
                    )
                self._finish_trace(p)

    # error-boundary: per-request containment — fail, never hang
    def _serve_topk_group_retrying(
        self,
        group: List[PendingQuery],
        stats: Counters,
        epoch: Epoch,
    ) -> None:
        """Serve a group of top-k requests, retrying transient failures.

        Requests already resolved before a retry (deadline partials,
        early-k completions) stay resolved; only the unresolved remainder
        re-executes.
        """
        attempt = 1
        while any(not p.done() for p in group):
            pendings = [p for p in group if not p.done()]
            try:
                self._serve_topk_group_once(pendings, stats, epoch)
                return
            except TransientError as exc:
                if not self._retry_or_fail(pendings, exc, attempt, "topk"):
                    return
                attempt += 1
            except Exception as exc:
                for pending in pendings:
                    if not pending.done():
                        self._metrics.record_request(
                            "topk", 0.0, 0.0, partial=False, error=True
                        )
                        pending._fail(exc)
                return

    def _serve_topk_group_once(
        self,
        group: List[PendingQuery],
        stats: Counters,
        epoch: Epoch,
    ) -> None:
        """One progressive join run serves every top-k request in ``group``."""
        k_max = max(p.query.k for p in group)
        cached = self._cached_topk(k_max)
        if cached is not None:
            prefix, _exhausted = cached
            for pending in group:
                self._respond(
                    pending,
                    prefix[: pending.query.k],
                    partial=False,
                    cache_hit=True,
                    epoch=epoch,
                    kind="topk",
                )
            return
        planned = self._current_plan(epoch)
        if kernels_enabled() and self.kernel_guard.should_check():
            self._serve_topk_group_guarded(group, stats, epoch, k_max, planned)
            return
        if planned is not None and planned.plan.method != "join":
            self._serve_topk_group_probing(group, stats, epoch, planned)
            return

        watch = Stopwatch()
        upgrader = self._make_plan_upgrader(planned)
        gen = upgrader.results()
        results: List[UpgradeResult] = []
        active = list(group)
        exhausted = False
        while active:
            now = time.monotonic()
            alive: List[PendingQuery] = []
            for pending in active:
                if (
                    pending.abs_deadline is not None
                    and now >= pending.abs_deadline
                ):
                    self._respond(
                        pending,
                        results[: pending.query.k],
                        partial=True,
                        cache_hit=False,
                        epoch=epoch,
                        kind="topk",
                    )
                else:
                    alive.append(pending)
            active = alive
            if not active:
                break
            if len(results) >= max(p.query.k for p in active):
                break
            try:
                results.append(next(gen))
            except StopIteration:
                exhausted = True
                break
            still_waiting: List[PendingQuery] = []
            for pending in active:
                if len(results) >= pending.query.k:
                    self._respond(
                        pending,
                        results[: pending.query.k],
                        partial=False,
                        cache_hit=False,
                        epoch=epoch,
                        kind="topk",
                    )
                else:
                    still_waiting.append(pending)
            active = still_waiting
        for pending in active:
            # Stream drained (or a deeper request already pulled enough):
            # everyone left gets a complete answer.
            self._respond(
                pending,
                results[: pending.query.k],
                partial=False,
                cache_hit=False,
                epoch=epoch,
                kind="topk",
            )
        stats.merge(upgrader.stats)
        if planned is not None:
            self.planner.observe(planned, watch.split(), upgrader.stats)
        if results or exhausted:
            # Any progressive prefix is the exact top-|results| — even a
            # deadline-truncated run warms the cache.
            self._store_topk(results, exhausted, epoch)

    def _serve_topk_group_probing(
        self,
        group: List[PendingQuery],
        stats: Counters,
        epoch: Epoch,
        planned: PlannedQuery,
    ) -> None:
        """Serve a top-k group with the planner-chosen probing plan.

        Probing is not progressive, so deadline degradation is
        all-or-nothing: requests whose deadline already expired get an
        empty partial prefix up front (trivially an exact prefix of the
        ranking); the survivors share one full run to the group's k.
        """
        now = time.monotonic()
        active: List[PendingQuery] = []
        for pending in group:
            if (
                pending.abs_deadline is not None
                and now >= pending.abs_deadline
            ):
                self._respond(
                    pending, [], partial=True, cache_hit=False,
                    epoch=epoch, kind="topk",
                )
            else:
                active.append(pending)
        if not active:
            return
        k_max = max(p.query.k for p in active)
        results, exhausted, elapsed_s = self._probing_topk(k_max, stats)
        self.planner.observe(planned, elapsed_s)
        for pending in active:
            self._respond(
                pending,
                results[: pending.query.k],
                partial=False,
                cache_hit=False,
                epoch=epoch,
                kind="topk",
            )
        self._store_topk(results, exhausted, epoch)

    def _serve_topk_group_guarded(
        self,
        group: List[PendingQuery],
        stats: Counters,
        epoch: Epoch,
        k_max: int,
        planned: Optional[PlannedQuery] = None,
    ) -> None:
        """A sampled top-k run: kernel answer cross-checked before anyone
        sees it.

        Unlike the progressive path, both runs complete before responses
        go out (a divergent prefix must never be partially delivered);
        deadline-expired requests still get a partial prefix — of the
        *validated* results.  The scalar oracle reruns the *same*
        physical plan, so a disagreement always indicts the kernels, not
        the planner.
        """
        method = planned.plan.method if planned is not None else "join"
        watch = Stopwatch()
        if method != "join":
            results, _exhausted, _ = self._probing_topk(k_max, stats)
        else:
            upgrader = self._make_plan_upgrader(planned)
            results = []
            for result in upgrader.results():
                results.append(result)
                if len(results) >= k_max:
                    break
            stats.merge(upgrader.stats)
        if planned is not None:
            self.planner.observe(planned, watch.split())
        oracle = self._oracle_topk(k_max, method)
        guard = self.kernel_guard
        agree = len(results) == len(oracle) and all(
            served.record_id == truth.record_id
            and guard.costs_match(served.cost, truth.cost)
            for served, truth in zip(results, oracle)
        )
        if not agree:
            if guard.record_divergence(
                divergence(
                    "topk",
                    [(r.record_id, r.cost) for r in results],
                    [(r.record_id, r.cost) for r in oracle],
                )
            ):
                self._metrics.record_quarantine()
            results = oracle
        # The guarded run drives the stream to k_max regardless of
        # deadlines (a divergent prefix must never be half-delivered), so
        # every request gets its complete validated prefix.
        exhausted = len(results) < k_max
        for pending in group:
            self._respond(
                pending,
                results[: pending.query.k],
                partial=False,
                cache_hit=False,
                epoch=epoch,
                kind="topk",
            )
        self._store_topk(results, exhausted, epoch)

    def _respond(
        self,
        pending: PendingQuery,
        results: List[UpgradeResult],
        partial: bool,
        cache_hit: bool,
        epoch: Epoch,
        kind: str,
    ) -> None:
        now = time.monotonic()
        response = QueryResponse(
            results=list(results),
            partial=partial,
            cache_hit=cache_hit,
            epoch=epoch,
            queue_wait_s=pending.queue_wait_s,
            elapsed_s=now - pending.enqueued_at,
        )
        self._metrics.record_request(
            kind,
            response.elapsed_s,
            response.queue_wait_s,
            partial=partial,
        )
        if pending.trace is not None:
            pending.trace.attrs.update(
                cache_hit=cache_hit,
                partial=partial,
                results=len(results),
                queue_wait_s=round(response.queue_wait_s, 6),
                elapsed_s=round(response.elapsed_s, 6),
            )
        pending._resolve(response)

    # -- observability ---------------------------------------------------------

    def _finish_trace(self, pending: PendingQuery) -> None:
        """Close a request's root span and hand the trace to the tracer.

        Idempotent (the trace is detached from the pending on the first
        call): the normal resolve path and the crash backstop can both
        reach it.  Kept traces land in :attr:`trace_store`.
        """
        trace = pending.trace
        if trace is None:
            return
        pending.trace = None
        if pending._exception is not None:
            trace.attrs.setdefault(
                "error", type(pending._exception).__name__
            )
        trace.spans[0].close()
        keep, _ = self.tracer.finish(trace)
        if keep:
            self.trace_store.add(trace)

    def recent_traces(self, n: Optional[int] = None) -> List[Trace]:
        """The kept traces, oldest first (the last ``n`` when given).

        Use ``engine.trace_store.slowest(n)`` for the latency outliers —
        the ``skyup trace`` CLI prints those.
        """
        traces = self.trace_store.snapshot()
        if n is not None:
            traces = traces[-n:]
        return traces

    def _calling_thread_counters(self) -> Counters:
        ident = threading.get_ident()
        with self._extern_lock:
            counters = self._extern_counters.get(ident)
            if counters is None:
                counters = Counters()
                self._extern_counters[ident] = counters
            return counters

    def guard_counters(self) -> Counters:
        """Work performed by the kernel guard's oracle recomputes.

        Kept apart from :meth:`counters` so request-work accounting still
        matches a serial (unguarded) run exactly.
        """
        total = Counters()
        with self._guard_stats_lock:
            total.merge(self._guard_stats)
        return total

    def counters(self) -> Counters:
        """Merged work counters across every worker and sync caller.

        Per-worker instances are merged into a fresh object — the
        originals keep accumulating race-free on their owning threads.
        Guard-recompute work is excluded (see :meth:`guard_counters`).
        """
        total = Counters()
        if self._pool is not None:
            for c in self._pool.worker_counters:
                total.merge(c)
        with self._extern_lock:
            for c in self._extern_counters.values():
                total.merge(c)
        return total

    def metrics(self) -> Dict[str, object]:
        """One JSON-serializable snapshot of engine health."""
        injector = active_injector()
        return self._metrics.snapshot(
            counters=self.counters(),
            extra={
                "epoch": list(self.session.epoch),
                "config": self.config.describe(),
                "tracing": {
                    **self.tracer.stats(),
                    "store": self.trace_store.stats(),
                },
                "queue_depth": (
                    self._pool.queue_depth if self._pool is not None else 0
                ),
                "reliability": {
                    "kernel_guard": self.kernel_guard.stats(),
                    "guard_work": self.guard_counters().as_dict(),
                    "index_guard": self.index_guard.stats(),
                    "pool_crashes": (
                        self._pool.crash_count
                        if self._pool is not None
                        else 0
                    ),
                    "fault_injection": (
                        injector.stats() if injector is not None else None
                    ),
                },
                "planner": (
                    self.planner.stats()
                    if self.config.method != "join"
                    else None
                ),
                "cache_enabled": self.cache_enabled,
                "skyline_cache": {
                    **self.skyline_cache.stats.as_dict(),
                    "hit_rate": self.skyline_cache.stats.hit_rate,
                    "size": len(self.skyline_cache),
                    "capacity": self.skyline_cache.max_entries,
                },
                "topk_cache": {
                    **self.topk_cache.stats.as_dict(),
                    "hit_rate": self.topk_cache.stats.hit_rate,
                    "prefix_length": self.topk_cache.prefix_length,
                },
            },
        )

    def __repr__(self) -> str:
        workers = (
            len(self._pool.worker_counters) if self._pool is not None else 0
        )
        return (
            f"UpgradeEngine(session={self.session!r}, workers={workers}, "
            f"cache={'on' if self.cache_enabled else 'off'})"
        )
