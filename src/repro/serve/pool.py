"""Bounded worker pool and locking primitives for the serving engine.

**The thread tier and the shard tier.**  Scaling concerns split in two,
and this pool is deliberately only half the answer:

* **Request concurrency** (this module) is a *threads* problem.  The
  engine's shared state — two live R-trees, the skyline cache, the
  top-k prefix — is mutable and pointer-rich; threads share it for
  free.  The hot loops are pure Python and hold the GIL (only the
  numpy-vectorized stretches release it), so the pool buys little CPU
  parallelism — what it buys is what a serving layer needs regardless:
  admission decoupled from execution, bounded queueing with explicit
  backpressure, deadline-scoped execution, and batch formation
  (concurrent requests drained together and run as one amortized join).
* **Kernel parallelism** is a *processes* problem, and it lives in
  :mod:`repro.shard`, not here.  The
  :class:`~repro.shard.engine.ShardedUpgradeEngine` hash-partitions the
  competitor catalog into shards whose columnar blocks sit in POSIX
  shared memory, spawns workers that rebuild per-shard R-trees
  zero-copy, and scatter-gathers queries under a threshold merge that
  reproduces this tier's answers bit for bit.  The serialization cost
  that once made "swap in a process pool" unattractive is paid once at
  publish time per mutated shard — not per request.

The two tiers compose rather than compete: ``EngineConfig(workers=N)``
puts this pool in front of either engine, and
``EngineConfig(processes=S)`` selects the sharded execution underneath.

The :class:`ReadWriteLock` lets any number of query workers traverse the
trees concurrently while catalog mutations get exclusive access; it is
writer-preferring so a stream of queries cannot starve updates.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Deque, Iterator, List, Optional, Sequence

from repro.exceptions import EngineClosedError, EngineOverloadedError
from repro.instrumentation import Counters


class ReadWriteLock:
    """A writer-preferring readers-writer lock.

    Multiple readers may hold the lock simultaneously; a writer waits for
    active readers to drain and blocks new readers while waiting (so
    updates are never starved).  Not reentrant, no upgrade support.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0  # guarded-by: _cond
        self._writer_active = False  # guarded-by: _cond
        self._writers_waiting = 0  # guarded-by: _cond

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Hold shared (read) access for the duration of the block."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Hold exclusive (write) access for the duration of the block."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class WorkerPool:
    """A fixed set of daemon threads draining a bounded request queue.

    Items are handed to ``handler`` in *batches*: a woken worker drains up
    to ``batch_max`` queued items in arrival order, so requests that pile
    up behind a slow query are executed together — the engine's batch
    executor then amortizes one R-tree traversal across them.

    Each worker owns a private :class:`Counters` instance (passed to every
    ``handler`` call); aggregation merges the per-worker instances instead
    of sharing one, keeping increments race-free.

    **Supervision.**  A raising ``handler`` cannot kill its worker: the
    exception is contained, counted (:attr:`crash_count`), and reported to
    ``on_batch_error`` (which should fail the batch's requests with a
    typed error so their callers see a terminal response).  The pool's
    capacity therefore never degrades — one bad batch used to silently
    shrink the pool forever.

    Args:
        handler: ``handler(batch, worker_counters)`` — request-level
            errors belong in the request's response; an escaped exception
            is contained by supervision (see above), not a worker death.
        workers: thread count.
        queue_capacity: admission bound; :meth:`submit_many` raises
            :class:`~repro.exceptions.EngineOverloadedError` beyond it.
        batch_max: largest batch handed to a single ``handler`` call.
        on_batch_error: ``on_batch_error(batch, exc)`` called after a
            contained handler crash; its own exceptions are swallowed.
    """

    def __init__(
        self,
        handler: Callable[[List[object], Counters], None],
        workers: int = 4,
        queue_capacity: int = 1024,
        batch_max: int = 64,
        on_batch_error: Optional[
            Callable[[List[object], BaseException], None]
        ] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        self._handler = handler
        self._on_batch_error = on_batch_error
        self._capacity = queue_capacity
        self._batch_max = batch_max
        self._queue: Deque[object] = deque()  # guarded-by: _cond
        self._cond = threading.Condition()
        self._closed = False  # guarded-by: _cond
        self._crashes = 0  # guarded-by: _cond
        self.stuck_workers: List[str] = []
        self.worker_counters: List[Counters] = [
            Counters() for _ in range(workers)
        ]
        self._threads = [
            threading.Thread(
                target=self._run,
                args=(self.worker_counters[i],),
                name=f"skyup-serve-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    @property
    def queue_depth(self) -> int:
        """Number of requests admitted but not yet picked up."""
        with self._cond:
            return len(self._queue)

    @property
    def crash_count(self) -> int:
        """Handler exceptions contained by supervision so far."""
        with self._cond:
            return self._crashes

    @property
    def alive_workers(self) -> int:
        """Worker threads currently running (the full count unless a
        worker is wedged in a non-returning handler after close)."""
        return sum(1 for t in self._threads if t.is_alive())

    def submit_many(self, items: Sequence[object]) -> None:
        """Enqueue ``items`` atomically (all admitted or none).

        Raises:
            EngineClosedError: the pool has been closed.
            EngineOverloadedError: admission would exceed capacity.
        """
        with self._cond:
            if self._closed:
                raise EngineClosedError("worker pool is closed")
            if len(self._queue) + len(items) > self._capacity:
                raise EngineOverloadedError(
                    f"queue full: {len(self._queue)} queued, "
                    f"{len(items)} offered, capacity {self._capacity}"
                )
            self._queue.extend(items)
            self._cond.notify_all()

    # error-boundary: worker supervision — contain handler crashes
    def _run(self, counters: Counters) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue and self._closed:
                    return
                batch = [
                    self._queue.popleft()
                    for _ in range(
                        min(self._batch_max, len(self._queue))
                    )
                ]
            # Queue-wait accounting: stamp pickup at the drain itself, so
            # the measured wait excludes none of the handler's own setup.
            # Duck-typed — the pool stays generic over item types.
            drained_at = time.monotonic()
            for item in batch:
                mark = getattr(item, "mark_picked_up", None)
                if mark is not None:
                    mark(drained_at)
            try:
                self._handler(batch, counters)
            except Exception as exc:
                # Supervision: contain the crash, keep the worker alive.
                with self._cond:
                    self._crashes += 1
                if self._on_batch_error is not None:
                    try:
                        self._on_batch_error(batch, exc)
                    except Exception:  # pragma: no cover - last resort
                        pass

    def close(self, timeout: float = 5.0) -> int:
        """Stop accepting work, drain the queue, and join the workers.

        Returns the number of workers that failed to join within
        ``timeout`` (their names are kept in :attr:`stuck_workers`); 0
        means a clean shutdown.  Idempotent — a second close re-joins any
        previously stuck workers and updates the accounting.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        deadline = time.monotonic() + timeout
        stuck: List[str] = []
        for t in self._threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
            if t.is_alive():
                stuck.append(t.name)
        self.stuck_workers = stuck
        return len(stuck)
