"""Epoch-versioned caches for the serving layer.

Two caches back :class:`~repro.serve.engine.UpgradeEngine`:

* :class:`SkylineCache` memoizes *dominator skylines* (and the upgrade
  computed from them) per query corner.  A skyline depends only on the
  competitor set and the corner, so product-side mutations never touch it.
* :class:`TopKCache` memoizes the progressive whole-catalog top-k prefix.

Both are **epoch-versioned with precise invalidation**: every entry records
the catalog epoch it was computed at, but entries are *not* discarded just
because the epoch moved — a mutation invalidates exactly the entries whose
cached region overlaps the mutated region:

* a competitor mutation at ``q`` stales the skyline cached for corner ``t``
  iff ``q`` lies in ``ADR(t)`` (``q <= t`` coordinate-wise) — only then can
  ``q`` dominate ``t`` and enter/leave its dominator skyline;
* the same mutation stales the top-k prefix iff some *product* lies in
  ``q``'s dominance region
  (:func:`repro.rtree.query.intersects_dominance_region`) — otherwise no
  product's cost changed;
* product mutations stale the top-k prefix (the ranked set itself changed)
  but never the skyline cache.

Thread safety: each cache guards its map with one lock; operations are
dict-sized, so the lock is held for microseconds.  Capacity is bounded with
LRU eviction.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.types import UpgradeResult
from repro.geometry.region import point_in_adr
from repro.obs import span

Point = Tuple[float, ...]
Epoch = Tuple[int, int]


class CacheStats:
    """Monotone counters describing a cache's behaviour."""

    __slots__ = ("hits", "misses", "puts", "invalidations", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.invalidations = 0
        self.evictions = 0

    def as_dict(self) -> Dict[str, int]:
        """All counters as a plain dict (stable key order)."""
        return {name: getattr(self, name) for name in self.__slots__}

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return f"CacheStats({self.as_dict()})"


class _SkyEntry:
    __slots__ = ("skyline", "result", "epoch")

    def __init__(
        self, skyline: List[Point], result: UpgradeResult, epoch: Epoch
    ):
        self.skyline = skyline
        self.result = result
        self.epoch = epoch


class SkylineCache:
    """LRU cache of dominator skylines + upgrades, keyed by query corner.

    Args:
        max_entries: capacity bound; least-recently-used entries are
            evicted beyond it.
    """

    def __init__(self, max_entries: int = 4096):
        self.max_entries = max_entries
        self.stats = CacheStats()  # guarded-by: _lock
        self._entries: "OrderedDict[Point, _SkyEntry]" = (
            OrderedDict()
        )  # guarded-by: _lock
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, corner: Sequence[float]) -> Optional[_SkyEntry]:
        """The live entry for ``corner``, or None (counts hit/miss)."""
        key = tuple(corner)
        with span("cache.skyline_get") as sp:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                else:
                    self.stats.misses += 1
            sp.set(cache_hit=entry is not None)
            return entry

    def put(
        self,
        corner: Sequence[float],
        skyline: List[Point],
        result: UpgradeResult,
        epoch: Epoch,
    ) -> None:
        """Store the skyline/upgrade computed for ``corner`` at ``epoch``."""
        key = tuple(corner)
        with span("cache.skyline_put", skyline_size=len(skyline)):
            with self._lock:
                self._entries[key] = _SkyEntry(skyline, result, epoch)
                self._entries.move_to_end(key)
                self.stats.puts += 1
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1

    def invalidate_point(self, point: Sequence[float]) -> int:
        """Drop entries whose ADR contains ``point``; returns the count.

        This is the per-corner precise rule: the mutation can only have
        changed skylines whose query corner is weakly dominated by it.
        """
        p = tuple(point)
        with span("cache.skyline_invalidate") as sp:
            with self._lock:
                stale = [
                    key for key in self._entries if point_in_adr(p, key)
                ]
                for key in stale:
                    del self._entries[key]
                self.stats.invalidations += len(stale)
            sp.set(invalidated=len(stale))
            return len(stale)

    def invalidate_region(
        self, low: Sequence[float], high: Sequence[float]
    ) -> int:
        """Drop entries whose ADR overlaps ``[low, high]``; returns count.

        An ADR with corner ``t`` overlaps the box iff ``low <= t``
        coordinate-wise — the box's lower corner is the only part that can
        reach into the unbounded-below region.
        """
        lo = tuple(low)
        with self._lock:
            stale = [
                key for key in self._entries if point_in_adr(lo, key)
            ]
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> int:
        """Drop everything; returns the number of entries dropped."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += n
            return n


class TopKCache:
    """The progressive whole-catalog top-k prefix, precisely invalidated.

    Holds at most one prefix (the catalog has one answer per epoch); a
    ``get(k)`` hits when the stored prefix is still valid and either covers
    ``k`` results or the stream was exhausted below ``k``.
    """

    def __init__(self) -> None:
        self.stats = CacheStats()  # guarded-by: _lock
        self._prefix: List[UpgradeResult] = []  # guarded-by: _lock
        self._exhausted = False  # guarded-by: _lock
        self._valid = False  # guarded-by: _lock
        self._epoch: Optional[Epoch] = None  # guarded-by: _lock
        self._lock = threading.Lock()

    @property
    def prefix_length(self) -> int:
        """Number of cached results (0 when invalid)."""
        with self._lock:
            return len(self._prefix) if self._valid else 0

    def get(self, k: int) -> Optional[Tuple[List[UpgradeResult], bool]]:
        """``(results, exhausted)`` for a hit, else None.

        ``results`` has ``min(k, |catalog|)`` entries; ``exhausted`` tells
        the caller whether the underlying stream had drained.
        """
        with span("cache.topk_get", k=k) as sp:
            with self._lock:
                if self._valid and (
                    len(self._prefix) >= k or self._exhausted
                ):
                    self.stats.hits += 1
                    sp.set(cache_hit=True)
                    return self._prefix[:k], self._exhausted
                self.stats.misses += 1
            sp.set(cache_hit=False)
            return None

    def put(
        self,
        results: List[UpgradeResult],
        exhausted: bool,
        epoch: Epoch,
    ) -> None:
        """Store a complete (un-truncated) prefix computed at ``epoch``.

        A shorter prefix never overwrites a longer still-valid one: a
        stored prefix is only ever valid because no overlapping mutation
        occurred, in which case it is correct at the current epoch too.
        """
        with span("cache.topk_put", prefix_length=len(results)):
            with self._lock:
                if self._valid and len(self._prefix) >= len(results):
                    return
                self._prefix = list(results)
                self._exhausted = exhausted
                self._valid = True
                self._epoch = epoch
                self.stats.puts += 1

    def invalidate(self) -> None:
        """Drop the cached prefix (product mutation / overlapping region)."""
        with self._lock:
            if self._valid:
                self._valid = False
                self._prefix = []
                self._exhausted = False
                self.stats.invalidations += 1
