"""The serving subsystem: concurrent, cached top-k upgrade queries.

The paper's algorithms answer one query at a time from cold indexes; this
package wraps a :class:`~repro.core.session.MarketSession` into a
production-shaped query engine (the ROADMAP's "serve heavy traffic"
direction):

* :mod:`repro.serve.engine` — :class:`UpgradeEngine`: batch execution,
  deadlines with partial results, synchronous and pooled submission;
* :mod:`repro.serve.config` — :class:`EngineConfig`, the consolidated,
  validated engine configuration (tracing knobs included);
* :mod:`repro.serve.cache` — epoch-versioned skyline / top-k caches with
  precise region-overlap invalidation;
* :mod:`repro.serve.pool` — the bounded thread worker pool and the
  readers-writer lock (and the GIL tradeoff discussion);
* :mod:`repro.serve.metrics` — rolling latency percentiles and merged
  per-worker work counters;
* :mod:`repro.serve.bench` — the cached-vs-cold throughput benchmark
  behind ``skyup serve-bench``.
"""

from repro.serve.cache import CacheStats, SkylineCache, TopKCache
from repro.serve.config import EngineConfig
from repro.serve.engine import (
    PendingQuery,
    ProductQuery,
    Query,
    QueryResponse,
    TopKQuery,
    UpgradeEngine,
)
from repro.serve.metrics import EngineMetrics, RollingWindow
from repro.serve.pool import ReadWriteLock, WorkerPool

__all__ = [
    "CacheStats",
    "EngineConfig",
    "EngineMetrics",
    "PendingQuery",
    "ProductQuery",
    "Query",
    "QueryResponse",
    "ReadWriteLock",
    "RollingWindow",
    "SkylineCache",
    "TopKCache",
    "TopKQuery",
    "UpgradeEngine",
    "WorkerPool",
]
