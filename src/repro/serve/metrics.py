"""Engine metrics: per-request records and rolling aggregates.

Built on :class:`repro.instrumentation.Counters` — the same scale-free work
counters every algorithm reports — plus the serving-specific signals a
production dashboard needs: queue wait, end-to-end latency percentiles,
cache behaviour, partial-result counts.

Latencies are kept in a bounded rolling window (recent behaviour is what a
serving dashboard wants; unbounded histories are a memory leak), so p50/p95
are over the last ``window`` requests.  Percentiles use the nearest-rank
method on a sorted copy — the window is small, so the sort is cheap
relative to a query.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.instrumentation import Counters


class RollingWindow:
    """A bounded window of float samples with percentile snapshots."""

    __slots__ = ("_values", "count", "total")

    def __init__(self, window: int = 2048):
        self._values: Deque[float] = deque(maxlen=window)
        self.count = 0
        self.total = 0.0

    def add(self, value: float) -> None:
        """Record one sample (window-evicted, but count/total are global)."""
        self._values.append(value)
        self.count += 1
        self.total += value

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the current window (0 if empty)."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, float]:
        """p50/p95/max over the window plus lifetime count and mean."""
        window: List[float] = list(self._values)
        return {
            "count": float(self.count),
            "mean": (self.total / self.count) if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "max": max(window) if window else 0.0,
        }


class EngineMetrics:
    """Aggregate serving metrics, safe to update from many threads."""

    def __init__(self, window: int = 2048):
        self._lock = threading.Lock()
        self.requests = 0  # guarded-by: _lock
        self.batches = 0  # guarded-by: _lock
        self.topk_queries = 0  # guarded-by: _lock
        self.product_queries = 0  # guarded-by: _lock
        self.partials = 0  # guarded-by: _lock
        self.errors = 0  # guarded-by: _lock
        self.rejected = 0  # guarded-by: _lock
        self.retries = 0  # guarded-by: _lock
        self.worker_crashes = 0  # guarded-by: _lock
        self.cache_faults = 0  # guarded-by: _lock
        self.quarantines = 0  # guarded-by: _lock
        self.degraded = 0  # guarded-by: _lock
        self.latency = RollingWindow(window)  # guarded-by: _lock
        self.queue_wait = RollingWindow(window)  # guarded-by: _lock
        self.coverage = RollingWindow(window)  # guarded-by: _lock

    def record_batch(self, size: int) -> None:
        """Count one executed batch of ``size`` requests."""
        with self._lock:
            self.batches += 1

    def record_rejection(self) -> None:
        """Count one request refused at admission (queue full / closed)."""
        with self._lock:
            self.rejected += 1

    def record_retry(self) -> None:
        """Count one transient-failure retry of a request execution."""
        with self._lock:
            self.retries += 1

    def record_worker_crash(self) -> None:
        """Count one contained batch-execution crash."""
        with self._lock:
            self.worker_crashes += 1

    def record_cache_fault(self) -> None:
        """Count one cache lookup/store that degraded to a recompute."""
        with self._lock:
            self.cache_faults += 1

    def record_quarantine(self) -> None:
        """Count one kernel quarantine (divergence detected)."""
        with self._lock:
            self.quarantines += 1

    def record_request(
        self,
        kind: str,
        latency_s: float,
        queue_wait_s: float,
        partial: bool,
        error: bool = False,
        coverage: float = 1.0,
    ) -> None:
        """Record one completed request.

        ``coverage`` is the fraction of catalog shards that contributed
        (always 1.0 outside the sharded tier); a response below 1.0 also
        counts as *degraded*.
        """
        with self._lock:
            self.requests += 1
            if kind == "topk":
                self.topk_queries += 1
            else:
                self.product_queries += 1
            if partial:
                self.partials += 1
            if error:
                self.errors += 1
            if coverage < 1.0:
                self.degraded += 1
            self.latency.add(latency_s)
            self.queue_wait.add(queue_wait_s)
            if not error:
                self.coverage.add(coverage)

    def snapshot(
        self,
        counters: Optional[Counters] = None,
        extra: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """One coherent dict of everything (JSON-serializable)."""
        with self._lock:
            out: Dict[str, object] = {
                "requests": self.requests,
                "batches": self.batches,
                "topk_queries": self.topk_queries,
                "product_queries": self.product_queries,
                "partials": self.partials,
                "degraded": self.degraded,
                "errors": self.errors,
                "rejected": self.rejected,
                "retries": self.retries,
                "worker_crashes": self.worker_crashes,
                "cache_faults": self.cache_faults,
                "quarantines": self.quarantines,
                "latency_s": self.latency.snapshot(),
                "queue_wait_s": self.queue_wait.snapshot(),
                # Low tail matters for coverage, not the high one: p05
                # answers "how much of the market do the worst-served
                # requests see".
                "coverage": {
                    "count": float(self.coverage.count),
                    "mean": (
                        self.coverage.total / self.coverage.count
                        if self.coverage.count
                        else 1.0
                    ),
                    "p50": (
                        self.coverage.percentile(0.50)
                        if self.coverage.count
                        else 1.0
                    ),
                    "p05": (
                        self.coverage.percentile(0.05)
                        if self.coverage.count
                        else 1.0
                    ),
                },
            }
        if counters is not None:
            out["counters"] = counters.as_dict()
            out["timings_s"] = counters.timings_dict()
        if extra:
            out.update(extra)
        return out
