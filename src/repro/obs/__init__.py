"""Structured request tracing and phase profiling.

This package is the serving stack's observability substrate (and the
measurement substrate later performance PRs report against): per-request
traces of nested spans covering every layer a query touches — admission,
queue wait, cache lookups, the progressive join's heap work, dominator
skyline traversals with their R-tree node-access counts, Algorithm 1
invocations, and guard recomputes.

* :mod:`repro.obs.tracer` — :class:`Span` / :class:`Trace` /
  :class:`Tracer`, the thread-hop :func:`activate` context, and the
  allocation-free module-level :func:`span` fast path;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (load it in
  ``chrome://tracing`` or Perfetto) and the plain-text span tree;
* :mod:`repro.obs.store` — the engine's bounded ring buffer of kept
  traces (``engine.recent_traces()``, ``skyup trace``).

The package deliberately imports nothing from the rest of the library so
every layer (core, rtree, skyline, kernels, serve) can instrument itself
without cycles.
"""

from repro.obs.export import format_text, to_chrome_events, to_chrome_json
from repro.obs.store import TraceStore
from repro.obs.tracer import (
    NOOP_SPAN,
    Span,
    Trace,
    Tracer,
    activate,
    clock,
    current_trace,
    span,
)

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Trace",
    "TraceStore",
    "Tracer",
    "activate",
    "clock",
    "current_trace",
    "format_text",
    "span",
    "to_chrome_events",
    "to_chrome_json",
]
