"""A bounded ring buffer of kept traces.

The serving engine owns one :class:`TraceStore`; every request trace the
:class:`~repro.obs.tracer.Tracer` decides to keep is added here, and the
oldest traces are evicted once the buffer is full (recent behaviour is
what a live investigation wants — the same argument as the metrics
layer's rolling latency window).  ``engine.recent_traces()`` and the
``skyup trace`` CLI read from it.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List

from repro.obs.tracer import Trace

__all__ = ["TraceStore"]


class TraceStore:
    """Thread-safe bounded buffer of finished traces."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._traces: Deque[Trace] = deque(
            maxlen=capacity
        )  # guarded-by: _lock
        self._lock = threading.Lock()
        self.added = 0  # guarded-by: _lock

    def add(self, trace: Trace) -> None:
        """Keep one finished trace (evicting the oldest at capacity)."""
        with self._lock:
            self._traces.append(trace)
            self.added += 1

    def snapshot(self) -> List[Trace]:
        """The retained traces, oldest first."""
        with self._lock:
            return list(self._traces)

    def slowest(self, n: int = 5) -> List[Trace]:
        """The ``n`` retained traces with the longest durations."""
        with self._lock:
            retained = list(self._traces)
        retained.sort(key=lambda t: t.duration_s, reverse=True)
        return retained[:n]

    def clear(self) -> int:
        """Drop every retained trace; returns how many were dropped."""
        with self._lock:
            n = len(self._traces)
            self._traces.clear()
            return n

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def stats(self) -> Dict[str, int]:
        """JSON-ready counters for the metrics snapshot."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "retained": len(self._traces),
                "added": self.added,
            }
