"""Trace exporters: Chrome ``trace_event`` JSON and a plain-text tree.

:func:`to_chrome_json` renders traces in the Trace Event Format consumed
by ``chrome://tracing`` and https://ui.perfetto.dev — drop the file onto
either UI to get a zoomable flame view of one serving run.  Each trace
becomes one ``tid`` under a shared ``pid`` so concurrent requests stack
as separate rows; spans are complete ("ph": "X") events with microsecond
timestamps relative to the earliest span in the batch, and span
attributes ride along in ``args``.

:func:`format_text` renders an indented span tree for terminals and
docstrings — the README's Observability section shows one.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.tracer import Span, Trace

__all__ = ["to_chrome_events", "to_chrome_json", "format_text"]


def to_chrome_events(
    traces: Sequence[Trace], pid: int = 1
) -> List[Dict[str, object]]:
    """The ``traceEvents`` list for ``traces`` (one ``tid`` per trace).

    Timestamps are microseconds relative to the earliest span across all
    the traces, so a batch of requests lines up on one shared timeline
    (queue waits visibly overlap the request that delayed them).
    """
    base = min(
        (t.t0 for t in traces if len(t) > 0), default=0.0
    )
    events: List[Dict[str, object]] = []
    for tid, trace in enumerate(traces, start=1):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {
                    "name": (
                        f"{trace.name} #{trace.trace_id} "
                        f"({trace.duration_s * 1e3:.2f}ms)"
                    )
                },
            }
        )
        for sp in trace.spans:
            args: Dict[str, object] = dict(sp.attrs)
            if sp.parent == -1 and trace.attrs:
                args.update({f"trace.{k}": v for k, v in trace.attrs.items()})
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "name": sp.name,
                    "cat": sp.layer,
                    "ts": (sp.t0 - base) * 1e6,
                    "dur": max(0.0, sp.t1 - sp.t0) * 1e6,
                    "args": args,
                }
            )
    return events


def to_chrome_json(
    traces: Sequence[Trace], indent: Optional[int] = None
) -> str:
    """Serialize ``traces`` as a Trace Event Format JSON document."""
    return json.dumps(
        {
            "traceEvents": to_chrome_events(traces),
            "displayTimeUnit": "ms",
        },
        indent=indent,
        sort_keys=True,
        default=str,
    )


def _format_attrs(attrs: Dict[str, object]) -> str:
    if not attrs:
        return ""
    body = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return f"  [{body}]"


def _format_span(
    trace: Trace, sp: Span, depth: int, lines: List[str]
) -> None:
    lines.append(
        f"{'  ' * depth}{sp.name:<{max(1, 40 - 2 * depth)}s}"
        f"{sp.duration_s * 1e3:9.3f}ms{_format_attrs(sp.attrs)}"
    )
    for child in trace.children(sp.index):
        _format_span(trace, child, depth + 1, lines)


def format_text(traces: Iterable[Trace]) -> str:
    """An indented per-trace span tree (durations in milliseconds)."""
    lines: List[str] = []
    for trace in traces:
        header = (
            f"trace #{trace.trace_id} {trace.name} "
            f"{trace.duration_s * 1e3:.3f}ms spans={len(trace)}"
        )
        if trace.dropped_spans:
            header += f" dropped={trace.dropped_spans}"
        if trace.attrs:
            header += _format_attrs(trace.attrs)
        lines.append(header)
        for root in trace.children(-1):
            _format_span(trace, root, 1, lines)
    return "\n".join(lines)
