"""The sampling structured tracer: per-request traces of nested spans.

A :class:`Trace` is a flat list of :class:`Span` records (name, start,
end, parent index, free-form attributes) plus a per-trace stack of open
spans.  Code anywhere in the library opens spans through the
module-level :func:`span` function::

    from repro.obs import span

    with span("dominators.skyline") as sp:
        result = traverse(...)
        sp.set(skyline_size=len(result), kernel_or_scalar="kernel")

The fast path mirrors :mod:`repro.kernels.switch`: when no trace is
active on the calling thread, :func:`span` returns one shared
:data:`NOOP_SPAN` instance — a thread-local read and an attribute load,
no allocation, no timestamps.  Instrumented hot paths therefore cost a
function call when tracing is off (the recorded overhead bound lives in
``benchmarks/results/BENCH_obs.json``).

**Sampling.**  The :class:`Tracer` draws one seeded sampling decision
per request (``sample_rate``).  With ``slow_threshold_s`` set, *every*
request is recorded and the keep/drop decision is deferred to
:meth:`Tracer.finish`: traces slower than the threshold are always kept
(tail-based sampling — the p95 outliers are exactly the traces worth
explaining), sampled ones are kept, everything else is discarded.

**Thread hop.**  A trace is created where the request is admitted, rides
on the request object across the queue, and is re-activated on the
worker thread with :func:`activate` — spans opened on both sides nest
under the same root.  A trace must only ever be active on one thread at
a time (true by construction for the serving engine: one worker owns a
request's execution).

Spans are capped per trace (``max_spans``); once the cap is hit, further
spans still time correctly for their parents but are not recorded, and
``trace.dropped_spans`` counts them — a runaway loop cannot turn one
trace into a memory leak.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Trace",
    "Tracer",
    "activate",
    "clock",
    "current_trace",
    "span",
]

_LOCAL = threading.local()

#: The span clock.  Retroactive spans (:meth:`Trace.record`) must be
#: stamped on the same clock as live spans, so callers building their own
#: timestamps read it from here — this alias is the sanctioned way to do
#: that in the serve/core layers, where the SKY601 lint rule keeps raw
#: ``time.perf_counter()`` calls out of the hot paths.
clock = time.perf_counter


class Span:
    """One recorded operation: a name, a time range, a parent, attributes.

    Attributes:
        name: dotted operation name; the first segment is the *layer*
            (``engine.execute`` → layer ``engine``).
        t0: ``perf_counter`` start time.
        t1: ``perf_counter`` end time (0.0 while still open).
        parent: index of the parent span in the owning trace's span list,
            or -1 for the root.
        index: this span's own index in that list.
        attrs: free-form attributes (``cache_hit``, ``jl_len``,
            ``node_accesses``, ``kernel_or_scalar``, ...).
    """

    __slots__ = ("name", "t0", "t1", "parent", "index", "attrs", "_trace")

    def __init__(
        self, trace: "Trace", name: str, parent: int, index: int
    ):
        self._trace = trace
        self.name = name
        self.parent = parent
        self.index = index
        self.t0 = 0.0
        self.t1 = 0.0
        self.attrs: Dict[str, object] = {}

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return max(0.0, self.t1 - self.t0)

    @property
    def layer(self) -> str:
        """First dotted segment of the name (``join.refine`` → ``join``)."""
        return self.name.split(".", 1)[0]

    def set(self, **attrs: object) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.t1 = time.perf_counter()
        self._trace._pop(self)

    def close(self) -> None:
        """End the span explicitly (equivalent to leaving its ``with``).

        The serving engine uses this for the root request span, whose
        extent (admission to resolution) does not fit one lexical block.
        """
        self.__exit__(None, None, None)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, "
            f"attrs={self.attrs})"
        )


class _NoopSpan:
    """The shared do-nothing span returned when tracing is off.

    Supports the full :class:`Span` surface so instrumented code never
    branches on whether tracing is active.
    """

    __slots__ = ()

    t0 = 0.0
    t1 = 0.0
    duration_s = 0.0

    def set(self, **attrs: object) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def close(self) -> None:
        return None

    def __repr__(self) -> str:
        return "NOOP_SPAN"


#: The single module-wide no-op span (allocation-free off path).
NOOP_SPAN = _NoopSpan()


class Trace:
    """All spans recorded for one request, in creation order.

    Build spans through :meth:`span` (or the module-level :func:`span`
    while the trace is active); finished traces are rendered by
    :mod:`repro.obs.export` and kept in a
    :class:`~repro.obs.store.TraceStore`.
    """

    __slots__ = (
        "name",
        "trace_id",
        "spans",
        "attrs",
        "sampled",
        "dropped_spans",
        "max_spans",
        "_stack",
    )

    def __init__(
        self,
        name: str,
        trace_id: int = 0,
        sampled: bool = True,
        max_spans: int = 20_000,
    ):
        self.name = name
        self.trace_id = trace_id
        self.sampled = sampled
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.attrs: Dict[str, object] = {}
        self.dropped_spans = 0
        self._stack: List[int] = []

    # -- recording -------------------------------------------------------------

    def span(self, name: str, **attrs: object):
        """Open a child span under the innermost open span."""
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return NOOP_SPAN
        parent = self._stack[-1] if self._stack else -1
        sp = Span(self, name, parent, len(self.spans))
        if attrs:
            sp.attrs.update(attrs)
        self.spans.append(sp)
        self._stack.append(sp.index)
        return sp

    def record(
        self, name: str, t0: float, t1: float, **attrs: object
    ) -> None:
        """Record a retroactive span from explicit timestamps.

        The serving engine uses this for queue wait: the span's extent is
        known only after the worker picked the request up.
        """
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        parent = self._stack[-1] if self._stack else -1
        sp = Span(self, name, parent, len(self.spans))
        sp.t0 = t0
        sp.t1 = t1
        if attrs:
            sp.attrs.update(attrs)
        self.spans.append(sp)

    def _pop(self, sp: Span) -> None:
        # Exits may interleave oddly under exceptions; unwind to the span.
        while self._stack:
            top = self._stack.pop()
            if top == sp.index:
                break

    # -- inspection ------------------------------------------------------------

    @property
    def t0(self) -> float:
        """Start of the earliest span (0.0 for an empty trace)."""
        return min((s.t0 for s in self.spans), default=0.0)

    @property
    def duration_s(self) -> float:
        """Extent from the earliest start to the latest end."""
        if not self.spans:
            return 0.0
        return max(s.t1 for s in self.spans) - self.t0

    def children(self, index: int) -> List[Span]:
        """Direct children of the span at ``index`` (-1 for roots)."""
        return [s for s in self.spans if s.parent == index]

    def layers(self) -> List[str]:
        """Sorted distinct layer names present in this trace."""
        return sorted({s.layer for s in self.spans})

    def find(self, name: str) -> List[Span]:
        """Every span with exactly this name."""
        return [s for s in self.spans if s.name == name]

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return (
            f"Trace({self.name!r}, id={self.trace_id}, "
            f"spans={len(self.spans)}, "
            f"{self.duration_s * 1e3:.3f}ms)"
        )


def current_trace() -> Optional[Trace]:
    """The trace active on this thread, or None."""
    return getattr(_LOCAL, "trace", None)


def span(name: str, **attrs: object):
    """Open a span on this thread's active trace (no-op when untraced).

    This is the one instrumentation entry point the rest of the library
    uses.  The off path returns the shared :data:`NOOP_SPAN` without
    allocating.
    """
    trace: Optional[Trace] = getattr(_LOCAL, "trace", None)
    if trace is None:
        return NOOP_SPAN
    return trace.span(name, **attrs)


@contextmanager
def activate(trace: Optional[Trace]) -> Iterator[Optional[Trace]]:
    """Make ``trace`` the active trace for this thread's block.

    ``None`` is accepted and leaves tracing off — callers can pass a
    request's (possibly absent) trace without branching.  Nests: the
    previously active trace is restored on exit.
    """
    previous: Optional[Trace] = getattr(_LOCAL, "trace", None)
    _LOCAL.trace = trace
    try:
        yield trace
    finally:
        _LOCAL.trace = previous


class Tracer:
    """Per-request sampling decisions plus trace construction.

    Args:
        sample_rate: fraction of requests traced head-on (0.0 = none,
            1.0 = all).  Draws come from a seeded PRNG so a fixed seed
            yields a deterministic keep sequence.
        slow_threshold_s: when set, *every* request is recorded and a
            trace is kept if its duration reaches the threshold, even
            when the sampling draw said no (tail-based sampling).
        seed: PRNG seed for the sampling draws.
        max_spans: per-trace span cap (see :class:`Trace`).
    """

    def __init__(
        self,
        sample_rate: float = 0.0,
        slow_threshold_s: Optional[float] = None,
        seed: int = 2012,
        max_spans: int = 20_000,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if slow_threshold_s is not None and slow_threshold_s < 0:
            raise ValueError(
                f"slow_threshold_s must be >= 0, got {slow_threshold_s}"
            )
        self.sample_rate = sample_rate
        self.slow_threshold_s = slow_threshold_s
        self.max_spans = max_spans
        self._rng = random.Random(seed)  # guarded-by: _lock
        self._lock = threading.Lock()
        self._next_id = 1  # guarded-by: _lock
        self.started = 0  # guarded-by: _lock
        self.kept = 0  # guarded-by: _lock

    @property
    def enabled(self) -> bool:
        """True iff any request could ever produce a trace."""
        return self.sample_rate > 0.0 or self.slow_threshold_s is not None

    def start(self, name: str, **attrs: object) -> Optional[Trace]:
        """Begin a trace for one request, or None when not recording.

        The off path (``sample_rate == 0`` and no slow threshold) costs
        one attribute read and no lock.
        """
        if not self.enabled:
            return None
        with self._lock:
            sampled = (
                self.sample_rate > 0.0
                and self._rng.random() < self.sample_rate
            )
            if not sampled and self.slow_threshold_s is None:
                return None
            trace_id = self._next_id
            self._next_id += 1
            self.started += 1
        trace = Trace(
            name, trace_id=trace_id, sampled=sampled,
            max_spans=self.max_spans,
        )
        if attrs:
            trace.attrs.update(attrs)
        return trace

    def finish(self, trace: Optional[Trace]) -> Tuple[bool, Optional[Trace]]:
        """Close a trace; returns ``(keep, trace)``.

        ``keep`` is True when the trace was head-sampled or its duration
        reached ``slow_threshold_s`` (the trace's ``slow`` attribute then
        records which).  Callers hand kept traces to a
        :class:`~repro.obs.store.TraceStore`.
        """
        if trace is None:
            return False, None
        slow = (
            self.slow_threshold_s is not None
            and trace.duration_s >= self.slow_threshold_s
        )
        keep = trace.sampled or slow
        if keep:
            trace.attrs["slow"] = slow
            with self._lock:
                self.kept += 1
        return keep, trace

    def stats(self) -> Dict[str, object]:
        """JSON-ready counters for the engine metrics snapshot."""
        with self._lock:
            return {
                "sample_rate": self.sample_rate,
                "slow_threshold_s": self.slow_threshold_s,
                "started": self.started,
                "kept": self.kept,
            }

    def __repr__(self) -> str:
        return (
            f"Tracer(sample_rate={self.sample_rate}, "
            f"slow_threshold_s={self.slow_threshold_s})"
        )
