"""Lightweight counters and timers shared by every algorithm.

Wall-clock comparisons in pure Python are noisy and scale-dependent, so every
algorithm additionally reports *scale-free* work counters — R-tree node
accesses, dominance tests, heap operations, Algorithm 1 invocations.  The
benchmark harness prints both; the counters are what the EXPERIMENTS.md
shape-comparison leans on.

Counters additionally carry named wall-clock *timings* (``stats.timings``):
hot paths record how long they spent on the kernel vs the scalar
implementation (``kernel.upgrade`` vs ``scalar.upgrade`` and so on), which
is how ``skyup serve-bench`` and ``skyup bench-kernels`` split a run's time
by execution path.  Timings merge additively exactly like the counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict


class Counters:
    """A bag of named monotone counters plus named wall-clock timings.

    Attribute-style access is provided for the hot, well-known counters so
    algorithm inner loops read naturally (``stats.node_accesses += 1``);
    everything is also reachable through :meth:`as_dict`.  Named timings
    accumulate seconds per label via :meth:`add_time` / :meth:`timed` and
    are exported separately by :meth:`timings_dict` — :meth:`as_dict` stays
    integer-valued (it feeds exact cross-run equality checks, which wall
    clocks would break).
    """

    #: The integer work counters (everything in ``__slots__`` except
    #: ``timings``).  :meth:`as_dict` and ``__eq__`` cover exactly these.
    COUNTER_FIELDS = (
        "node_accesses",
        "dominance_tests",
        "heap_pushes",
        "heap_pops",
        "upgrade_calls",
        "lbc_evaluations",
        "points_scanned",
        "entries_pruned",
        "skyline_points",
    )

    __slots__ = COUNTER_FIELDS + ("timings",)

    def __init__(self) -> None:
        self.node_accesses = 0
        self.dominance_tests = 0
        self.heap_pushes = 0
        self.heap_pops = 0
        self.upgrade_calls = 0
        self.lbc_evaluations = 0
        self.points_scanned = 0
        self.entries_pruned = 0
        self.skyline_points = 0
        self.timings: Dict[str, float] = {}

    def as_dict(self) -> Dict[str, int]:
        """Return the integer counters as a plain dict (stable key order)."""
        return {name: getattr(self, name) for name in self.COUNTER_FIELDS}

    def timings_dict(self) -> Dict[str, float]:
        """Accumulated seconds per timing label (stable, sorted keys)."""
        return {name: self.timings[name] for name in sorted(self.timings)}

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` under the timing label ``name``."""
        self.timings[name] = self.timings.get(name, 0.0) + seconds

    def timed(self, name: str) -> "_TimedSection":
        """Context manager accumulating its span under ``name``.

        Example::

            with stats.timed("kernel.upgrade"):
                run_kernel()
        """
        return _TimedSection(self, name)

    def merge(self, other: "Counters") -> None:
        """Add ``other``'s counts (and timings) into this object.

        Concurrency contract: each worker accumulates into its *own*
        instance and an aggregator merges them afterwards — ``+= 1`` on a
        shared instance from several threads would lose updates (the
        read-modify-write is not atomic).  Merging per-worker counters is
        exact: every counter is a sum of independent increments, so the
        merged totals equal a serial run's.
        """
        for name in self.COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name, seconds in other.timings.items():
            self.timings[name] = self.timings.get(name, 0.0) + seconds

    def copy(self) -> "Counters":
        """An independent snapshot of the current counts."""
        clone = Counters()
        clone.merge(self)
        return clone

    def __add__(self, other: "Counters") -> "Counters":
        """A new :class:`Counters` holding the element-wise sums."""
        if not isinstance(other, Counters):
            return NotImplemented
        total = self.copy()
        total.merge(other)
        return total

    def __eq__(self, other: object) -> bool:
        """Value equality over the *integer* counters.

        Timings are deliberately excluded: they are wall-clock measurements,
        so two otherwise identical runs never agree on them exactly.
        """
        if not isinstance(other, Counters):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def reset(self) -> None:
        """Zero every counter and drop all timings."""
        for name in self.COUNTER_FIELDS:
            setattr(self, name, 0)
        self.timings = {}

    def __repr__(self) -> str:
        nonzero = {k: v for k, v in self.as_dict().items() if v}
        if self.timings:
            nonzero["timings"] = {
                k: round(v, 6) for k, v in self.timings_dict().items()
            }
        return f"Counters({nonzero})"


class _TimedSection:
    """Context manager adding its elapsed span to a :class:`Counters`."""

    __slots__ = ("_counters", "_name", "_start")

    def __init__(self, counters: Counters, name: str):
        self._counters = counters
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_TimedSection":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._counters.add_time(
            self._name, time.perf_counter() - self._start
        )


class Stopwatch:
    """Monotonic split timing for progressive result streams.

    ``split()`` returns the seconds elapsed since construction (or the
    last ``restart()``).  The join upgrader stamps each progressive
    result with a split — the paper's progressiveness figures read those
    stamps.  This is the sanctioned way for algorithm code to read the
    clock: the SKY601 lint rule keeps raw ``time.perf_counter()`` calls
    out of the serve/core hot paths so all timing flows through this
    module or :mod:`repro.obs` spans.
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def split(self) -> float:
        """Seconds elapsed since construction / the last restart."""
        return time.perf_counter() - self._start

    def restart(self) -> None:
        """Reset the reference point to now."""
        self._start = time.perf_counter()


@dataclass
class RunReport:
    """Outcome metadata attached to every algorithm run.

    Attributes:
        algorithm: human-readable algorithm identifier, e.g.
            ``"join[CLB]"`` or ``"probing/improved"``.
        elapsed_s: wall-clock duration of the run.
        counters: work counters accumulated during the run.
        extras: free-form algorithm-specific metadata (e.g. per-result
            timestamps for progressiveness plots).
    """

    algorithm: str = ""
    elapsed_s: float = 0.0
    counters: Counters = field(default_factory=Counters)
    extras: Dict[str, object] = field(default_factory=dict)


class Timer:
    """Context manager measuring wall-clock time with ``perf_counter``.

    Re-entrant and nestable: the same instance may be entered while already
    active (from the same thread).  On every exit ``elapsed_s`` holds the
    just-finished span; ``total_s`` accumulates *outermost* spans only, so
    nested use never double-counts::

        t = Timer()
        with t:            # span A
            with t:        # span B (inside A)
                work()
            # t.elapsed_s == span B
        # t.elapsed_s == span A; t.total_s == span A (B not added again)
    """

    __slots__ = ("elapsed_s", "total_s", "_starts")

    def __init__(self) -> None:
        self.elapsed_s = 0.0
        self.total_s = 0.0
        self._starts: list = []

    @property
    def depth(self) -> int:
        """How many unexited ``with`` blocks are currently active."""
        return len(self._starts)

    def __enter__(self) -> "Timer":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc_info: object) -> None:
        span = time.perf_counter() - self._starts.pop()
        self.elapsed_s = span
        if not self._starts:
            self.total_s += span
