"""Lightweight counters and timers shared by every algorithm.

Wall-clock comparisons in pure Python are noisy and scale-dependent, so every
algorithm additionally reports *scale-free* work counters — R-tree node
accesses, dominance tests, heap operations, Algorithm 1 invocations.  The
benchmark harness prints both; the counters are what the EXPERIMENTS.md
shape-comparison leans on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict


class Counters:
    """A bag of named monotone counters.

    Attribute-style access is provided for the hot, well-known counters so
    algorithm inner loops read naturally (``stats.node_accesses += 1``);
    everything is also reachable through :meth:`as_dict`.
    """

    __slots__ = (
        "node_accesses",
        "dominance_tests",
        "heap_pushes",
        "heap_pops",
        "upgrade_calls",
        "lbc_evaluations",
        "points_scanned",
        "entries_pruned",
        "skyline_points",
    )

    def __init__(self) -> None:
        self.node_accesses = 0
        self.dominance_tests = 0
        self.heap_pushes = 0
        self.heap_pops = 0
        self.upgrade_calls = 0
        self.lbc_evaluations = 0
        self.points_scanned = 0
        self.entries_pruned = 0
        self.skyline_points = 0

    def as_dict(self) -> Dict[str, int]:
        """Return all counters as a plain dict (stable key order)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def merge(self, other: "Counters") -> None:
        """Add ``other``'s counts into this object.

        Concurrency contract: each worker accumulates into its *own*
        instance and an aggregator merges them afterwards — ``+= 1`` on a
        shared instance from several threads would lose updates (the
        read-modify-write is not atomic).  Merging per-worker counters is
        exact: every counter is a sum of independent increments, so the
        merged totals equal a serial run's.
        """
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def copy(self) -> "Counters":
        """An independent snapshot of the current counts."""
        clone = Counters()
        clone.merge(self)
        return clone

    def __add__(self, other: "Counters") -> "Counters":
        """A new :class:`Counters` holding the element-wise sums."""
        if not isinstance(other, Counters):
            return NotImplemented
        total = self.copy()
        total.merge(other)
        return total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Counters):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def reset(self) -> None:
        """Zero every counter."""
        for name in self.__slots__:
            setattr(self, name, 0)

    def __repr__(self) -> str:
        nonzero = {k: v for k, v in self.as_dict().items() if v}
        return f"Counters({nonzero})"


@dataclass
class RunReport:
    """Outcome metadata attached to every algorithm run.

    Attributes:
        algorithm: human-readable algorithm identifier, e.g.
            ``"join[CLB]"`` or ``"probing/improved"``.
        elapsed_s: wall-clock duration of the run.
        counters: work counters accumulated during the run.
        extras: free-form algorithm-specific metadata (e.g. per-result
            timestamps for progressiveness plots).
    """

    algorithm: str = ""
    elapsed_s: float = 0.0
    counters: Counters = field(default_factory=Counters)
    extras: Dict[str, object] = field(default_factory=dict)


class Timer:
    """Context manager measuring wall-clock time with ``perf_counter``."""

    __slots__ = ("elapsed_s", "_start")

    def __init__(self) -> None:
        self.elapsed_s = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_s = time.perf_counter() - self._start
