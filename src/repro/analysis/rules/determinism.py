"""SKY301 — seeded determinism in the algorithmic core.

Chaos replay (:mod:`repro.reliability.faults`), the kernel agreement
suite, and the recorded benchmarks all rely on one property: given a
seed, the algorithmic core computes the same thing every run.  A stray
``random.random()`` or wall-clock read in ``core/``, ``kernels/``,
``skyline/``, or ``rtree/`` silently breaks that — the failure shows up
later as an unreproducible chaos scenario, which is the worst kind.

Banned inside :data:`CHECKED_DIRS`:

* unseeded module-level PRNG draws: any ``random.<fn>(...)`` except the
  seedable constructors (``random.Random``, ``random.SystemRandom``),
  and any ``np.random.<fn>(...)`` except ``default_rng`` / ``Generator``
  (the seeded generator API);
* wall-clock reads: ``time.time`` / ``time.time_ns`` and any
  ``datetime`` ``now`` / ``utcnow`` / ``today``.  Monotonic clocks
  (``time.monotonic``, ``time.perf_counter``) are fine — they measure,
  they do not decide.

Instance-method draws (``rng.random()`` on a seeded generator object)
are indistinguishable from other attribute calls statically and are
exactly the sanctioned pattern, so they pass.  :data:`ALLOWLIST` exempts
specific ``(path, name)`` pairs when a core module legitimately needs an
entropy source (currently empty — keep it that way).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.analysis.engine import Finding, LintContext, rule

#: Directories (repo-relative prefixes) under the determinism contract.
CHECKED_DIRS = (
    "src/repro/core/",
    "src/repro/kernels/",
    "src/repro/skyline/",
    "src/repro/rtree/",
)

#: ``(repo-relative path, dotted call name)`` pairs exempted by review.
ALLOWLIST: Set[Tuple[str, str]] = set()

#: ``random`` attributes that construct seedable generators.
SEEDED_CONSTRUCTORS = {"Random", "SystemRandom"}

#: ``np.random`` attributes belonging to the seeded generator API.
SEEDED_NP = {"default_rng", "Generator", "SeedSequence", "BitGenerator"}

WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
}

DATETIME_FACTORIES = {"now", "utcnow", "today"}


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _violation(dotted: str) -> Optional[str]:
    parts = dotted.split(".")
    if len(parts) < 2:
        return None
    head, tail = parts[0], parts[-1]
    if head == "random" and len(parts) == 2:
        if tail not in SEEDED_CONSTRUCTORS:
            return f"unseeded PRNG draw {dotted}()"
    if head in ("np", "numpy") and len(parts) >= 3 and parts[1] == "random":
        if tail not in SEEDED_NP:
            return f"legacy numpy PRNG {dotted}() (use default_rng(seed))"
    if (head, tail) in WALL_CLOCK and len(parts) == 2:
        return f"wall-clock read {dotted}() (use time.monotonic)"
    if head == "datetime" and tail in DATETIME_FACTORIES:
        return f"wall-clock read {dotted}()"
    return None


@rule(
    "SKY301",
    "determinism",
    "unseeded randomness or wall-clock read in the algorithmic core",
)
def check_determinism(ctx: LintContext) -> Iterator[Finding]:
    for module in ctx.modules:
        if not module.rel.startswith(CHECKED_DIRS):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            message = _violation(dotted)
            if message is None:
                continue
            if (module.rel, dotted) in ALLOWLIST:
                continue
            yield Finding(
                rule="SKY301",
                path=module.rel,
                line=node.lineno,
                col=node.col_offset + 1,
                message=f"{message}: seeded chaos replay depends on "
                f"deterministic core code",
            )
