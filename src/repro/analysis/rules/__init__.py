"""The codebase-specific rule pack.

Importing this package registers every rule with the engine's registry
(each rule module calls :func:`repro.analysis.engine.rule` at import
time).  Rule ids are stable and grouped by hundreds:

* ``SKY1xx`` — lock discipline (:mod:`repro.analysis.rules.locks`)
* ``SKY2xx`` — exception taxonomy (:mod:`repro.analysis.rules.taxonomy`)
* ``SKY3xx`` — determinism (:mod:`repro.analysis.rules.determinism`)
* ``SKY4xx`` — injection-point registry
  (:mod:`repro.analysis.rules.injection`)
* ``SKY5xx`` — kernel-oracle parity (:mod:`repro.analysis.rules.parity`)
* ``SKY6xx`` — hot-path clock discipline
  (:mod:`repro.analysis.rules.hotpath`)
* ``SKY7xx`` — planner layering
  (:mod:`repro.analysis.rules.layering`)
* ``SKY8xx`` — fork/spawn safety of the shard tier
  (:mod:`repro.analysis.rules.forksafety`)
* ``SKY9xx`` — blocking-receive discipline of the shard tier
  (:mod:`repro.analysis.rules.blocking`)
* ``SKY10xx`` — interprocedural concurrency analysis (``--deep``):
  guard inference, blocking-under-lock, deadline propagation
  (:mod:`repro.analysis.rules.flowrules`)
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (registration side effect)
    blocking,
    determinism,
    flowrules,
    forksafety,
    hotpath,
    injection,
    layering,
    locks,
    parity,
    taxonomy,
)

__all__ = [
    "blocking",
    "determinism",
    "flowrules",
    "forksafety",
    "hotpath",
    "injection",
    "layering",
    "locks",
    "parity",
    "taxonomy",
]
