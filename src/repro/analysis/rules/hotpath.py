"""SKY601 — no raw ``time.perf_counter()`` in serving/core hot paths.

The observability PR centralized all span timing behind
:mod:`repro.obs` (``repro.obs.clock`` is the sanctioned alias) and the
:mod:`repro.instrumentation` helpers (``Timer``, ``Stopwatch``,
``Counters.timed``).  A raw ``time.perf_counter()`` call inside the
serving layer or the algorithmic core bypasses both: the reading never
lands in a span or a run report, and ad-hoc timing tends to creep into
hot loops where even the call overhead matters.  Measure through the
instrumented surfaces instead — they are free when tracing is off and
attributed when it is on.

Checked: ``src/repro/serve/`` and ``src/repro/core/``.  Exempt:
``src/repro/serve/bench.py`` (the benchmark harness *is* a measurement
tool; its whole-replay wall times are the deliverable, not hot-path
telemetry).  ``repro.instrumentation`` and ``repro.obs`` live outside
the checked directories — they are the implementations the rule herds
callers toward.

Both spellings are caught: ``time.perf_counter()`` and a bare
``perf_counter()`` via ``from time import perf_counter``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.analysis.engine import Finding, LintContext, rule

#: Directories (repo-relative prefixes) under the hot-path clock contract.
CHECKED_DIRS = (
    "src/repro/serve/",
    "src/repro/core/",
)

#: Repo-relative paths exempt from the rule.
EXEMPT_PATHS: Set[str] = {
    "src/repro/serve/bench.py",
}

#: ``(module alias, attribute)`` spellings of the banned call.
BANNED_CALLS: Set[Tuple[str, str]] = {
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
}


def _is_banned(node: ast.Call, bare_names: Set[str]) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr) in BANNED_CALLS
    if isinstance(func, ast.Name):
        return func.id in bare_names
    return False


def _bare_imports(tree: ast.AST) -> Set[str]:
    """Local names bound to ``time.perf_counter`` via ``from time import``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in ("perf_counter", "perf_counter_ns"):
                    names.add(alias.asname or alias.name)
    return names


@rule(
    "SKY601",
    "hot-path-clock",
    "raw time.perf_counter() in serve/core (use repro.obs or "
    "instrumentation)",
)
def check_hotpath_clock(ctx: LintContext) -> Iterator[Finding]:
    for module in ctx.modules:
        if not module.rel.startswith(CHECKED_DIRS):
            continue
        if module.rel in EXEMPT_PATHS:
            continue
        bare = _bare_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_banned(node, bare):
                continue
            yield Finding(
                rule="SKY601",
                path=module.rel,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    "raw perf_counter() in a serving/core hot path: time "
                    "through repro.obs (span/clock) or "
                    "repro.instrumentation (Timer/Stopwatch) so the "
                    "reading is attributed and free when tracing is off"
                ),
            )
