"""SKY801/SKY802 — fork/spawn safety for the sharded execution tier.

Worker processes start from a fresh interpreter (``spawn``) and import
the :mod:`repro.shard` modules on their own; the coordinator imports the
same modules in a process full of receiver/monitor threads.  Two
conventions keep that safe, and these rules enforce them:

* **SKY801 — no module-level synchronization primitives in worker
  code.**  A ``threading.Lock`` (or ``Condition``/``RLock``/``Event``/
  ``Semaphore``) created at import time of a module under
  ``src/repro/shard/`` looks shared but is not: every spawned worker
  re-imports the module and manufactures its *own* primitive, so code
  "synchronizing" on it silently synchronizes nothing across processes
  (and under ``fork`` it would be worse — a duplicated lock frozen in
  whatever state the parent held it).  Locks belong on instances the
  coordinator owns, or in explicitly per-process state.

* **SKY802 — all multiprocessing goes through
  :mod:`repro.shard.spawn`.**  The spawn module pins the ``spawn``
  start method and the resource-tracker hygiene for shared-memory
  segments; an ``import multiprocessing`` anywhere else in the library
  can silently regress to the platform default start method (``fork``
  on Linux — unsafe in the threaded coordinator) or re-introduce the
  tracker double-registration bugs the helpers exist to prevent.

Checked: SKY801 over every module under ``src/repro/shard/``; SKY802
over every module under ``src/repro/`` except ``shard/spawn.py``
itself.  ``# skyup: ignore[SKY80x]`` on the offending line documents a
deliberate exception.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.engine import Finding, LintContext, ModuleInfo, rule

#: Repo-relative prefix of worker-imported modules.
SHARD_DIR = "src/repro/shard/"

#: The one sanctioned doorway to ``multiprocessing``.
SPAWN_MODULE = "src/repro/shard/spawn.py"

#: Library code the SKY802 ban covers (tests and benchmarks may drive
#: multiprocessing directly; the library may not).
LIB_DIR = "src/repro/"

#: ``threading`` factories that are per-process by construction.
PRIMITIVE_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore"}
)

IGNORE_RE = re.compile(r"#\s*skyup:\s*ignore\[(SKY80\d)\]")


def _ignored(module: ModuleInfo, lineno: int, rule_id: str) -> bool:
    match = IGNORE_RE.search(module.line(lineno))
    return bool(match) and match.group(1) == rule_id


def _primitive_call(node: ast.AST) -> Optional[str]:
    """The primitive's name if ``node`` calls a ``threading`` factory."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        # threading.Lock() — any qualifying attribute call counts; the
        # base being literally ``threading`` is checked to avoid
        # flagging unrelated ``Foo.Event()`` constructors.
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "threading"
            and func.attr in PRIMITIVE_FACTORIES
        ):
            return f"threading.{func.attr}"
    elif isinstance(func, ast.Name) and func.id in PRIMITIVE_FACTORIES:
        # from threading import Lock; Lock()
        return func.id
    return None


def _module_level_calls(tree: ast.Module) -> Iterator[ast.Call]:
    """Calls evaluated at import time (module body, not inside defs)."""
    for node in tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                yield sub


@rule(
    "SKY801",
    "fork-unsafe-module-lock",
    "module-level Lock/Condition in worker-imported shard modules",
)
def check_module_level_primitives(ctx: LintContext) -> Iterator[Finding]:
    for module in ctx.modules:
        if not module.rel.startswith(SHARD_DIR):
            continue
        for call in _module_level_calls(module.tree):
            name = _primitive_call(call)
            if name is None:
                continue
            if _ignored(module, call.lineno, "SKY801"):
                continue
            yield Finding(
                rule="SKY801",
                path=module.rel,
                line=call.lineno,
                col=call.col_offset + 1,
                message=(
                    f"module-level {name}() in a worker-imported shard "
                    "module: every spawned worker re-imports this and "
                    "gets its own primitive, so nothing is actually "
                    "synchronized across processes — move it onto a "
                    "coordinator-owned instance"
                ),
            )


def _mp_import(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name.split(".")[0] == "multiprocessing":
                return alias.name
    elif isinstance(node, ast.ImportFrom) and node.module:
        if node.module.split(".")[0] == "multiprocessing":
            return node.module
    return None


@rule(
    "SKY802",
    "multiprocessing-outside-spawn",
    "multiprocessing used outside the sanctioned repro.shard.spawn module",
)
def check_multiprocessing_doorway(ctx: LintContext) -> Iterator[Finding]:
    for module in ctx.modules:
        if not module.rel.startswith(LIB_DIR):
            continue
        if module.rel == SPAWN_MODULE:
            continue
        for node in ast.walk(module.tree):
            target = _mp_import(node)
            if target is None:
                continue
            if _ignored(module, node.lineno, "SKY802"):
                continue
            yield Finding(
                rule="SKY802",
                path=module.rel,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    f"import of {target} outside repro.shard.spawn: go "
                    "through spawn_context()/make_queue()/make_process()"
                    "/create_segment()/attach_segment() so the spawn "
                    "start method and resource-tracker hygiene cannot "
                    "silently regress"
                ),
            )
