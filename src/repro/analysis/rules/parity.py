"""SKY501/SKY502/SKY503 — kernel-oracle parity.

The columnar kernels are trusted because every one of them has a scalar
twin (the paper-verbatim implementation) and a randomized agreement
suite comparing the two.  The runtime :class:`KernelGuard` and the chaos
suite's oracle-exactness assertions are only as good as that twinning —
a kernel added without an oracle or without agreement coverage is a fast
path nobody can cross-check.

The convention: each public kernel entry point's docstring carries a
``Scalar oracle: <dotted.path>`` line naming its twin.

* **SKY501** — a public kernel function without a ``Scalar oracle:``
  declaration.
* **SKY502** — a declaration whose dotted path does not resolve to a
  function/class in this repo (the twin was moved or renamed).
* **SKY503** — a public kernel entry point (function *or* class) that
  never appears in :data:`AGREEMENT_TESTS`.

Public entry points are the names exported by ``repro/kernels/
__init__.py``'s ``__all__``; the switch helpers (:data:`EXEMPT`) have no
oracle by nature and are skipped.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.engine import Finding, LintContext, ModuleInfo, rule

KERNELS_INIT = "src/repro/kernels/__init__.py"
AGREEMENT_TESTS = "tests/test_kernels_agreement.py"

#: Kernel exports that are infrastructure, not dual-path entry points.
EXEMPT = {"kernels_enabled", "set_kernels_enabled", "use_kernels"}

ORACLE_RE = re.compile(r"Scalar oracle:\s*`?([A-Za-z_][\w.]*)`?")


def _kernel_exports(ctx: LintContext) -> Set[str]:
    module = ctx.module(KERNELS_INIT)
    if module is None:
        return set()
    for node in module.tree.body:
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            )
        ):
            return {
                sub.value
                for sub in ast.walk(node.value)
                if isinstance(sub, ast.Constant)
                and isinstance(sub.value, str)
            }
    return set()


def _kernel_definitions(
    ctx: LintContext, exports: Set[str]
) -> Dict[str, Tuple[ModuleInfo, ast.AST]]:
    """Exported name -> (module, def node) across kernels submodules."""
    defs: Dict[str, Tuple[ModuleInfo, ast.AST]] = {}
    for module in ctx.modules:
        if not module.rel.startswith("src/repro/kernels/"):
            continue
        if module.rel == KERNELS_INIT:
            continue
        for node in module.tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and node.name in exports:
                defs[node.name] = (module, node)
    return defs


def _resolve_dotted(ctx: LintContext, dotted: str) -> bool:
    """True iff ``dotted`` names a def/class (or method) in this repo."""
    parts = dotted.split(".")
    for split in range(len(parts) - 1, 0, -1):
        rel = "src/" + "/".join(parts[:split]) + ".py"
        module = ctx.module(rel)
        if module is None:
            continue
        remainder = parts[split:]
        for node in module.tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name != remainder[0]:
                continue
            if len(remainder) == 1:
                return True
            if isinstance(node, ast.ClassDef) and len(remainder) == 2:
                return any(
                    isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and m.name == remainder[1]
                    for m in node.body
                )
        return False
    return False


def _declared_oracle(node: ast.AST) -> Optional[str]:
    doc = ast.get_docstring(node)
    if not doc:
        return None
    match = ORACLE_RE.search(doc)
    return match.group(1) if match else None


@rule(
    "SKY501",
    "kernel-oracle-missing",
    "public kernel function without a 'Scalar oracle:' declaration",
)
def check_oracle_declared(ctx: LintContext) -> Iterator[Finding]:
    exports = _kernel_exports(ctx) - EXEMPT
    for name, (module, node) in sorted(
        _kernel_definitions(ctx, exports).items()
    ):
        if isinstance(node, ast.ClassDef):
            continue  # classes are covered by SKY503 only
        if _declared_oracle(node) is None:
            yield Finding(
                rule="SKY501",
                path=module.rel,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    f"kernel entry point '{name}' declares no scalar twin: "
                    f"add a 'Scalar oracle: <dotted.path>' docstring line"
                ),
            )


@rule(
    "SKY502",
    "kernel-oracle-unresolved",
    "'Scalar oracle:' declaration that does not resolve",
)
def check_oracle_resolves(ctx: LintContext) -> Iterator[Finding]:
    exports = _kernel_exports(ctx) - EXEMPT
    for name, (module, node) in sorted(
        _kernel_definitions(ctx, exports).items()
    ):
        dotted = _declared_oracle(node)
        if dotted is None or _resolve_dotted(ctx, dotted):
            continue
        yield Finding(
            rule="SKY502",
            path=module.rel,
            line=node.lineno,
            col=node.col_offset + 1,
            message=(
                f"kernel entry point '{name}' declares scalar oracle "
                f"{dotted!r}, which does not resolve to a definition"
            ),
        )


@rule(
    "SKY503",
    "kernel-agreement-coverage",
    "public kernel entry point absent from the agreement suite",
)
def check_agreement_coverage(ctx: LintContext) -> Iterator[Finding]:
    exports = _kernel_exports(ctx) - EXEMPT
    if not exports:
        return
    tests = ctx.read_text(AGREEMENT_TESTS)
    defs = _kernel_definitions(ctx, exports)
    for name in sorted(exports):
        if name not in defs:
            continue  # exported but undefined: an import error, not ours
        if tests is not None and re.search(rf"\b{re.escape(name)}\b", tests):
            continue
        module, node = defs[name]
        yield Finding(
            rule="SKY503",
            path=module.rel,
            line=node.lineno,
            col=node.col_offset + 1,
            message=(
                f"kernel entry point '{name}' never appears in "
                f"{AGREEMENT_TESTS}: the kernel/oracle cross-check "
                f"cannot vouch for it"
            ),
        )
