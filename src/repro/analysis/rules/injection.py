"""SKY401/SKY402 — the fault-injection point registry, both directions.

Injection points are *strings* at the call site (``maybe_inject(
"rtree.query")``) matched against :data:`INJECTION_POINTS` in
:mod:`repro.reliability.faults`.  Strings drift silently: rename a point
in the registry and stale call sites keep consulting a name no plan can
arm; add a call site with a typo and chaos plans arming the real name
never reach it.  Both failure modes are invisible at runtime — the
injection machinery treats an unknown point as "not armed" by design
(zero cost when disabled), so only a static check catches them.

* **SKY401** — a call-site point name that is not in the registry.
* **SKY402** — a registered point with no call site anywhere in
  ``src/repro`` (reported at the registry definition).

Call sites are calls to :data:`CONSULT_FUNCTIONS` with a string-literal
first (or second, for methods) argument; non-literal arguments cannot be
checked statically and are skipped.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, LintContext, ModuleInfo, rule

#: Where the registry lives, repo-relative.
FAULTS_MODULE = "src/repro/reliability/faults.py"

#: Registry variable name inside :data:`FAULTS_MODULE`.
REGISTRY_NAME = "INJECTION_POINTS"

#: Functions/methods whose first string argument is an injection point.
CONSULT_FUNCTIONS = {"maybe_inject", "maybe_corrupt", "on_reach", "on_result"}


def registry_points(
    ctx: LintContext,
) -> Tuple[Set[str], Optional[int]]:
    """``(point names, definition line)`` parsed from the faults module."""
    module = ctx.module(FAULTS_MODULE)
    if module is None:
        return set(), None
    for node in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not (
                isinstance(target, ast.Name) and target.id == REGISTRY_NAME
            ):
                continue
            names: Set[str] = set()
            for sub in ast.walk(value):
                if isinstance(sub, ast.Constant) and isinstance(
                    sub.value, str
                ):
                    names.add(sub.value)
            return names, node.lineno
    return set(), None


def _call_sites(
    module: ModuleInfo,
) -> Iterator[Tuple[str, ast.Call]]:
    """``(point name, call node)`` for every literal consultation."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name not in CONSULT_FUNCTIONS or not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            yield first.value, node


def _collect(
    ctx: LintContext,
) -> Tuple[Set[str], Optional[int], Dict[str, List[Tuple[str, ast.Call]]]]:
    points, registry_line = registry_points(ctx)
    sites: Dict[str, List[Tuple[str, ast.Call]]] = {}
    for module in ctx.modules:
        if module.rel == FAULTS_MODULE:
            continue  # the registry module documents, it does not consult
        for point, node in _call_sites(module):
            sites.setdefault(point, []).append((module.rel, node))
    return points, registry_line, sites


@rule(
    "SKY401",
    "injection-unknown",
    "fault-point name at a call site missing from INJECTION_POINTS",
)
def check_unknown_points(ctx: LintContext) -> Iterator[Finding]:
    points, registry_line, sites = _collect(ctx)
    if registry_line is None:
        return  # no registry in this tree; nothing to check against
    for point in sorted(sites):
        if point in points:
            continue
        for rel, node in sites[point]:
            yield Finding(
                rule="SKY401",
                path=rel,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    f"injection point {point!r} is not registered in "
                    f"INJECTION_POINTS — chaos plans can never arm it"
                ),
            )


@rule(
    "SKY402",
    "injection-unreachable",
    "registered injection point with no call site",
)
def check_unreachable_points(ctx: LintContext) -> Iterator[Finding]:
    points, registry_line, sites = _collect(ctx)
    if registry_line is None:
        return
    for point in sorted(points):
        if point in sites:
            continue
        yield Finding(
            rule="SKY402",
            path=FAULTS_MODULE,
            line=registry_line,
            col=1,
            message=(
                f"registered injection point {point!r} has no call site "
                f"in src/repro — arming it is a silent no-op"
            ),
        )
