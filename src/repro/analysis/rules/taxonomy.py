"""SKY201/SKY202/SKY203 — the exception taxonomy.

Every failure the library raises must be a :mod:`repro.exceptions` class
(so callers can catch ``SkyUpError`` and trust it covers the library) or
one of a short list of allowlisted builtins for plain contract violations
(``ValueError`` for bad arguments in leaf utilities, ``TimeoutError``
for waits, ``NotImplementedError`` for abstract methods).

* **SKY201** — a ``raise SomeName(...)`` whose name is neither a
  taxonomy class nor an allowlisted builtin.  Dynamic raises
  (``raise spec.error_type(...)``, ``raise exc``) are out of static
  reach and skipped.
* **SKY202** — a bare ``except:``; it swallows ``KeyboardInterrupt``
  and ``SystemExit`` and is never correct in library code.
* **SKY203** — ``except Exception`` (or ``BaseException``) outside a
  declared *boundary function*.  Genuine containment boundaries — the
  worker supervision loop, the batch executor that must never let a bug
  hang a caller — declare themselves with an ``# error-boundary:
  <reason>`` comment on the ``def`` line or the line above it; anywhere
  else the handler must name the failure types it expects.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set

from repro.analysis.engine import Finding, LintContext, ModuleInfo, rule

#: Where the taxonomy lives, repo-relative.
EXCEPTIONS_MODULE = "src/repro/exceptions.py"

#: Builtins acceptable for leaf-level contract violations.
ALLOWED_BUILTINS = {
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "TimeoutError",
    "NotImplementedError",
    "StopIteration",
    "AssertionError",
}

BOUNDARY_RE = re.compile(r"#\s*error-boundary:\s*(\S.*)")

#: Handler types that count as over-broad.
BROAD_NAMES = {"Exception", "BaseException"}


def taxonomy_classes(ctx: LintContext) -> Set[str]:
    """Class names defined in :data:`EXCEPTIONS_MODULE`."""
    module = ctx.module(EXCEPTIONS_MODULE)
    if module is None:
        return set()
    return {
        node.name
        for node in module.tree.body
        if isinstance(node, ast.ClassDef)
    }


def _is_boundary(module: ModuleInfo, func: ast.AST) -> bool:
    for lineno in (func.lineno, func.lineno - 1):
        if BOUNDARY_RE.search(module.line(lineno)):
            return True
    return False


def _raised_name(node: ast.Raise) -> Optional[str]:
    # Only the instantiation form ``raise Name(...)`` is checked: a bare
    # ``raise name`` is usually a re-raise of a caught variable, which is
    # statically indistinguishable from a class reference.
    if isinstance(node.exc, ast.Call) and isinstance(
        node.exc.func, ast.Name
    ):
        return node.exc.func.id
    return None  # dynamic (attribute, re-raise, bare name): skip


def _handler_names(handler: ast.ExceptHandler) -> List[str]:
    node = handler.type
    if node is None:
        return []
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    return [e.id for e in elts if isinstance(e, ast.Name)]


@rule(
    "SKY201",
    "exception-taxonomy",
    "raise uses a class outside repro.exceptions / allowlisted builtins",
)
def check_raises(ctx: LintContext) -> Iterator[Finding]:
    taxonomy = taxonomy_classes(ctx)
    allowed = taxonomy | ALLOWED_BUILTINS
    for module in ctx.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _raised_name(node)
            if name is None or name in allowed:
                continue
            yield Finding(
                rule="SKY201",
                path=module.rel,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    f"raise of {name!r}: use a repro.exceptions class "
                    f"(or an allowlisted builtin)"
                ),
            )


def _functions_containing(
    tree: ast.Module,
) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _enclosing_function(
    module: ModuleInfo, handler: ast.ExceptHandler
) -> Optional[ast.AST]:
    """The innermost function whose span contains ``handler``."""
    best: Optional[ast.AST] = None
    for func in _functions_containing(module.tree):
        end = getattr(func, "end_lineno", None)
        if end is None:
            continue
        if func.lineno <= handler.lineno <= end:
            if best is None or func.lineno > best.lineno:
                best = func
    return best


@rule("SKY202", "bare-except", "bare 'except:' clause")
def check_bare_except(ctx: LintContext) -> Iterator[Finding]:
    for module in ctx.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield Finding(
                    rule="SKY202",
                    path=module.rel,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message="bare 'except:': name the exception types",
                )


@rule(
    "SKY203",
    "broad-except",
    "'except Exception' outside a declared error-boundary function",
)
def check_broad_except(ctx: LintContext) -> Iterator[Finding]:
    for module in ctx.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = [n for n in _handler_names(node) if n in BROAD_NAMES]
            if not broad:
                continue
            func = _enclosing_function(module, node)
            if func is not None and _is_boundary(module, func):
                continue
            yield Finding(
                rule="SKY203",
                path=module.rel,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    f"'except {broad[0]}' outside an error-boundary "
                    f"function: narrow it or declare the boundary with "
                    f"'# error-boundary: <reason>'"
                ),
            )
