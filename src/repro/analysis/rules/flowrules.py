"""SKY1001-1005 — the interprocedural concurrency rule family.

All five rules share one whole-program analysis
(:mod:`repro.analysis.flow`), memoized on the :class:`LintContext` and
persisted in the summary cache, so selecting any subset costs one
fixpoint.  They are registered ``deep=True``: ``skyup lint`` skips them
unless ``--deep`` (or an explicit ``--select``) asks.

SKY1001  unguarded access to an attribute whose guard was inferred from
         the majority of its accesses (no lock held at all).
SKY1002  wrong-lock access: some lock is held, but not the inferred
         guard in an adequate mode (a write under the read side of an
         rw lock lands here).
SKY1003  annotation drift, both directions: a ``# guarded-by`` that
         disagrees with the inferred guard (stale), and a perfectly
         consistent attribute with no annotation at all (missing).
SKY1004  blocking-under-lock, the interprocedural SKY901: a queue
         receive, process join, sleep, or fault-injection point
         reachable through any call chain while an *exclusive* lock is
         held (read-side holds are exempt — the sharded read path
         deliberately scatters under the catalog read lock).
SKY1005  deadline-propagation: a call into an RPC-reaching,
         deadline-accepting function must bind the deadline parameter
         to a deadline-derived value; omitting it (or passing a
         non-deadline constant) drops the budget on the floor.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List

from repro.analysis.engine import Finding, LintContext, rule
from repro.analysis.flow.analysis import (
    MIN_SUGGEST,
    FlowFacts,
    analyze,
)
from repro.analysis.flow.cache import (
    FlowCache,
    source_hash,
    tree_key,
)
from repro.analysis.flow.extract import extract_module
from repro.analysis.flow.model import (
    CallRec,
    FunctionSummary,
    expand_locks,
    is_exclusive,
    lock_base,
    short_lock,
)

_MEMO_ATTR = "_flow_findings_by_rule"


def _short_fn(facts: FlowFacts, qname: str) -> str:
    msum = facts.graph.module_of.get(qname)
    if msum is not None and qname.startswith(msum.mod + "."):
        return qname[len(msum.mod) + 1:]
    return qname


def _held_short(locks) -> str:
    return ", ".join(sorted(short_lock(sym) for sym in locks))


def _race_findings(facts: FlowFacts) -> List[Finding]:
    out: List[Finding] = []
    for fact in facts.attrs:
        if fact.declared is not None or fact.inferred is None:
            continue
        total = len(fact.accesses)
        guard = short_lock(fact.inferred)
        for access, qname, held in fact.violations:
            where = _short_fn(facts, qname)
            base = (
                f"'{fact.cls}.{fact.attr}' is guarded by '{guard}' at "
                f"{fact.guarded_count}/{total} accesses, but this "
                f"{access.kind} in {where}"
            )
            if not held:
                out.append(
                    Finding(
                        rule="SKY1001",
                        path=fact.module_rel,
                        line=access.line,
                        col=access.col,
                        message=f"{base} holds no lock",
                    )
                )
            else:
                out.append(
                    Finding(
                        rule="SKY1002",
                        path=fact.module_rel,
                        line=access.line,
                        col=access.col,
                        message=(
                            f"{base} holds {{{_held_short(held)}}} — "
                            f"not an adequate mode of '{guard}'"
                        ),
                    )
                )
    return out


def _annotation_findings(facts: FlowFacts) -> List[Finding]:
    out: List[Finding] = []
    for fact in facts.attrs:
        total = len(fact.accesses)
        if fact.declared is not None:
            declared_sym, decl_line = fact.declared
            if fact.inferred is not None and lock_base(
                declared_sym
            ) != fact.inferred:
                out.append(
                    Finding(
                        rule="SKY1003",
                        path=fact.module_rel,
                        line=decl_line,
                        col=1,
                        message=(
                            f"'{fact.cls}.{fact.attr}' declared "
                            f"guarded-by '{short_lock(declared_sym)}' "
                            f"but {fact.guarded_count}/{total} accesses "
                            f"hold '{short_lock(fact.inferred)}' — "
                            "stale annotation"
                        ),
                    )
                )
        elif (
            fact.inferred is not None
            and total >= MIN_SUGGEST
            and fact.guarded_count == total
        ):
            first = min(a.line for a, _q, _l in fact.accesses)
            out.append(
                Finding(
                    rule="SKY1003",
                    path=fact.module_rel,
                    line=first,
                    col=1,
                    message=(
                        f"'{fact.cls}.{fact.attr}' is consistently "
                        f"guarded by '{short_lock(fact.inferred)}' "
                        f"({total}/{total} accesses) but carries no "
                        "# guarded-by annotation"
                    ),
                )
            )
    return out


def _exclusive_held(fn: FunctionSummary, site_locks) -> List[str]:
    held = expand_locks(site_locks) | expand_locks(fn.holds)
    return sorted(sym for sym in held if is_exclusive(sym))


def _blocking_findings(facts: FlowFacts) -> List[Finding]:
    out: List[Finding] = []
    graph = facts.graph
    for qname, fn in graph.functions.items():
        msum = graph.module_of[qname]
        for site in fn.blocking:
            held = _exclusive_held(fn, site.locks)
            if held:
                out.append(
                    Finding(
                        rule="SKY1004",
                        path=msum.rel,
                        line=site.line,
                        col=site.col,
                        message=(
                            f"{site.detail} while holding "
                            f"'{short_lock(held[0])}' in "
                            f"{_short_fn(facts, qname)}"
                        ),
                    )
                )
        for rec, callee in graph.outgoing.get(qname, ()):
            if callee not in facts.blocked:
                continue
            held = _exclusive_held(fn, rec.locks)
            if not held:
                continue
            callee_fn = graph.functions[callee]
            # The callee reports itself when it declares the hold —
            # one finding at the most actionable frame, not one per
            # hop of the chain.
            if any(
                is_exclusive(sym)
                for sym in expand_locks(callee_fn.holds)
            ):
                continue
            chain = facts.block_chain(callee)
            out.append(
                Finding(
                    rule="SKY1004",
                    path=msum.rel,
                    line=rec.line,
                    col=rec.col,
                    message=(
                        f"call may block ({chain}) while holding "
                        f"'{short_lock(held[0])}' in "
                        f"{_short_fn(facts, qname)}"
                    ),
                )
            )
    return out


def _binds_deadline(rec: CallRec, callee: FunctionSummary) -> bool:
    eff = list(callee.params)
    if callee.cls is not None and eff and eff[0] in ("self", "cls"):
        eff = eff[1:]
    kw = dict(rec.kw_deadline)
    for param in callee.deadline_params:
        if param in kw:
            if kw[param]:
                return True
            continue
        if param in eff:
            idx = eff.index(param)
            if idx < len(rec.pos_deadline) and rec.pos_deadline[idx]:
                return True
    return False


def _has_deadline_material(fn: FunctionSummary) -> bool:
    if fn.deadline_params:
        return True
    for rec in fn.calls:
        if any(rec.pos_deadline) or any(
            v for _name, v in rec.kw_deadline
        ):
            return True
    return False


def _deadline_findings(facts: FlowFacts) -> List[Finding]:
    out: List[Finding] = []
    graph = facts.graph
    for qname, fn in graph.functions.items():
        if not _has_deadline_material(fn):
            continue  # nothing to thread from here
        msum = graph.module_of[qname]
        for rec, callee in graph.outgoing.get(qname, ()):
            target = graph.functions[callee]
            if not target.deadline_params:
                continue
            if callee not in facts.reaches_rpc:
                continue
            if rec.star or rec.kwstar:
                continue  # binding unknowable through a splat
            if _binds_deadline(rec, target):
                continue
            params = ", ".join(
                f"'{p}'" for p in target.deadline_params
            )
            out.append(
                Finding(
                    rule="SKY1005",
                    path=msum.rel,
                    line=rec.line,
                    col=rec.col,
                    message=(
                        f"call to {_short_fn(facts, callee)}() on an "
                        f"RPC-reaching path drops the deadline: "
                        f"{params} not bound to a deadline-derived "
                        f"value in {_short_fn(facts, qname)}"
                    ),
                )
            )
    return out


def compute_deep_findings(ctx: LintContext) -> Dict[str, List[Finding]]:
    """All SKY1000-family findings, grouped by rule id (memoized)."""
    memo = getattr(ctx, _MEMO_ATTR, None)
    if memo is not None:
        return memo
    started = time.perf_counter()
    cache = FlowCache(ctx.cache_dir)
    hashes = {m.rel: source_hash(m.source) for m in ctx.modules}
    key = tree_key(hashes)
    raw = cache.findings(key)
    if raw is not None:
        findings = [
            Finding(
                rule=d["rule"],
                path=d["path"],
                line=int(d["line"]),
                col=int(d["col"]),
                message=d["message"],
            )
            for d in raw
        ]
        warm = True
        summary_hits = len(ctx.modules)
    else:
        summaries = []
        for module in ctx.modules:
            summary = cache.summary(module.rel, hashes[module.rel])
            if summary is None:
                summary = extract_module(module)
                cache.put_summary(
                    module.rel, hashes[module.rel], summary
                )
            summaries.append(summary)
        facts = analyze(summaries)
        findings = sorted(
            set(
                _race_findings(facts)
                + _annotation_findings(facts)
                + _blocking_findings(facts)
                + _deadline_findings(facts)
            ),
            key=lambda f: (f.path, f.line, f.col, f.rule, f.message),
        )
        cache.put_findings(
            key,
            [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                }
                for f in findings
            ],
        )
        cache.save()
        warm = False
        summary_hits = cache.summary_hits
    ctx.flow_stats = {
        "warm": warm,
        "files": len(ctx.modules),
        "summary_hits": summary_hits,
        "seconds": time.perf_counter() - started,
    }
    memo = {}
    for finding in findings:
        memo.setdefault(finding.rule, []).append(finding)
    setattr(ctx, _MEMO_ATTR, memo)
    return memo


def _yield_rule(ctx: LintContext, rule_id: str) -> Iterator[Finding]:
    yield from compute_deep_findings(ctx).get(rule_id, [])


@rule(
    "SKY1001",
    "race-unguarded",
    "inferred-guard attribute accessed with no lock held",
    deep=True,
)
def check_race_unguarded(ctx: LintContext) -> Iterator[Finding]:
    yield from _yield_rule(ctx, "SKY1001")


@rule(
    "SKY1002",
    "race-wrong-lock",
    "inferred-guard attribute accessed under the wrong lock or mode",
    deep=True,
)
def check_race_wrong_lock(ctx: LintContext) -> Iterator[Finding]:
    yield from _yield_rule(ctx, "SKY1002")


@rule(
    "SKY1003",
    "guard-annotation-drift",
    "guarded-by annotation stale or missing versus inferred facts",
    deep=True,
)
def check_guard_drift(ctx: LintContext) -> Iterator[Finding]:
    yield from _yield_rule(ctx, "SKY1003")


@rule(
    "SKY1004",
    "blocking-under-lock",
    "blocking primitive reachable while an exclusive lock is held",
    deep=True,
)
def check_blocking_under_lock(ctx: LintContext) -> Iterator[Finding]:
    yield from _yield_rule(ctx, "SKY1004")


@rule(
    "SKY1005",
    "deadline-propagation",
    "RPC-reaching call drops the deadline parameter",
    deep=True,
)
def check_deadline_propagation(ctx: LintContext) -> Iterator[Finding]:
    yield from _yield_rule(ctx, "SKY1005")
