"""SKY701 — planner layering: ``repro.plan`` must not import upward.

The query planner (:mod:`repro.plan`) sits between the algorithmic core
and its consumers: ``repro.core.api`` and the serving engine both import
it (the API lazily, to keep the core importable without the planner).
The inverse direction is a cycle waiting to happen — a plan module that
imports :mod:`repro.serve` re-entangles plan selection with the engine
that executes plans, and one that imports :mod:`repro.bench`,
:mod:`repro.cli`, or :mod:`repro.analysis` drags tooling into the
library's import graph.  The planner may depend on ``core``, ``rtree``,
``costs``, ``geometry``, ``kernels``, and the shared leaf modules only.

Checked: every module under ``src/repro/plan/``.  Both spellings are
caught: ``import repro.serve...`` and ``from repro.serve... import``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.engine import Finding, LintContext, rule

#: Repo-relative prefix of the constrained layer.
PLAN_DIR = "src/repro/plan/"

#: Module prefixes the plan layer must never import.
BANNED_PREFIXES: Tuple[str, ...] = (
    "repro.serve",
    "repro.bench",
    "repro.cli",
    "repro.analysis",
    "repro.reliability",
    "repro.obs",
)


def _banned_target(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name.startswith(BANNED_PREFIXES):
                return alias.name
    elif isinstance(node, ast.ImportFrom) and node.module:
        if node.module.startswith(BANNED_PREFIXES):
            return node.module
    return None


@rule(
    "SKY701",
    "planner-layering",
    "repro.plan importing serve/bench/cli (the planner is below them)",
)
def check_planner_layering(ctx: LintContext) -> Iterator[Finding]:
    for module in ctx.modules:
        if not module.rel.startswith(PLAN_DIR):
            continue
        for node in ast.walk(module.tree):
            target = _banned_target(node)
            if target is None:
                continue
            yield Finding(
                rule="SKY701",
                path=module.rel,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    f"repro.plan must not import {target}: the planner "
                    "sits below the serving/tooling layers (they import "
                    "it); move the dependency up or pass the data in"
                ),
            )
