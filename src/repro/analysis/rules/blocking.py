"""SKY901 — no unbounded blocking receives in the sharded tier.

A coordinator thread blocked forever on ``queue.get()`` is the failure
mode every resilience mechanism in :mod:`repro.shard` exists to prevent:
a worker that dies between request and reply leaves the receiver parked
until process exit, deadlines never fire, breakers never trip, and the
whole engine wedges on one lost message.  The convention is that every
potentially-blocking ``get`` in ``src/repro/shard/`` carries a
``timeout=`` and treats ``queue.Empty`` as "poll again / give up" — the
worker command loop and the coordinator receiver both do.

The check flags attribute calls of ``.get`` that look like blocking
queue receives:

* no positional arguments (``q.get()``), or a boolean-literal first
  argument (``q.get(True)`` — the ``block`` flag), and
* no ``timeout=`` keyword, and
* no ``block=False`` (that form never blocks).

A first positional argument that is *not* a boolean literal marks a
mapping lookup (``cache.get(key)``) and is never flagged; neither is
``get_nowait()``.  ``# skyup: ignore[SKY901]`` on the line documents a
deliberate exception.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import Finding, LintContext, ModuleInfo, rule

#: Repo-relative prefix the ban covers (the sharded execution tier).
SHARD_DIR = "src/repro/shard/"

IGNORE_RE = re.compile(r"#\s*skyup:\s*ignore\[(SKY90\d)\]")


def _ignored(module: ModuleInfo, lineno: int, rule_id: str) -> bool:
    match = IGNORE_RE.search(module.line(lineno))
    return bool(match) and match.group(1) == rule_id


def _is_blocking_receive(call: ast.Call) -> bool:
    """True when ``call`` is a ``.get`` that can block without bound."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr != "get":
        return False
    if call.args:
        first = call.args[0]
        # A non-boolean first positional is a mapping key, not the
        # ``block`` flag of a queue receive.
        if not (
            isinstance(first, ast.Constant)
            and isinstance(first.value, bool)
        ):
            return False
        if first.value is False:
            return False  # get(False) never blocks
        if len(call.args) >= 2:
            return False  # get(True, t) carries a positional timeout
    for kw in call.keywords:
        if kw.arg == "timeout":
            return False
        if (
            kw.arg == "block"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
        ):
            return False
    return True


@rule(
    "SKY901",
    "unbounded-blocking-receive",
    "queue get() without timeout in the sharded tier",
)
def check_unbounded_receives(ctx: LintContext) -> Iterator[Finding]:
    for module in ctx.modules:
        if not module.rel.startswith(SHARD_DIR):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_blocking_receive(node):
                continue
            if _ignored(module, node.lineno, "SKY901"):
                continue
            yield Finding(
                rule="SKY901",
                path=module.rel,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    "blocking get() with no timeout in the sharded "
                    "tier: a lost reply would park this thread forever "
                    "— pass timeout= and handle queue.Empty (poll "
                    "again or fail the pending request)"
                ),
            )
