"""SKY101/SKY102 — lock discipline for ``# guarded-by`` annotations.

The serving stack declares which lock protects each piece of shared
mutable state with a trailing comment on the attribute's initialisation::

    self._queue: Deque[object] = deque()  # guarded-by: _cond

or, for a module-level global::

    _DEFAULT = True  # guarded-by: _DEFAULT_LOCK

The rule then demands that every other read or write of the annotated
name happens lexically inside a ``with`` block that acquires the named
lock — ``with self._cond:``, ``with self._lock:``, or the readers-writer
forms ``with self._rw.read_locked():`` / ``write_locked()`` (any context
expression that mentions the lock attribute counts, so a wrapper method
on the lock object is fine).  Two common indirections are tracked:

* a local alias of the lock (``lk = self._lock`` followed by
  ``with lk:``) counts as acquiring the aliased lock;
* ``stack.enter_context(self._lock)`` on a
  :class:`contextlib.ExitStack` acquires the lock for the remainder of
  the function (the stack unwinds at scope exit).

Escape hatches, because lock-discipline is a *convention about call
sites*, not a whole-program alias analysis:

* ``# holds-lock: <lock>`` on a ``def`` line (or the line above it)
  declares the function is only ever called with ``<lock>`` held —
  used for helpers invoked from inside a locked region (e.g. the
  engine's mutation listener, which runs under the write lock).
* ``# skyup: ignore[SKY101]`` on the access line for documented benign
  races (e.g. the deliberately lock-free fast-path read in
  :mod:`repro.kernels.switch`).

``__init__`` / ``__new__`` bodies are exempt: during construction the
object is not yet shared.  SKY102 flags an annotation whose lock name
never appears as an attribute/global in the same scope — almost always a
typo that would silently disable the check.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, LintContext, ModuleInfo, rule

GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
HOLDS_RE = re.compile(r"#\s*holds-lock:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Methods whose bodies run before the object is shared.
CONSTRUCTORS = ("__init__", "__new__")


@dataclass
class _Scope:
    """One annotated scope: a class body or the module's global scope."""

    label: str  # e.g. "WorkerPool" or "<module>"
    is_class: bool
    guarded: Dict[str, Tuple[str, int]]  # attr -> (lock, decl line)
    node: ast.AST  # the ClassDef or Module


def _annotation_on(module: ModuleInfo, node: ast.AST) -> Optional[str]:
    """The ``# guarded-by`` lock name on any line of ``node``'s span."""
    end = getattr(node, "end_lineno", None) or node.lineno
    for lineno in range(node.lineno, end + 1):
        match = GUARDED_RE.search(module.line(lineno))
        if match:
            return match.group(1)
    return None


def _holds_locks(module: ModuleInfo, func: ast.AST) -> Set[str]:
    """Locks declared held for the whole function via ``# holds-lock``."""
    held: Set[str] = set()
    for lineno in (func.lineno, func.lineno - 1):
        match = HOLDS_RE.search(module.line(lineno))
        if match:
            held.add(match.group(1))
    return held


def _self_attrs(node: ast.AST) -> Iterator[ast.Attribute]:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            yield sub


def _collect_scopes(module: ModuleInfo) -> List[_Scope]:
    scopes: List[_Scope] = []
    module_guarded: Dict[str, Tuple[str, int]] = {}
    for node in module.tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            lock = _annotation_on(module, node)
            if lock is None:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    module_guarded[target.id] = (lock, node.lineno)
        elif isinstance(node, ast.ClassDef):
            guarded: Dict[str, Tuple[str, int]] = {}
            for sub in ast.walk(node):
                if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    continue
                lock = _annotation_on(module, sub)
                if lock is None:
                    continue
                targets = (
                    sub.targets
                    if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        guarded[target.attr] = (lock, sub.lineno)
            if guarded:
                scopes.append(_Scope(node.name, True, guarded, node))
    if module_guarded:
        scopes.append(_Scope("<module>", False, module_guarded, module.tree))
    return scopes


class _AccessChecker(ast.NodeVisitor):
    """Walks one function body tracking which locks are lexically held."""

    def __init__(
        self,
        module: ModuleInfo,
        scope: _Scope,
        func_name: str,
        held: Set[str],
    ):
        self.module = module
        self.scope = scope
        self.func_name = func_name
        self.held = held
        self.findings: List[Finding] = []
        #: Lock names that can protect this scope's guarded state.
        self.lock_names: Set[str] = {
            lock for lock, _decl in scope.guarded.values()
        }
        #: Local variable -> lock it aliases (``lk = self._lock``).
        self.aliases: Dict[str, str] = {}

    def _locks_in_expr(self, expr: ast.AST) -> Set[str]:
        """Lock names ``expr`` mentions, resolving local aliases."""
        names: Set[str] = set()
        for sub in ast.walk(expr):
            if self.scope.is_class:
                if (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                ):
                    names.add(sub.attr)
                elif isinstance(sub, ast.Name) and sub.id in self.aliases:
                    names.add(self.aliases[sub.id])
            elif isinstance(sub, ast.Name):
                names.add(self.aliases.get(sub.id, sub.id))
        return names

    def _lock_named_by(self, value: ast.AST) -> Optional[str]:
        """The scope lock ``value`` evaluates to, if any."""
        name: Optional[str] = None
        if isinstance(value, ast.Name):
            name = self.aliases.get(value.id)
            if name is None and not self.scope.is_class:
                name = value.id
        elif (
            self.scope.is_class
            and isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            name = value.attr
        if name is not None and name in self.lock_names:
            return name
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        lock = self._lock_named_by(node.value)
        if lock is not None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.aliases[target.id] = lock
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # ExitStack-style acquisition: the context stays entered for the
        # rest of the function (the stack unwinds at scope exit), so the
        # lock is held from here on — never popped by a with-block exit.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "enter_context"
            and node.args
        ):
            self.held |= self._locks_in_expr(node.args[0])
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        acquired: Set[str] = set()
        for item in node.items:
            acquired |= self._locks_in_expr(item.context_expr)
        added = acquired - self.held
        self.held |= added
        self.generic_visit(node)
        self.held -= added

    def _check_name(self, name: str, node: ast.AST) -> None:
        entry = self.scope.guarded.get(name)
        if entry is None:
            return
        lock, _decl = entry
        if lock in self.held:
            return
        where = (
            f"{self.scope.label}.{self.func_name}"
            if self.scope.is_class
            else self.func_name
        )
        self.findings.append(
            Finding(
                rule="SKY101",
                path=self.module.rel,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    f"access to '{name}' outside 'with {lock}' in {where} "
                    f"(declared guarded-by: {lock})"
                ),
            )
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            self.scope.is_class
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            self._check_name(node.attr, node)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if not self.scope.is_class:
            self._check_name(node.id, node)
        self.generic_visit(node)


def _iter_functions(
    scope: _Scope,
) -> Iterator[Tuple[str, ast.AST]]:
    body = (
        scope.node.body
        if isinstance(scope.node, (ast.ClassDef, ast.Module))
        else []
    )
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node


def _check_scope(module: ModuleInfo, scope: _Scope) -> Iterator[Finding]:
    # SKY102: annotation naming a lock that does not exist in the scope.
    names_in_scope: Set[str] = set()
    for sub in ast.walk(scope.node):
        if scope.is_class:
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                names_in_scope.add(sub.attr)
        elif isinstance(sub, ast.Name):
            names_in_scope.add(sub.id)
    for attr, (lock, decl_line) in sorted(scope.guarded.items()):
        if lock not in names_in_scope:
            yield Finding(
                rule="SKY102",
                path=module.rel,
                line=decl_line,
                col=1,
                message=(
                    f"'{attr}' declared guarded-by '{lock}' but no such "
                    f"lock exists in {scope.label}"
                ),
            )
    for func_name, func in _iter_functions(scope):
        if scope.is_class and func_name in CONSTRUCTORS:
            continue
        checker = _AccessChecker(
            module, scope, func_name, _holds_locks(module, func)
        )
        for stmt in func.body:
            checker.visit(stmt)
        yield from checker.findings


@rule(
    "SKY101",
    "lock-discipline",
    "guarded-by-annotated state accessed outside its declared lock",
)
def check_lock_discipline(ctx: LintContext) -> Iterator[Finding]:
    for module in ctx.modules:
        if "guarded-by" not in module.source:
            continue
        for scope in _collect_scopes(module):
            for finding in _check_scope(module, scope):
                if finding.rule == "SKY101":
                    yield finding


@rule(
    "SKY102",
    "lock-annotation",
    "guarded-by annotation names a lock that does not exist",
)
def check_lock_annotations(ctx: LintContext) -> Iterator[Finding]:
    for module in ctx.modules:
        if "guarded-by" not in module.source:
            continue
        for scope in _collect_scopes(module):
            for finding in _check_scope(module, scope):
                if finding.rule == "SKY102":
                    yield finding
