"""The AST lint engine: rule registry, findings, suppressions, reporters.

A *rule* is a function registered with the :func:`rule` decorator; it
receives a :class:`LintContext` (every parsed module under ``src/repro``
plus a few data files like the agreement-test suite) and yields
:class:`Finding` records.  Rules are cross-module by design — the
invariants they check (injection-point registry, kernel/oracle parity)
span files.

Suppression layers, innermost first:

* **inline** — a ``# skyup: ignore[SKY101]`` comment on the finding's
  line (or ``# skyup: ignore`` to silence every rule there).  Use it for
  documented, deliberate exceptions — e.g. the lock-free fast-path read
  in :mod:`repro.kernels.switch`.
* **baseline** — a JSON file of known findings (``--baseline``); matched
  by ``(rule, path, message)`` so findings survive unrelated line drift.
  Use it to adopt a rule before paying down its backlog.

``skyup lint`` exits non-zero when any finding survives both layers.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import ConfigurationError

#: Repo-relative directory the engine lints.
SOURCE_ROOT = "src/repro"

#: Inline suppression marker (optionally followed by ``[RULE1,RULE2]``).
SUPPRESS_MARK = "# skyup: ignore"


@dataclass(frozen=True)
class Finding:
    """One lint finding, pinned to a rule id and a file:line location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching (line numbers drift)."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        """The canonical one-line text rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source module handed to every rule."""

    path: Path
    rel: str
    source: str
    tree: ast.Module

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()

    def line(self, lineno: int) -> str:
        """1-based source line (empty string when out of range)."""
        lines = self.lines
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""


class LintContext:
    """Everything a rule may look at: parsed modules plus data files."""

    def __init__(
        self,
        root: Path,
        modules: List[ModuleInfo],
        cache_dir: Optional[Path] = None,
    ):
        self.root = root
        self.modules = modules
        #: Summary-cache directory for the deep (interprocedural) rules;
        #: None disables persistence.  The deep rule pack memoizes its
        #: shared analysis on the context and reports cache temperature
        #: here for the CLI to surface.
        self.cache_dir = cache_dir
        self.flow_stats: Dict[str, object] = {}
        self._by_rel = {m.rel: m for m in modules}

    def module(self, rel: str) -> Optional[ModuleInfo]:
        """The module at repo-relative posix path ``rel``, or None."""
        return self._by_rel.get(rel)

    def read_text(self, rel: str) -> Optional[str]:
        """Raw text of any repo file (for non-linted data like tests)."""
        path = self.root / rel
        try:
            return path.read_text()
        except OSError:
            return None


RuleFunc = Callable[[LintContext], Iterator[Finding]]


@dataclass(frozen=True)
class RuleInfo:
    """Registry entry: a stable id, a human name, and the check itself.

    ``deep`` marks interprocedural rules (the SKY1000 family) that run
    only under ``skyup lint --deep`` — they cost a whole-program
    fixpoint, so the default fast path skips them.  Explicitly selecting
    a deep rule with ``--select`` also runs it.
    """

    rule_id: str
    name: str
    doc: str
    func: RuleFunc
    deep: bool = False


_REGISTRY: Dict[str, RuleInfo] = {}


def rule(
    rule_id: str, name: str, doc: str, deep: bool = False
) -> Callable[[RuleFunc], RuleFunc]:
    """Register a rule function under ``rule_id`` / ``name``."""

    def register(func: RuleFunc) -> RuleFunc:
        if rule_id in _REGISTRY:
            raise ConfigurationError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = RuleInfo(rule_id, name, doc, func, deep)
        return func

    return register


def iter_rules() -> List[RuleInfo]:
    """Every registered rule, in rule-id order (imports the rule pack)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def _select_rules(
    select: Optional[Iterable[str]], deep: bool = False
) -> List[RuleInfo]:
    rules = iter_rules()
    if not select:
        return [r for r in rules if deep or not r.deep]
    wanted = {token.strip() for token in select if token.strip()}
    known = {r.rule_id for r in rules} | {r.name for r in rules}
    unknown = sorted(wanted - known)
    if unknown:
        raise ConfigurationError(
            f"unknown rule selector(s) {', '.join(unknown)}; known: "
            f"{', '.join(sorted(known))}"
        )
    return [r for r in rules if r.rule_id in wanted or r.name in wanted]


def collect_modules(root: Path) -> List[ModuleInfo]:
    """Parse every python module under ``root/src/repro``.

    Raises:
        ConfigurationError: the tree is missing or a module fails to
            parse (a syntax error is a finding-stopper, not a finding).
    """
    src = root / SOURCE_ROOT
    if not src.is_dir():
        raise ConfigurationError(
            f"no {SOURCE_ROOT} directory under {root}; run from the repo "
            "root or pass --root"
        )
    modules: List[ModuleInfo] = []
    for path in sorted(src.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            raise ConfigurationError(f"{rel}: cannot parse: {exc}") from exc
        modules.append(ModuleInfo(path, rel, source, tree))
    return modules


def _suppression_matches(line: str, rule_id: str) -> bool:
    mark = line.find(SUPPRESS_MARK)
    if mark < 0:
        return False
    spec = line[mark + len(SUPPRESS_MARK):].strip()
    if not spec.startswith("["):
        return True  # blanket ignore
    listed = spec[1:spec.find("]")] if "]" in spec else spec[1:]
    rules = {token.strip() for token in listed.split(",")}
    return rule_id in rules


def _suppressed(finding: Finding, ctx: LintContext) -> bool:
    module = ctx.module(finding.path)
    if module is None:
        return False
    if _suppression_matches(module.line(finding.line), finding.rule):
        return True
    # A comment-only line directly above also suppresses (for accesses
    # on lines too long to carry a trailing marker).
    above = module.line(finding.line - 1).strip()
    return above.startswith("#") and _suppression_matches(
        above, finding.rule
    )


def run_lint(
    root: Path,
    select: Optional[Iterable[str]] = None,
    baseline: Optional[Iterable[Finding]] = None,
    deep: bool = False,
    cache_dir: Optional[Path] = None,
    ctx_out: Optional[List[LintContext]] = None,
) -> List[Finding]:
    """Run the selected rules over the repo at ``root``.

    ``deep=True`` adds the interprocedural SKY1000 family (see
    :mod:`repro.analysis.flow`); ``cache_dir`` points its summary cache
    somewhere persistent.  ``ctx_out``, when given, receives the
    :class:`LintContext` so callers can inspect ``flow_stats``.

    Returns the unsuppressed findings (inline suppressions and the
    ``baseline`` set already subtracted), sorted by path/line/rule.
    """
    ctx = LintContext(root, collect_modules(root), cache_dir=cache_dir)
    if ctx_out is not None:
        ctx_out.append(ctx)
    known = {f.baseline_key() for f in baseline} if baseline else set()
    findings: List[Finding] = []
    for info in _select_rules(select, deep=deep):
        for finding in info.func(ctx):
            if _suppressed(finding, ctx):
                continue
            if finding.baseline_key() in known:
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# -- baseline persistence -----------------------------------------------------


def load_baseline(path: Path) -> List[Finding]:
    """Read a baseline file written by :func:`save_baseline`.

    Raises:
        ConfigurationError: the file is missing or malformed.
    """
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"malformed baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(
        payload.get("findings"), list
    ):
        raise ConfigurationError(
            f"malformed baseline {path}: expected {{'findings': [...]}}"
        )
    out: List[Finding] = []
    for item in payload["findings"]:
        try:
            out.append(
                Finding(
                    rule=item["rule"],
                    path=item["path"],
                    line=int(item.get("line", 0)),
                    col=int(item.get("col", 0)),
                    message=item["message"],
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed baseline entry in {path}: {item!r}"
            ) from exc
    return out


def save_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write ``findings`` as the new baseline at ``path``."""
    payload = {
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in findings
        ]
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# -- reporters ----------------------------------------------------------------


def format_text(findings: List[Finding]) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per line."""
    lines = [f.format() for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def _gha_escape(value: str) -> str:
    """Escape a workflow-command property/message per GitHub's rules."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )


def format_github(findings: List[Finding]) -> str:
    """GitHub Actions workflow commands: one ``::error`` per finding.

    Emitted on stdout during a workflow run, these render as inline
    annotations on the PR diff.  A trailing count line keeps the log
    self-describing (GitHub ignores non-command lines).
    """
    lines = [
        "::error file={path},line={line},col={col},title={title}::{msg}".format(
            path=_gha_escape(f.path),
            line=f.line,
            col=f.col,
            title=_gha_escape(f.rule),
            msg=_gha_escape(f"{f.rule} {f.message}"),
        )
        for f in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def format_json(findings: List[Finding]) -> str:
    """Machine-readable report (stable key order, trailing count)."""
    return json.dumps(
        {
            "count": len(findings),
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                }
                for f in findings
            ],
        },
        indent=2,
        sort_keys=True,
    )
