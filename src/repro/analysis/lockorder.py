"""Dynamic lock-order witness: records acquisitions, fails on cycles.

``pytest-timeout`` turns a deadlock into a dead job with a stack dump;
this module turns the *potential* for one into a diagnosis.  A
:class:`LockOrderWitness` wraps the locks of interest in thin recording
proxies.  Every wrapped acquisition while other wrapped locks are held
adds edges ``held -> acquired`` to a process-wide order graph; a cycle
in that graph is a lock-order inversion — two threads interleaving those
paths can deadlock, even if this run happened not to.

The proxies delegate to the *original* primitives, so instrumenting a
live object mid-flight is safe: a worker blocked in ``cond.wait()``
before instrumentation is woken by a ``notify`` routed through the
proxy, because both touch the same underlying condition.

Recording costs one thread-local list append per acquisition, so the
witness is cheap enough to leave on for a whole suite (the chaos CI job
runs with ``SKYUP_LOCK_WITNESS=1``).  ``wait()`` on a wrapped condition
is modelled as release + reacquire — exactly its locking semantics —
so blocking in a wait does not fabricate ordering edges.

Example::

    witness = LockOrderWitness()
    a = witness.wrap_lock(threading.Lock(), "a")
    b = witness.wrap_lock(threading.Lock(), "b")
    with a:
        with b:
            pass
    with b:
        with a:   # inversion: the graph now has a <-> b
            pass
    witness.check()   # raises LockOrderError naming the cycle
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.exceptions import LockOrderError

Edge = Tuple[str, str]


class _Proxy:
    """Shared bookkeeping for every lock-like wrapper."""

    def __init__(self, witness: "LockOrderWitness", name: str):
        self._witness = witness
        self._name = name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._name!r})"


class InstrumentedLock(_Proxy):
    """A recording proxy around a ``threading.Lock``-like object."""

    def __init__(
        self, witness: "LockOrderWitness", name: str, lock: object
    ):
        super().__init__(witness, name)
        self._lock = lock

    def acquire(self, *args: object, **kwargs: object) -> bool:
        got = self._lock.acquire(*args, **kwargs)
        if got:
            self._witness.note_acquired(self._name)
        return got

    def release(self) -> None:
        self._witness.note_released(self._name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class InstrumentedCondition(_Proxy):
    """A recording proxy around a ``threading.Condition``.

    ``wait`` releases and reacquires the underlying lock; the witness
    mirrors that so time spent blocked never counts as holding the lock.
    """

    def __init__(
        self,
        witness: "LockOrderWitness",
        name: str,
        cond: threading.Condition,
    ):
        super().__init__(witness, name)
        self._cond = cond

    def acquire(self, *args: object, **kwargs: object) -> bool:
        got = self._cond.acquire(*args, **kwargs)
        if got:
            self._witness.note_acquired(self._name)
        return got

    def release(self) -> None:
        self._witness.note_released(self._name)
        self._cond.release()

    def wait(self, timeout: Optional[float] = None) -> bool:
        self._witness.note_released(self._name)
        try:
            return self._cond.wait(timeout)
        finally:
            self._witness.note_acquired(self._name)

    def wait_for(self, predicate, timeout: Optional[float] = None) -> bool:
        self._witness.note_released(self._name)
        try:
            return self._cond.wait_for(predicate, timeout)
        finally:
            self._witness.note_acquired(self._name)

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def __enter__(self) -> "InstrumentedCondition":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class InstrumentedRWLock(_Proxy):
    """A recording proxy around :class:`repro.serve.pool.ReadWriteLock`.

    Read and write acquisitions are one node in the order graph: for
    deadlock *ordering* purposes what matters is that the primitive can
    block, not which mode blocked.
    """

    def __init__(self, witness: "LockOrderWitness", name: str, rw: object):
        super().__init__(witness, name)
        self._rw = rw

    def read_locked(self) -> Iterator[None]:
        return self._locked(self._rw.read_locked())

    def write_locked(self) -> Iterator[None]:
        return self._locked(self._rw.write_locked())

    def _locked(self, inner) -> Iterator[None]:
        witness, name = self._witness, self._name

        class _Ctx:
            def __enter__(ctx) -> None:  # noqa: N805 - nested helper
                inner.__enter__()
                witness.note_acquired(name)

            def __exit__(ctx, *exc_info: object) -> None:  # noqa: N805
                witness.note_released(name)
                inner.__exit__(*exc_info)

        return _Ctx()


class LockOrderWitness:
    """The process-wide acquisition-order graph and its cycle check."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._edges: Dict[Edge, int] = {}  # guarded-by: _lock
        self._acquisitions = 0  # guarded-by: _lock

    # -- recording ------------------------------------------------------------

    def _held(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def note_acquired(self, name: str) -> None:
        """Record that the calling thread now holds ``name``."""
        stack = self._held()
        with self._lock:
            self._acquisitions += 1
            for held in stack:
                if held != name:
                    edge = (held, name)
                    self._edges[edge] = self._edges.get(edge, 0) + 1
        stack.append(name)

    def note_released(self, name: str) -> None:
        """Record that the calling thread released ``name``."""
        stack = self._held()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                return

    # -- wrapping -------------------------------------------------------------

    def wrap_lock(self, lock: object, name: str) -> InstrumentedLock:
        """Wrap a mutex-like object (``acquire``/``release``)."""
        return InstrumentedLock(self, name, lock)

    def wrap_condition(
        self, cond: threading.Condition, name: str
    ) -> InstrumentedCondition:
        """Wrap a condition variable (``wait`` modelled as release)."""
        return InstrumentedCondition(self, name, cond)

    def wrap_rwlock(self, rw: object, name: str) -> InstrumentedRWLock:
        """Wrap a readers-writer lock exposing ``read_locked``/``write_locked``."""
        return InstrumentedRWLock(self, name, rw)

    # -- analysis -------------------------------------------------------------

    def edges(self) -> Dict[Edge, int]:
        """Observed ``held -> acquired`` edges with occurrence counts."""
        with self._lock:
            return dict(self._edges)

    def acquisitions(self) -> int:
        """Total wrapped acquisitions recorded (sanity signal for tests)."""
        with self._lock:
            return self._acquisitions

    def cycles(self) -> List[List[str]]:
        """Every elementary cycle in the order graph (shortest first).

        An empty list means every observed acquisition respected one
        global order — no deadlock is constructible from the witnessed
        paths.
        """
        graph: Dict[str, Set[str]] = {}
        for src, dst in self.edges():
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        out: List[List[str]] = []
        seen_cycles: Set[Tuple[str, ...]] = set()

        def dfs(start: str, node: str, path: List[str]) -> None:
            for nxt in sorted(graph.get(node, ())):
                if nxt == start:
                    cycle = path[:]
                    anchor = cycle.index(min(cycle))
                    canonical = tuple(cycle[anchor:] + cycle[:anchor])
                    if canonical not in seen_cycles:
                        seen_cycles.add(canonical)
                        out.append(list(canonical))
                elif nxt not in path and nxt > start:
                    # Only explore nodes ordered after the start so each
                    # cycle is discovered from its smallest node once.
                    dfs(start, nxt, path + [nxt])

        for node in sorted(graph):
            dfs(node, node, [node])
        out.sort(key=lambda c: (len(c), c))
        return out

    def check(self) -> None:
        """Raise :class:`LockOrderError` if any ordering cycle was seen."""
        cycles = self.cycles()
        if not cycles:
            return
        rendered = "; ".join(
            " -> ".join(cycle + [cycle[0]]) for cycle in cycles
        )
        raise LockOrderError(
            f"lock-order inversion witnessed ({len(cycles)} cycle(s)): "
            f"{rendered}.  Two threads interleaving these acquisition "
            f"paths can deadlock."
        )


def instrument_engine(engine, witness: LockOrderWitness) -> None:
    """Swap an :class:`UpgradeEngine`'s locks for recording proxies.

    Covers every lock the serving stack can hold concurrently: the
    readers-writer lock, both cache locks, the metrics lock, the pool's
    condition, the guard locks, and the engine's counter locks.  Safe on
    a live engine — proxies delegate to the original primitives (see the
    module docstring), and every member re-reads its lock attribute per
    operation rather than capturing it.
    """
    engine._rw = witness.wrap_rwlock(engine._rw, "engine._rw")
    engine._extern_lock = witness.wrap_lock(
        engine._extern_lock, "engine._extern_lock"
    )
    engine._guard_stats_lock = witness.wrap_lock(
        engine._guard_stats_lock, "engine._guard_stats_lock"
    )
    engine.skyline_cache._lock = witness.wrap_lock(
        engine.skyline_cache._lock, "skyline_cache._lock"
    )
    engine.topk_cache._lock = witness.wrap_lock(
        engine.topk_cache._lock, "topk_cache._lock"
    )
    engine._metrics._lock = witness.wrap_lock(
        engine._metrics._lock, "metrics._lock"
    )
    engine.kernel_guard._lock = witness.wrap_lock(
        engine.kernel_guard._lock, "kernel_guard._lock"
    )
    engine.index_guard._lock = witness.wrap_lock(
        engine.index_guard._lock, "index_guard._lock"
    )
    if engine._pool is not None:
        engine._pool._cond = witness.wrap_condition(
            engine._pool._cond, "pool._cond"
        )
