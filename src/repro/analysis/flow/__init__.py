"""Interprocedural concurrency dataflow over the repo's AST.

The lexical lock rules (SKY101/102) see one function at a time; this
package sees the whole program.  It builds, per module, a *summary* of
every function — which locks it acquires (``with`` blocks, lock
aliases, ``ExitStack.enter_context``, read/write modes of the
readers-writer lock), which shared attributes it reads and writes under
which locks, which calls it makes, which blocking primitives it touches,
and how deadline values flow through its calls — then runs three
fixpoint analyses over the call graph:

* **entry locks** — the set of locks *every* caller holds at a call
  site, intersected over all call sites, so a helper that is only ever
  invoked under ``self._lock`` is analyzed as holding it (the
  RacerD-style ownership transfer that makes cross-function guarded
  access sound to check);
* **blocking reachability** — whether a queue receive, process join,
  sleep, or injected-fault point is reachable from a function through
  any chain of resolved calls (SKY1004);
* **RPC reachability** — whether a shard RPC (``ShardProcess.submit`` /
  ``request``) is reachable, used to demand that deadline parameters
  are threaded through every call on such paths (SKY1005).

On top of the facts, guard *inference*: for each shared mutable class
attribute the analysis votes across all of its accesses — the lock held
at a majority of them is the inferred guard, and the minority accesses
are the race reports (SKY1001/1002).  Hand-written ``# guarded-by:``
annotations are cross-checked against the inferred facts (SKY1003).

Summaries are pure data (JSON-serializable) and cached per file keyed
by content hash (:mod:`repro.analysis.flow.cache`), so incremental and
warm runs skip extraction entirely — ``skyup lint --deep`` reports the
cache temperature on stderr.

Module map: :mod:`~repro.analysis.flow.model` (summary records),
:mod:`~repro.analysis.flow.extract` (AST -> summaries),
:mod:`~repro.analysis.flow.callgraph` (symbol table + resolution),
:mod:`~repro.analysis.flow.analysis` (fixpoints + inference),
:mod:`~repro.analysis.flow.cache` (content-hash summary cache).  The
SKY1001-1005 rules themselves live in
:mod:`repro.analysis.rules.flowrules`.
"""

from __future__ import annotations

from repro.analysis.flow.analysis import FlowFacts, analyze
from repro.analysis.flow.cache import FlowCache
from repro.analysis.flow.callgraph import CallGraph, build_call_graph
from repro.analysis.flow.extract import extract_module
from repro.analysis.flow.model import (
    Access,
    BlockSite,
    CallRec,
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
)

__all__ = [
    "Access",
    "BlockSite",
    "CallGraph",
    "CallRec",
    "ClassSummary",
    "FlowCache",
    "FlowFacts",
    "FunctionSummary",
    "ModuleSummary",
    "analyze",
    "build_call_graph",
    "extract_module",
]
