"""Content-hash summary cache for warm ``skyup lint --deep`` runs.

Two levels, both under one directory (default ``.skyup-cache/``):

* ``summaries.json`` — per-file :class:`ModuleSummary` records keyed by
  the file's SHA-256.  Editing one file re-extracts only that file; the
  fixpoint re-runs (it is whole-program) but extraction dominates cold
  time.
* ``findings.json`` — the finished finding list keyed by a global hash
  over every ``(rel, sha)`` pair plus the analysis version.  An
  untouched tree skips extraction *and* the fixpoint: the warm path is
  hash-everything + one JSON load.

Corruption and schema drift degrade to a cold run, never an error — the
cache is an accelerator, not a source of truth.  Writes go through a
same-directory temp file + ``os.replace`` so a crashed run cannot leave
a torn JSON behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.flow.model import SCHEMA_VERSION, ModuleSummary

#: Bump to invalidate cached *findings* when rule logic changes without
#: a summary schema change.
ANALYSIS_VERSION = 1


def source_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def tree_key(hashes: Dict[str, str]) -> str:
    """Global cache key over every file's content hash."""
    digest = hashlib.sha256()
    digest.update(f"v{SCHEMA_VERSION}.{ANALYSIS_VERSION}".encode())
    for rel in sorted(hashes):
        digest.update(f"{rel}={hashes[rel]}\n".encode())
    return digest.hexdigest()


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class FlowCache:
    """Load-on-construct, explicit :meth:`save`; never raises on I/O."""

    def __init__(self, cache_dir: Optional[Path]):
        self.dir = cache_dir
        self.summary_hits = 0
        self.summary_misses = 0
        self._summaries: Dict[str, dict] = {}
        self._findings: Optional[dict] = None
        self._dirty = False
        if cache_dir is None:
            return
        self._summaries = self._load(cache_dir / "summaries.json") or {}
        self._findings = self._load(cache_dir / "findings.json")

    @staticmethod
    def _load(path: Path) -> Optional[dict]:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    # -- per-file summaries --------------------------------------------

    def summary(self, rel: str, sha: str) -> Optional[ModuleSummary]:
        entry = self._summaries.get(rel)
        if entry is None or entry.get("sha") != sha:
            self.summary_misses += 1
            return None
        try:
            out = ModuleSummary.from_dict(entry["summary"])
        except (KeyError, TypeError, ValueError):
            self.summary_misses += 1
            return None
        self.summary_hits += 1
        return out

    def put_summary(
        self, rel: str, sha: str, summary: ModuleSummary
    ) -> None:
        self._summaries[rel] = {
            "sha": sha, "summary": summary.to_dict()
        }
        self._dirty = True

    # -- whole-tree findings -------------------------------------------

    def findings(self, key: str) -> Optional[List[dict]]:
        doc = self._findings
        if (
            doc is None
            or doc.get("key") != key
            or not isinstance(doc.get("findings"), list)
        ):
            return None
        return doc["findings"]

    def put_findings(self, key: str, findings: List[dict]) -> None:
        self._findings = {"key": key, "findings": findings}
        self._dirty = True

    # -- persistence ----------------------------------------------------

    def save(self) -> None:
        if self.dir is None or not self._dirty:
            return
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            _atomic_write(
                self.dir / "summaries.json",
                json.dumps(self._summaries, sort_keys=True),
            )
            if self._findings is not None:
                _atomic_write(
                    self.dir / "findings.json",
                    json.dumps(self._findings, sort_keys=True),
                )
        except OSError:
            pass  # read-only checkout: run cold every time
        self._dirty = False
