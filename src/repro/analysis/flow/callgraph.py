"""Symbol table and call resolution over module summaries.

Resolution is deliberately conservative: an edge exists only when the
callee can be named with confidence — ``self.m()`` to a method of the
same class, a bare name to a module-level function or an import
(re-exports followed through package ``__init__`` import tables), or an
``obj.m()`` method call when exactly one class in the whole tree
defines ``m`` and the name is not on the generic blocklist (``get``,
``put``, ``items``... — names stdlib containers share).  Unresolved
calls simply contribute no edge, which under-approximates reachability
(fine for warning rules: silence, never false noise) and
over-approximates entry-lock intersections only at true roots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.flow.model import (
    CallRec,
    FunctionSummary,
    ModuleSummary,
)

#: Method names too generic for unique-definition resolution: a single
#: repo class defining ``get`` must not swallow every dict ``.get``.
GENERIC_METHODS = frozenset(
    {
        "get", "put", "items", "keys", "values", "join", "wait",
        "set", "clear", "release", "acquire", "send", "recv", "close",
        "copy", "append", "update", "pop", "add", "remove", "start",
        "run", "read", "write", "format",
    }
)

#: Follow at most this many import hops when chasing re-exports.
MAX_IMPORT_HOPS = 5


@dataclass
class CallGraph:
    """Resolved view of the program: functions, edges, reverse edges."""

    functions: Dict[str, FunctionSummary]
    modules: Dict[str, ModuleSummary]  # dotted name -> summary
    module_of: Dict[str, ModuleSummary]  # function qname -> its module
    # (caller qname, call record, callee qname) — resolved edges only.
    edges: List[Tuple[str, CallRec, str]] = field(default_factory=list)
    callers: Dict[str, List[Tuple[str, CallRec]]] = field(
        default_factory=dict
    )
    outgoing: Dict[str, List[Tuple[CallRec, str]]] = field(
        default_factory=dict
    )


def build_call_graph(summaries: List[ModuleSummary]) -> CallGraph:
    functions: Dict[str, FunctionSummary] = {}
    modules: Dict[str, ModuleSummary] = {}
    module_of: Dict[str, ModuleSummary] = {}
    by_method: Dict[str, List[str]] = {}

    for msum in summaries:
        modules[msum.mod] = msum
        for fn in msum.functions:
            functions[fn.qname] = fn
            module_of[fn.qname] = msum
            if fn.cls is not None and "<locals>" not in fn.qname:
                by_method.setdefault(fn.name, []).append(fn.qname)

    graph = CallGraph(functions, modules, module_of)

    def resolve_ext(dotted: str, hops: int = 0) -> Optional[str]:
        """Chase a dotted target through import tables to a function."""
        if hops > MAX_IMPORT_HOPS:
            return None
        if dotted in functions:
            return dotted
        head, _, tail = dotted.rpartition(".")
        if not head:
            return None
        msum = modules.get(head)
        if msum is not None:
            if tail in msum.classes:
                ctor = f"{dotted}.__init__"
                return ctor if ctor in functions else None
            target = msum.imports.get(tail)
            if target is not None and target != dotted:
                return resolve_ext(target, hops + 1)
            return None
        # head may itself be re-exported (pkg alias); one more hop up.
        resolved_head = None
        h2, _, t2 = head.rpartition(".")
        if h2 and h2 in modules:
            resolved_head = modules[h2].imports.get(t2)
        if resolved_head and resolved_head != head:
            return resolve_ext(f"{resolved_head}.{tail}", hops + 1)
        return None

    def resolve_unique(method: str) -> Optional[str]:
        if method in GENERIC_METHODS:
            return None
        qnames = by_method.get(method)
        if qnames is not None and len(qnames) == 1:
            return qnames[0]
        return None

    def resolve(fn: FunctionSummary, msum: ModuleSummary,
                rec: CallRec) -> Optional[str]:
        kind, name = rec.form
        if kind == "self":
            if fn.cls is not None:
                cls = msum.classes.get(fn.cls)
                if cls is not None and name in cls.methods:
                    return f"{msum.mod}.{fn.cls}.{name}"
            return resolve_unique(name)  # inherited / mixin methods
        if kind == "ext":
            if name in msum.func_names:
                return f"{msum.mod}.{name}"
            target = msum.imports.get(name)
            if target is not None:
                return resolve_ext(target)
            return None
        if kind == "dotted":
            recv, _, attr = name.partition(".")
            target = msum.imports.get(recv)
            if target is not None:
                return resolve_ext(f"{target}.{attr}")
            return resolve_unique(attr)  # obj.m() on a local variable
        if kind == "method":
            return resolve_unique(name)
        return None

    for msum in summaries:
        for fn in msum.functions:
            for rec in fn.calls:
                callee = resolve(fn, msum, rec)
                if callee is None or callee == fn.qname:
                    continue
                graph.edges.append((fn.qname, rec, callee))
                graph.callers.setdefault(callee, []).append(
                    (fn.qname, rec)
                )
                graph.outgoing.setdefault(fn.qname, []).append(
                    (rec, callee)
                )
    return graph
