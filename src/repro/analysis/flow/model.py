"""Serializable summary records for the interprocedural flow analysis.

Everything in this module is pure data: plain dataclasses of strings,
ints, and tuples, with lossless ``to_dict``/``from_dict`` round-trips.
That property is load-bearing — summaries are cached to disk keyed by
file content hash (:mod:`repro.analysis.flow.cache`), so a warm
``skyup lint --deep`` deserializes these records instead of re-walking
the AST.

Lock symbols
------------

Locks are tracked as canonical strings so that the same lock object
compares equal across functions, classes, and modules:

``repro.shard.engine.ShardedUpgradeEngine#_rw@write``
    instance attribute ``self._rw`` of that class, held in write mode
    (``@read`` for the shared mode; no suffix for plain mutexes).

``repro.core.registry#_LOCK``
    a module-level lock object.

Write mode implies read mode; callers should compare held-sets through
:func:`expand_locks` which performs that closure.  ``@read`` symbols
are *shared* (non-exclusive): rules that care about exclusivity (e.g.
blocking-under-lock) filter them out via :func:`is_exclusive`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Bump when the summary layout or extraction semantics change; the
#: cache includes this in every key so stale summaries self-invalidate.
SCHEMA_VERSION = 1

READ_SUFFIX = "@read"
WRITE_SUFFIX = "@write"


def lock_base(sym: str) -> str:
    """``Cls#_rw@write`` -> ``Cls#_rw`` (strip the mode suffix)."""
    for suffix in (READ_SUFFIX, WRITE_SUFFIX):
        if sym.endswith(suffix):
            return sym[: -len(suffix)]
    return sym


def is_exclusive(sym: str) -> bool:
    """True unless the symbol is a shared (read-mode) acquisition."""
    return not sym.endswith(READ_SUFFIX)


def expand_locks(locks: Iterable[str]) -> frozenset:
    """Close a held-set under "write implies read"."""
    out = set()
    for sym in locks:
        out.add(sym)
        if sym.endswith(WRITE_SUFFIX):
            out.add(lock_base(sym) + READ_SUFFIX)
    return frozenset(out)


def short_lock(sym: str) -> str:
    """Human-readable form for messages: ``_rw[write]``, ``_lock``."""
    name = sym.rsplit("#", 1)[-1]
    for suffix, mode in ((READ_SUFFIX, "read"), (WRITE_SUFFIX, "write")):
        if name.endswith(suffix):
            return f"{name[:-len(suffix)]}[{mode}]"
    return name


@dataclass(frozen=True)
class Access:
    """One read or write of ``self.<attr>`` inside a function."""

    attr: str
    kind: str  # "read" | "write"
    line: int
    col: int
    locks: Tuple[str, ...]  # lexically held at the access site

    def to_dict(self) -> dict:
        return {
            "attr": self.attr,
            "kind": self.kind,
            "line": self.line,
            "col": self.col,
            "locks": list(self.locks),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Access":
        return cls(
            attr=d["attr"],
            kind=d["kind"],
            line=d["line"],
            col=d["col"],
            locks=tuple(d["locks"]),
        )


@dataclass(frozen=True)
class CallRec:
    """One call expression, with enough shape to resolve it later.

    ``form`` is a 2-tuple describing how the callee was named:

    ``("local", f)``   — bare name defined at module level here
    ``("self", m)``    — ``self.m(...)`` inside a class
    ``("ext", dotted)`` — imported name / dotted module attribute
    ``("method", m)``  — ``obj.m(...)`` on an unknown receiver

    Deadline binding is pre-digested at extraction time (the extractor
    knows the function's tainted locals): ``pos_deadline[i]`` says
    whether positional argument *i* mentions a deadline-ish value, and
    ``kw_deadline`` the same per keyword.  ``star``/``kwstar`` record
    ``*args``/``**kw`` splats, which make the binding unknowable and
    therefore never reported.
    """

    line: int
    col: int
    form: Tuple[str, str]
    locks: Tuple[str, ...]
    rpc: bool = False  # textual shard-RPC site (.submit/.request)
    nargs: int = 0
    star: bool = False
    pos_deadline: Tuple[bool, ...] = ()
    kw_deadline: Tuple[Tuple[str, bool], ...] = ()
    kwstar: bool = False

    def to_dict(self) -> dict:
        return {
            "line": self.line,
            "col": self.col,
            "form": list(self.form),
            "locks": list(self.locks),
            "rpc": self.rpc,
            "nargs": self.nargs,
            "star": self.star,
            "pos_deadline": list(self.pos_deadline),
            "kw_deadline": [list(kv) for kv in self.kw_deadline],
            "kwstar": self.kwstar,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CallRec":
        return cls(
            line=d["line"],
            col=d["col"],
            form=(d["form"][0], d["form"][1]),
            locks=tuple(d["locks"]),
            rpc=d["rpc"],
            nargs=d["nargs"],
            star=d["star"],
            pos_deadline=tuple(d["pos_deadline"]),
            kw_deadline=tuple((k, v) for k, v in d["kw_deadline"]),
            kwstar=d["kwstar"],
        )


@dataclass(frozen=True)
class BlockSite:
    """A directly-blocking primitive: queue receive, join, sleep, ..."""

    line: int
    col: int
    kind: str  # "queue-receive" | "process-join" | "sleep" | "fault"
    detail: str
    locks: Tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "line": self.line,
            "col": self.col,
            "kind": self.kind,
            "detail": self.detail,
            "locks": list(self.locks),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BlockSite":
        return cls(
            line=d["line"],
            col=d["col"],
            kind=d["kind"],
            detail=d["detail"],
            locks=tuple(d["locks"]),
        )


@dataclass
class FunctionSummary:
    """Everything the interprocedural pass needs about one function."""

    qname: str  # repro.shard.engine.ShardedUpgradeEngine._scatter
    name: str
    cls: Optional[str]  # owning class name, None for module level
    line: int
    is_ctor: bool
    params: Tuple[str, ...]  # positional parameters, in order
    kwonly: Tuple[str, ...]
    deadline_params: Tuple[str, ...]
    holds: Tuple[str, ...]  # canonical locks from ``# holds-lock:``
    rpc_primitive: bool  # e.g. ShardProcess.submit/request
    accesses: List[Access] = field(default_factory=list)
    calls: List[CallRec] = field(default_factory=list)
    blocking: List[BlockSite] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "qname": self.qname,
            "name": self.name,
            "cls": self.cls,
            "line": self.line,
            "is_ctor": self.is_ctor,
            "params": list(self.params),
            "kwonly": list(self.kwonly),
            "deadline_params": list(self.deadline_params),
            "holds": list(self.holds),
            "rpc_primitive": self.rpc_primitive,
            "accesses": [a.to_dict() for a in self.accesses],
            "calls": [c.to_dict() for c in self.calls],
            "blocking": [b.to_dict() for b in self.blocking],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FunctionSummary":
        return cls(
            qname=d["qname"],
            name=d["name"],
            cls=d["cls"],
            line=d["line"],
            is_ctor=d["is_ctor"],
            params=tuple(d["params"]),
            kwonly=tuple(d["kwonly"]),
            deadline_params=tuple(d["deadline_params"]),
            holds=tuple(d["holds"]),
            rpc_primitive=d["rpc_primitive"],
            accesses=[Access.from_dict(a) for a in d["accesses"]],
            calls=[CallRec.from_dict(c) for c in d["calls"]],
            blocking=[BlockSite.from_dict(b) for b in d["blocking"]],
        )


@dataclass
class ClassSummary:
    """Per-class facts: methods, lock attributes, declared guards."""

    name: str
    line: int
    methods: Tuple[str, ...]
    locks: Tuple[str, ...]  # canonical lock symbols acquired anywhere
    lock_attrs: Tuple[str, ...]  # attr names that *are* locks
    # attr -> (declared guard symbol, annotation line)
    guards: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "methods": list(self.methods),
            "locks": list(self.locks),
            "lock_attrs": list(self.lock_attrs),
            "guards": {k: list(v) for k, v in self.guards.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ClassSummary":
        return cls(
            name=d["name"],
            line=d["line"],
            methods=tuple(d["methods"]),
            locks=tuple(d["locks"]),
            lock_attrs=tuple(d["lock_attrs"]),
            guards={k: (v[0], v[1]) for k, v in d["guards"].items()},
        )


@dataclass
class ModuleSummary:
    """All summaries for one source file, plus its import table."""

    rel: str  # src/repro/shard/engine.py
    mod: str  # repro.shard.engine
    imports: Dict[str, str]  # local alias -> dotted target
    func_names: Tuple[str, ...]  # module-level function names
    functions: List[FunctionSummary] = field(default_factory=list)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "rel": self.rel,
            "mod": self.mod,
            "imports": dict(self.imports),
            "func_names": list(self.func_names),
            "functions": [f.to_dict() for f in self.functions],
            "classes": {k: c.to_dict() for k, c in self.classes.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ModuleSummary":
        if d.get("schema") != SCHEMA_VERSION:
            raise ValueError("summary schema mismatch")
        return cls(
            rel=d["rel"],
            mod=d["mod"],
            imports=dict(d["imports"]),
            func_names=tuple(d["func_names"]),
            functions=[
                FunctionSummary.from_dict(f) for f in d["functions"]
            ],
            classes={
                k: ClassSummary.from_dict(c)
                for k, c in d["classes"].items()
            },
        )
