"""AST -> :class:`ModuleSummary` extraction (the analysis front end).

One pass per file, no cross-module knowledge: everything that needs the
whole program (call resolution, entry-lock inference) happens later in
:mod:`repro.analysis.flow.analysis` over the summaries.  Keeping the
front end local is what makes the content-hash cache sound — a file's
summary depends only on its own bytes.

Beyond the lexical ``with`` tracking that SKY101 does, the extractor
understands:

* lock *aliases*: ``lk = self._lock`` followed by ``with lk:``;
* ``contextlib.ExitStack.enter_context(lock)``, which holds the lock
  until the end of the function (a lexical approximation of the stack's
  dynamic extent);
* readers-writer modes: ``with self._rw.read_locked():`` produces the
  shared symbol ``...#_rw@read``, ``write_locked`` the exclusive
  ``...#_rw@write``;
* ``# holds-lock: _rw[write]`` annotations with an optional mode (a
  bare ``_rw`` on a lock that is elsewhere acquired in rw modes is
  normalized to ``@write``, the stronger claim).

Deadline taint is also computed here, because it is function-local:
parameters and locals whose names look deadline-ish (``deadline``,
``remaining``, ``timeout``, ``budget``...), closed over simple
assignments, plus any expression that calls a deadline *producer*
(``self._remaining(...)``, ``_rpc_window(...)``).  Each recorded call
pre-digests whether every argument mentions such a value, so the
interprocedural pass can check bindings without re-walking source.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.engine import ModuleInfo
from repro.analysis.flow.model import (
    Access,
    BlockSite,
    CallRec,
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
)

DEADLINE_RE = re.compile(
    r"deadline|remaining|timeout|budget|expir", re.IGNORECASE
)
HOLDS_RE = re.compile(
    r"#\s*holds-lock:\s*([A-Za-z_][A-Za-z0-9_]*)(?:\[(read|write)\])?"
)
GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Receiver-name shapes that make a ``.join()`` look like waiting on a
#: process or thread rather than ``str.join``.
JOINABLE_RE = re.compile(r"proc|process|thread|worker", re.IGNORECASE)

#: Fault-injection points that can stall the caller (injected latency),
#: as opposed to error-class points that raise and return immediately.
LATENCY_POINT_RE = re.compile(r"delay|sleep|latency|stall", re.IGNORECASE)

#: Fault-injection intrinsics: call edges into their implementation are
#: suppressed in favor of per-point site classification.
FAULT_INTRINSICS = frozenset({"maybe_inject", "maybe_corrupt"})

#: Method names that mutate their receiver in place; a lone ``Load`` of
#: ``self._queue`` in ``self._queue.append(x)`` is really a write.
MUTATORS = frozenset(
    {
        "append", "appendleft", "extend", "insert", "pop", "popleft",
        "remove", "clear", "update", "setdefault", "add", "discard",
        "sort", "reverse",
    }
)

CONSTRUCTORS = ("__init__", "__new__")
RPC_METHODS = frozenset({"submit", "request"})
RW_ACQUIRERS = {"read_locked": "@read", "write_locked": "@write"}


def module_name(rel: str) -> str:
    """``src/repro/shard/engine.py`` -> ``repro.shard.engine``."""
    parts = rel.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_shard_module(rel: str) -> bool:
    return rel.replace("\\", "/").startswith("src/repro/shard/")


def _collect_imports(tree: ast.Module, mod: str) -> Dict[str, str]:
    """Local alias -> fully dotted target, for call resolution."""
    out: Dict[str, str] = {}
    pkg_parts = mod.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else local
                out[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: anchor on this module's package.
                base = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                prefix = ".".join(base)
                if node.module:
                    prefix = f"{prefix}.{node.module}" if prefix else node.module
            else:
                prefix = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                out[local] = (
                    f"{prefix}.{alias.name}" if prefix else alias.name
                )
    return out


def _module_globals(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _mentions_deadline(expr: ast.AST, tainted: Set[str]) -> bool:
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name):
            if sub.id in tainted or DEADLINE_RE.search(sub.id):
                return True
        elif isinstance(sub, ast.Attribute):
            if DEADLINE_RE.search(sub.attr):
                return True
    return False


def _name_targets(target: ast.AST) -> List[str]:
    out: List[str] = []
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name):
            out.append(sub.id)
    return out


def _tainted_locals(func: ast.AST, params: List[str]) -> Set[str]:
    """Deadline-ish params plus locals assigned from deadline values."""
    tainted = {p for p in params if DEADLINE_RE.search(p)}
    for _ in range(2):  # two rounds for short transitive chains
        for node in ast.walk(func):
            value = None
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.AugAssign):
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.NamedExpr):
                value, targets = node.value, [node.target]
            if value is None:
                continue
            if _mentions_deadline(value, tainted):
                for target in targets:
                    tainted.update(_name_targets(target))
    return tainted


def _holds_annotations(
    module: ModuleInfo, func: ast.AST, mod: str, cls: Optional[str]
) -> List[str]:
    """Canonical lock symbols from ``# holds-lock`` on/above the def."""
    out: List[str] = []
    for lineno in (func.lineno, func.lineno - 1):
        if lineno < 1:
            continue
        for match in HOLDS_RE.finditer(module.line(lineno)):
            name, mode = match.group(1), match.group(2)
            if cls:
                sym = f"{mod}.{cls}#{name}"
            else:
                sym = f"{mod}#{name}"
            if mode:
                sym += f"@{mode}"
            out.append(sym)
    return out


class _FuncWalker(ast.NodeVisitor):
    """Walks one function body recording accesses/calls/blocking sites
    with the lexically-held lock set at each point."""

    def __init__(
        self,
        rel: str,
        mod: str,
        cls: Optional[str],
        module_globals: Set[str],
        tainted: Set[str],
    ):
        self.rel = rel
        self.mod = mod
        self.cls = cls
        self.module_globals = module_globals
        self.tainted = tainted
        self.held: Set[str] = set()
        self.sticky: Set[str] = set()  # ExitStack.enter_context locks
        self.aliases: Dict[str, str] = {}
        self.accesses: List[Access] = []
        self.calls: List[CallRec] = []
        self.blocking: List[BlockSite] = []

    # -- lock symbol helpers -------------------------------------------

    def _base_sym(self, expr: ast.AST) -> Optional[str]:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self.cls
        ):
            return f"{self.mod}.{self.cls}#{expr.attr}"
        if isinstance(expr, ast.Name):
            if expr.id in self.aliases:
                return self.aliases[expr.id]
            if expr.id in self.module_globals:
                return f"{self.mod}#{expr.id}"
        return None

    def _lock_syms(self, expr: ast.AST) -> Set[str]:
        """Canonical symbols a with-item / enter_context arg acquires."""
        if isinstance(expr, ast.Call):
            func = expr.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in RW_ACQUIRERS
            ):
                base = self._base_sym(func.value)
                if base:
                    return {base + RW_ACQUIRERS[func.attr]}
            return set()
        base = self._base_sym(expr)
        return {base} if base else set()

    def _held_now(self) -> Tuple[str, ...]:
        return tuple(sorted(self.held | self.sticky))

    # -- recording ------------------------------------------------------

    def _record_access(self, attr: str, kind: str, node: ast.AST) -> None:
        self.accesses.append(
            Access(
                attr=attr,
                kind=kind,
                line=node.lineno,
                col=node.col_offset + 1,
                locks=self._held_now(),
            )
        )

    def _self_attr(self, node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.cls
        ):
            return node.attr
        return None

    # -- statements -----------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        # Alias tracking: ``lk = self._lock`` (single Name target only;
        # anything fancier falls back to not-a-lock).
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            sym = self._base_sym(node.value)
            if sym is not None:
                self.aliases[node.targets[0].id] = sym
            else:
                self.aliases.pop(node.targets[0].id, None)
        self.visit(node.value)
        for target in node.targets:
            self.visit(target)

    def visit_With(self, node: ast.With) -> None:
        acquired: Set[str] = set()
        for item in node.items:
            acquired |= self._lock_syms(item.context_expr)
            self.visit(item.context_expr)
        added = acquired - self.held
        self.held |= added
        for stmt in node.body:
            self.visit(stmt)
        self.held -= added

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are extracted as their own summaries

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # runs later, not under the current lock set

    # -- expressions ----------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self._self_attr(node)
        if attr is not None:
            kind = (
                "write"
                if isinstance(node.ctx, (ast.Store, ast.Del))
                else "read"
            )
            self._record_access(attr, kind, node)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # ``self._pending[k] = v`` / ``del self._pending[k]``: the inner
        # attribute has Load ctx but the container is being mutated.
        attr = self._self_attr(node.value)
        if attr is not None and isinstance(node.ctx, (ast.Store, ast.Del)):
            self._record_access(attr, "write", node.value)
            self.visit(node.slice)
            return
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = self._self_attr(node.target)
        if attr is not None:
            self._record_access(attr, "write", node.target)
            self.visit(node.value)
            return
        self.generic_visit(node)

    # -- calls ----------------------------------------------------------

    def _call_form(self, func: ast.AST) -> Optional[Tuple[str, str]]:
        if isinstance(func, ast.Name):
            return ("ext", func.id)  # resolved against imports later
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                if func.value.id == "self":
                    return ("self", func.attr)
                return ("dotted", f"{func.value.id}.{func.attr}")
            return ("method", func.attr)
        return None

    def _classify_blocking(
        self, node: ast.Call
    ) -> Optional[Tuple[str, str]]:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None:
            return None
        if name == "sleep":
            return ("sleep", "sleep()")
        if name == "maybe_inject":
            point = ""
            if node.args and isinstance(node.args[0], ast.Constant):
                point = str(node.args[0].value)
            # Only latency-class points block; error-class points (e.g.
            # rtree.query raising TransientError) return immediately.
            if LATENCY_POINT_RE.search(point):
                return ("fault", f"fault-injection point '{point}'")
            return None
        if name == "get" and isinstance(func, ast.Attribute):
            if self._is_blocking_receive(node):
                return ("queue-receive", "blocking '.get()' receive")
        if name == "join" and isinstance(func, ast.Attribute):
            recv = func.value
            recv_name = None
            if isinstance(recv, ast.Name):
                recv_name = recv.id
            elif isinstance(recv, ast.Attribute):
                recv_name = recv.attr
            if recv_name and JOINABLE_RE.search(recv_name):
                return ("process-join", f"'{recv_name}.join()'")
        return None

    @staticmethod
    def _is_blocking_receive(node: ast.Call) -> bool:
        """Mirrors SKY901's queue-receive shape test."""
        if node.args:
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant) and first.value is True
            ):
                return False  # mapping-style .get(key[, default])
        for kw in node.keywords:
            if kw.arg == "block":
                if (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                ):
                    return False
        return True

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # ExitStack.enter_context(lock): held until end of function.
        if isinstance(func, ast.Attribute) and func.attr == "enter_context":
            if node.args:
                self.sticky |= self._lock_syms(node.args[0])
        blocking = self._classify_blocking(node)
        if blocking is not None:
            kind, detail = blocking
            self.blocking.append(
                BlockSite(
                    line=node.lineno,
                    col=node.col_offset + 1,
                    kind=kind,
                    detail=detail,
                    locks=self._held_now(),
                )
            )
        form = self._call_form(func)
        if form is not None and form[1] in FAULT_INTRINSICS:
            # Modeled by the site classification above: whether the
            # *point* is latency-class decides blocking, not the
            # generic implementation (which sleeps only for those).
            form = None
        if form is not None and form[1] not in RW_ACQUIRERS:
            rpc = (
                _is_shard_module(self.rel)
                and isinstance(func, ast.Attribute)
                and func.attr in RPC_METHODS
                and not (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                )
            )
            self.calls.append(
                CallRec(
                    line=node.lineno,
                    col=node.col_offset + 1,
                    form=form,
                    locks=self._held_now(),
                    rpc=rpc,
                    nargs=len(node.args),
                    star=any(
                        isinstance(a, ast.Starred) for a in node.args
                    ),
                    pos_deadline=tuple(
                        _mentions_deadline(a, self.tainted)
                        for a in node.args
                        if not isinstance(a, ast.Starred)
                    ),
                    kw_deadline=tuple(
                        (kw.arg, _mentions_deadline(kw.value, self.tainted))
                        for kw in node.keywords
                        if kw.arg is not None
                    ),
                    kwstar=any(
                        kw.arg is None for kw in node.keywords
                    ),
                )
            )
        # Visit receiver and arguments, but not the method name itself
        # (``self._send_sync(...)`` is a call, not a read of _send_sync).
        if isinstance(func, ast.Attribute):
            self.visit(func.value)
        else:
            self.visit(func)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def generic_visit(self, node: ast.AST) -> None:
        # Receivers of mutating method calls count as writes; detect via
        # the Call special-case above, so plain traversal here.
        super().generic_visit(node)


def _extract_function(
    module: ModuleInfo,
    func: ast.AST,
    qname: str,
    cls: Optional[str],
    mod: str,
    module_globals: Set[str],
) -> FunctionSummary:
    args = func.args
    pos_params = [a.arg for a in args.posonlyargs] + [
        a.arg for a in args.args
    ]
    kwonly = [a.arg for a in args.kwonlyargs]
    all_params = list(pos_params) + kwonly
    if args.vararg:
        all_params.append(args.vararg.arg)
    tainted = _tainted_locals(func, all_params)
    walker = _FuncWalker(module.rel, mod, cls, module_globals, tainted)
    for stmt in func.body:
        walker.visit(stmt)
    # Receiver-mutation pass: re-tag reads that are receivers of
    # mutating method calls as writes.
    mutated = _mutated_attr_sites(func)
    accesses = [
        Access(a.attr, "write", a.line, a.col, a.locks)
        if (a.line, a.col) in mutated and a.kind == "read"
        else a
        for a in walker.accesses
    ]
    deadline_params = tuple(
        p for p in (pos_params + kwonly) if DEADLINE_RE.search(p)
    )
    return FunctionSummary(
        qname=qname,
        name=func.name,
        cls=cls,
        line=func.lineno,
        is_ctor=cls is not None and func.name in CONSTRUCTORS,
        params=tuple(pos_params),
        kwonly=tuple(kwonly),
        deadline_params=deadline_params,
        holds=tuple(_holds_annotations(module, func, mod, cls)),
        rpc_primitive=(
            _is_shard_module(module.rel)
            and cls is not None
            and func.name in RPC_METHODS
        ),
        accesses=accesses,
        calls=walker.calls,
        blocking=walker.blocking,
    )


def _mutated_attr_sites(func: ast.AST) -> Set[Tuple[int, int]]:
    """(line, col) of ``self.X`` receivers of mutating method calls."""
    sites: Set[Tuple[int, int]] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        if not (isinstance(f, ast.Attribute) and f.attr in MUTATORS):
            continue
        recv = f.value
        if (
            isinstance(recv, ast.Attribute)
            and isinstance(recv.value, ast.Name)
            and recv.value.id == "self"
        ):
            sites.add((recv.lineno, recv.col_offset + 1))
    return sites


def _class_guards(
    module: ModuleInfo, node: ast.ClassDef, mod: str
) -> Dict[str, Tuple[str, int]]:
    """``# guarded-by`` declarations on self-attribute assignments."""
    guards: Dict[str, Tuple[str, int]] = {}
    for sub in ast.walk(node):
        if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
            continue
        end = getattr(sub, "end_lineno", None) or sub.lineno
        lock = None
        line = sub.lineno
        for lineno in range(sub.lineno, end + 1):
            match = GUARDED_RE.search(module.line(lineno))
            if match:
                lock, line = match.group(1), sub.lineno
                break
        if lock is None:
            continue
        targets = (
            sub.targets if isinstance(sub, ast.Assign) else [sub.target]
        )
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                guards[target.attr] = (
                    f"{mod}.{node.name}#{lock}", line
                )
    return guards


def _iter_defs(body, prefix: str, cls: Optional[str]):
    """Yield (func_node, qname, cls) for defs and their nested defs."""
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qname = f"{prefix}.{node.name}"
            yield node, qname, cls
            yield from _iter_defs(
                node.body, f"{qname}.<locals>", cls
            )


def extract_module(module: ModuleInfo) -> ModuleSummary:
    mod = module_name(module.rel)
    imports = _collect_imports(module.tree, mod)
    module_globals = _module_globals(module.tree)
    func_names: List[str] = []
    functions: List[FunctionSummary] = []
    classes: Dict[str, ClassSummary] = {}

    for node, qname, cls in _iter_defs(module.tree.body, mod, None):
        if qname == f"{mod}.{node.name}":
            func_names.append(node.name)
        functions.append(
            _extract_function(
                module, node, qname, cls, mod, module_globals
            )
        )

    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        cls_prefix = f"{mod}.{node.name}"
        methods: List[str] = []
        for sub, qname, _ in _iter_defs(
            node.body, cls_prefix, node.name
        ):
            if qname == f"{cls_prefix}.{sub.name}":
                methods.append(sub.name)
            functions.append(
                _extract_function(
                    module, sub, qname, node.name, mod, module_globals
                )
            )
        # Class lock usage: symbols acquired anywhere in its methods.
        cls_locks: Set[str] = set()
        for fn in functions:
            if fn.cls != node.name or not fn.qname.startswith(cls_prefix):
                continue
            for rec in fn.accesses:
                cls_locks.update(rec.locks)
            for rec in fn.calls:
                cls_locks.update(rec.locks)
            for rec in fn.blocking:
                cls_locks.update(rec.locks)
            cls_locks.update(fn.holds)
        own_prefix = f"{cls_prefix}#"
        lock_attrs = {
            sym[len(own_prefix):].split("@")[0]
            for sym in cls_locks
            if sym.startswith(own_prefix)
        }
        classes[node.name] = ClassSummary(
            name=node.name,
            line=node.lineno,
            methods=tuple(methods),
            locks=tuple(sorted(cls_locks)),
            lock_attrs=tuple(sorted(lock_attrs)),
            guards=_class_guards(module, node, mod),
        )

    summary = ModuleSummary(
        rel=module.rel.replace("\\", "/"),
        mod=mod,
        imports=imports,
        func_names=tuple(func_names),
        functions=functions,
        classes=classes,
    )
    _normalize_bare_rw_holds(summary)
    return summary


def _normalize_bare_rw_holds(summary: ModuleSummary) -> None:
    """``# holds-lock: _rw`` on an rw lock means the write mode."""
    rw_bases: Set[str] = set()
    for cls in summary.classes.values():
        for sym in cls.locks:
            if "@" in sym:
                rw_bases.add(sym.split("@")[0])
    for fn in summary.functions:
        if not fn.holds:
            continue
        fn.holds = tuple(
            sym + "@write" if "@" not in sym and sym in rw_bases else sym
            for sym in fn.holds
        )
