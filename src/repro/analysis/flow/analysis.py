"""Interprocedural fixpoints and guard inference over the call graph.

Three facts are computed, then packaged as :class:`FlowFacts` for the
rule pack:

**Entry locks** (must-analysis).  ``entry(F)`` is the set of locks every
caller provably holds at every resolved call site of ``F``, plus ``F``'s
own ``# holds-lock`` annotations::

    entry(F) = holds(F) ∪ ⋂ over call sites (held_at_site ∪ entry(caller))

Initialized to ⊤ for functions with callers and iterated downward, so
the result is conservative: one unlocked call site empties the
intersection.  Functions with no resolved callers (thread targets,
public API, anything reached through a callback) are roots with
``entry = holds``.  This is what lets a helper that is only ever invoked
under ``self._lock`` have its attribute accesses counted as guarded —
the cross-function case SKY101's lexical tracker cannot see.

**Blocking reachability** (may-analysis).  A function may block if it
contains a blocking primitive (queue receive, process join, sleep,
fault-injection point) or calls one that may.  A witness chain is kept
for messages.

**RPC reachability** (may-analysis).  Same propagation seeded from
shard RPC primitives (``ShardProcess.submit``/``request``) and textual
``.submit()``/``.request()`` sites in shard modules.

**Guard inference** (per shared attribute, RacerD-style vote).  For an
unannotated attribute of a lock-using class with at least one
non-constructor write and ≥ :data:`MIN_ACCESSES` accesses, the lock
held (lexically or via entry locks) at ≥ :data:`MAJORITY` of accesses —
in a mode adequate for each access, write requiring exclusivity — is
the inferred guard; the minority accesses are the reported races.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import CallGraph, build_call_graph
from repro.analysis.flow.model import (
    Access,
    BlockSite,
    CallRec,
    ModuleSummary,
    expand_locks,
    is_exclusive,
    lock_base,
)

#: Guard inference thresholds (tuned so the benign-race fixtures stay
#: silent: occasional lock-free fast paths must not vote a guard in).
MIN_ACCESSES = 3
MIN_GUARDED = 2
MAJORITY = 0.75

#: A perfectly-consistent attribute needs this many accesses before the
#: analyzer suggests writing a ``# guarded-by`` annotation (SKY1003).
MIN_SUGGEST = 4


@dataclass
class BlockWitness:
    """Why a function may block: a direct site or a blocking callee."""

    kind: str  # "direct" | "call"
    site_line: int
    detail: str  # leaf primitive description
    callee: Optional[str] = None  # next hop for chain reconstruction


@dataclass
class AttrFact:
    """Inference result for one shared attribute of one class."""

    module_rel: str
    cls: str
    attr: str
    accesses: List[Tuple[Access, str, FrozenSet[str]]]
    # ^ (access, owning function qname, effective held locks)
    declared: Optional[Tuple[str, int]]  # (guard symbol, decl line)
    inferred: Optional[str] = None  # inferred guard base symbol
    guarded_count: int = 0
    violations: List[Tuple[Access, str, FrozenSet[str]]] = field(
        default_factory=list
    )


@dataclass
class FlowFacts:
    """Everything the SKY1000 rule pack consumes."""

    graph: CallGraph
    entry: Dict[str, FrozenSet[str]]
    blocked: Dict[str, BlockWitness]
    reaches_rpc: Set[str]
    attrs: List[AttrFact]

    def block_chain(self, qname: str, limit: int = 6) -> str:
        """``f -> g -> sleep()`` witness string for messages."""
        hops: List[str] = []
        cur: Optional[str] = qname
        for _ in range(limit):
            witness = self.blocked.get(cur) if cur else None
            if witness is None:
                break
            short = cur.rsplit(".", 1)[-1] if cur else "?"
            hops.append(short)
            if witness.kind == "direct":
                hops.append(witness.detail)
                break
            cur = witness.callee
        return " -> ".join(hops)


def _entry_locks(graph: CallGraph) -> Dict[str, FrozenSet[str]]:
    holds = {
        q: expand_locks(fn.holds) for q, fn in graph.functions.items()
    }
    # None encodes ⊤ (not yet constrained by any caller).
    entry: Dict[str, Optional[FrozenSet[str]]] = {}
    for q in graph.functions:
        entry[q] = holds[q] if q not in graph.callers else None
    changed = True
    while changed:
        changed = False
        for q, sites in graph.callers.items():
            meet: Optional[FrozenSet[str]] = None  # ⊤
            grounded = False
            for caller, rec in sites:
                caller_entry = entry.get(caller)
                if caller_entry is None:
                    continue  # ⊤ contribution: does not constrain yet
                contribution = expand_locks(rec.locks) | caller_entry
                meet = (
                    contribution
                    if not grounded
                    else meet & contribution
                )
                grounded = True
            if not grounded:
                continue  # still ⊤; a later iteration may ground it
            new = frozenset(holds[q] | meet)
            if new != entry[q]:
                entry[q] = new
                changed = True
    # Unreachable pure cycles collapse to their own annotations.
    return {
        q: (value if value is not None else holds[q])
        for q, value in entry.items()
    }


def _blocking(graph: CallGraph) -> Dict[str, BlockWitness]:
    blocked: Dict[str, BlockWitness] = {}
    work: List[str] = []
    for q, fn in graph.functions.items():
        if fn.blocking:
            site = fn.blocking[0]
            blocked[q] = BlockWitness(
                "direct", site.line, site.detail
            )
            work.append(q)
    while work:
        callee = work.pop()
        for caller, rec in graph.callers.get(callee, ()):
            if caller in blocked:
                continue
            blocked[caller] = BlockWitness(
                "call", rec.line, blocked[callee].detail, callee
            )
            work.append(caller)
    return blocked


def _rpc_reach(graph: CallGraph) -> Set[str]:
    reaches: Set[str] = set()
    work: List[str] = []
    for q, fn in graph.functions.items():
        if fn.rpc_primitive or any(rec.rpc for rec in fn.calls):
            reaches.add(q)
            work.append(q)
    while work:
        callee = work.pop()
        for caller, _rec in graph.callers.get(callee, ()):
            if caller not in reaches:
                reaches.add(caller)
                work.append(caller)
    return reaches


def _holds_base(locks: FrozenSet[str], base: str,
                need_exclusive: bool) -> bool:
    for sym in locks:
        if lock_base(sym) != base:
            continue
        if not need_exclusive or is_exclusive(sym):
            return True
    return False


def _infer_attrs(
    summaries: List[ModuleSummary],
    graph: CallGraph,
    entry: Dict[str, FrozenSet[str]],
) -> List[AttrFact]:
    facts: List[AttrFact] = []
    for msum in summaries:
        for cls_name, cls in msum.classes.items():
            if not cls.locks:
                continue  # lock-free class: nothing to infer
            lock_attrs = set(cls.lock_attrs)
            per_attr: Dict[
                str, List[Tuple[Access, str, FrozenSet[str]]]
            ] = {}
            writers: Set[str] = set()
            for fn in msum.functions:
                if fn.cls != cls_name or fn.is_ctor:
                    continue
                effective_base = expand_locks(fn.holds) | entry.get(
                    fn.qname, frozenset()
                )
                for access in fn.accesses:
                    if access.attr in lock_attrs:
                        continue
                    effective = frozenset(
                        expand_locks(access.locks) | effective_base
                    )
                    per_attr.setdefault(access.attr, []).append(
                        (access, fn.qname, effective)
                    )
                    if access.kind == "write":
                        writers.add(access.attr)
            for attr, rows in sorted(per_attr.items()):
                declared = cls.guards.get(attr)
                if declared is None and (
                    attr not in writers or len(rows) < MIN_ACCESSES
                ):
                    continue
                fact = AttrFact(
                    module_rel=msum.rel,
                    cls=cls_name,
                    attr=attr,
                    accesses=rows,
                    declared=declared,
                )
                # Vote: for each candidate lock base, how many accesses
                # hold it in an adequate mode?
                bases: Set[str] = set()
                for _access, _q, locks in rows:
                    bases.update(lock_base(sym) for sym in locks)
                best_base, best_count = None, 0
                for base in sorted(bases):
                    count = sum(
                        1
                        for access, _q, locks in rows
                        if _holds_base(
                            locks, base, access.kind == "write"
                        )
                    )
                    if count > best_count:
                        best_base, best_count = base, count
                threshold = max(
                    MIN_GUARDED, math.ceil(MAJORITY * len(rows))
                )
                if best_base is not None and best_count >= threshold:
                    fact.inferred = best_base
                    fact.guarded_count = best_count
                    fact.violations = [
                        (access, q, locks)
                        for access, q, locks in rows
                        if not _holds_base(
                            locks, best_base, access.kind == "write"
                        )
                    ]
                facts.append(fact)
    return facts


def analyze(summaries: List[ModuleSummary]) -> FlowFacts:
    graph = build_call_graph(summaries)
    entry = _entry_locks(graph)
    return FlowFacts(
        graph=graph,
        entry=entry,
        blocked=_blocking(graph),
        reaches_rpc=_rpc_reach(graph),
        attrs=_infer_attrs(summaries, graph, entry),
    )
