"""Project-specific static analysis and concurrency diagnostics.

The serving stack grew a set of invariants that nothing in a generic
linter knows about: shared state guarded by specific locks, a typed
exception taxonomy, seeded determinism in the algorithmic core,
string-named fault-injection points, and kernel/oracle twinning.  This
package makes a machine check them on every PR:

* :mod:`repro.analysis.engine` — a small AST lint engine with a rule
  registry, :class:`~repro.analysis.engine.Finding` records, inline
  suppressions, a baseline file, and text/JSON reporters.  Run it with
  ``skyup lint``.
* :mod:`repro.analysis.rules` — the codebase-specific rules (lock
  discipline, exception taxonomy, determinism, injection-point registry,
  kernel-oracle parity).
* :mod:`repro.analysis.lockorder` — a dynamic lock-order witness:
  instrumented lock wrappers record the per-thread acquisition graph
  during concurrency suites and fail on cycles (potential deadlocks).
"""

from __future__ import annotations

from repro.analysis.engine import (
    Finding,
    LintContext,
    ModuleInfo,
    format_json,
    format_text,
    iter_rules,
    load_baseline,
    rule,
    run_lint,
    save_baseline,
)
from repro.analysis.lockorder import LockOrderWitness, instrument_engine

__all__ = [
    "Finding",
    "LintContext",
    "LockOrderWitness",
    "ModuleInfo",
    "format_json",
    "format_text",
    "instrument_engine",
    "iter_rules",
    "load_baseline",
    "rule",
    "run_lint",
    "save_baseline",
]
