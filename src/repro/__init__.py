"""skyup — top-k product upgrading over R-tree-indexed product sets.

A complete, from-scratch reproduction of:

    Hua Lu, Christian S. Jensen.
    *Upgrading Uncompetitive Products Economically.*  ICDE 2012.

Given a competitor set ``P``, an uncompetitive product set ``T``, and a
monotonic product cost function, the library finds the ``k`` products of
``T`` that can be upgraded most cheaply to escape domination by ``P``.

Quickstart::

    import numpy as np
    from repro import top_k_upgrades

    P = np.random.rand(10_000, 3)        # competitors
    T = 1.0 + np.random.rand(1_000, 3)   # everything dominated
    outcome = top_k_upgrades(P, T, k=5, method="join", bound="clb")
    for r in outcome.results:
        print(r.record_id, round(r.cost, 4), r.upgraded)

Serving (the concurrent, cached query engine) is part of the public
surface too::

    from repro import EngineConfig, MarketSession, TopKQuery, UpgradeEngine

    session = MarketSession.from_points(P, T)
    config = EngineConfig(workers=4, trace_sample_rate=0.05)
    with UpgradeEngine(session, config) as engine:
        top5 = engine.query(TopKQuery(k=5))

See DESIGN.md for the architecture and EXPERIMENTS.md for the reproduction
of the paper's empirical study.
"""

from repro.core.api import top_k_upgrades
from repro.core.join import JoinUpgrader
from repro.core.probing import (
    basic_probing,
    batch_probing,
    improved_probing,
)
from repro.core.session import MarketSession
from repro.core.single_set import single_set_top_k
from repro.core.types import UpgradeConfig, UpgradeOutcome, UpgradeResult
from repro.core.upgrade import upgrade
from repro.costs.attribute import (
    ExponentialCost,
    LinearCost,
    PiecewiseLinearCost,
    PowerCost,
    ReciprocalCost,
)
from repro.costs.integration import SumIntegration, WeightedSumIntegration
from repro.costs.model import CostModel, paper_cost_model
from repro.exceptions import SkyUpError
from repro.geometry.mbr import MBR
from repro.geometry.point import dominates
from repro.kernels.switch import use_kernels
from repro.plan import (
    ExplainReport,
    LogicalPlan,
    PhysicalPlan,
    Planner,
    default_planner,
)
from repro.rtree.tree import RTree
from repro.serve import (
    EngineConfig,
    PendingQuery,
    ProductQuery,
    Query,
    QueryResponse,
    TopKQuery,
    UpgradeEngine,
)
from repro.shard import ShardedUpgradeEngine
from repro.skyline import bbs_skyline, bnl_skyline, sfs_skyline

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "EngineConfig",
    "ExplainReport",
    "ExponentialCost",
    "JoinUpgrader",
    "LinearCost",
    "LogicalPlan",
    "MBR",
    "MarketSession",
    "PendingQuery",
    "PhysicalPlan",
    "PiecewiseLinearCost",
    "Planner",
    "PowerCost",
    "ProductQuery",
    "Query",
    "QueryResponse",
    "RTree",
    "ReciprocalCost",
    "ShardedUpgradeEngine",
    "SkyUpError",
    "SumIntegration",
    "TopKQuery",
    "UpgradeConfig",
    "UpgradeEngine",
    "UpgradeOutcome",
    "UpgradeResult",
    "WeightedSumIntegration",
    "__version__",
    "basic_probing",
    "batch_probing",
    "bbs_skyline",
    "bnl_skyline",
    "default_planner",
    "dominates",
    "improved_probing",
    "paper_cost_model",
    "sfs_skyline",
    "single_set_top_k",
    "top_k_upgrades",
    "upgrade",
    "use_kernels",
]
