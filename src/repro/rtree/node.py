"""R-tree nodes.

A node is a list of entries plus its level: level 0 nodes are leaves (their
entries carry data points), level ``h`` is the root.  Nodes do not cache
their MBR; the parent entry owns the cached copy and refreshes it via
:meth:`repro.rtree.entry.Entry.tighten` after mutations.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.geometry.mbr import MBR
from repro.rtree.entry import Entry


class Node:
    """An R-tree node: an ordered list of entries at a given level."""

    __slots__ = ("entries", "level")

    def __init__(self, level: int, entries: List[Entry] = None):
        self.level = level
        self.entries = entries if entries is not None else []

    @property
    def is_leaf(self) -> bool:
        """True iff this node stores data points."""
        return self.level == 0

    def compute_mbr(self) -> MBR:
        """Return the tightest MBR over this node's entries."""
        if not self.entries:
            raise ValueError("cannot compute the MBR of an empty node")
        return MBR.union_all(e.mbr for e in self.entries)

    def iter_points(self) -> Iterator[Tuple[Tuple[float, ...], int]]:
        """Yield every ``(point, record_id)`` in this subtree (DFS order)."""
        if self.is_leaf:
            for e in self.entries:
                yield e.point, e.record_id
        else:
            for e in self.entries:
                yield from e.child.iter_points()

    def count_points(self) -> int:
        """Return the number of data points in this subtree."""
        if self.is_leaf:
            return len(self.entries)
        return sum(e.child.count_points() for e in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"internal(level={self.level})"
        return f"Node({kind}, {len(self.entries)} entries)"
