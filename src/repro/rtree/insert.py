"""Dynamic insertion (Guttman's ChooseLeaf / AdjustTree).

The implementation is recursive: ``insert_into`` descends to the correct
level, appends the new entry, and propagates splits upward by returning the
split-off sibling (or ``None``).  :class:`repro.rtree.tree.RTree` handles
root splits.
"""

from __future__ import annotations

from typing import Optional

from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.split import SplitFunction


def choose_subtree(node: Node, entry: Entry) -> Entry:
    """Pick the child entry of ``node`` best suited to absorb ``entry``.

    Guttman's criterion: least area enlargement, ties broken by smallest
    area, then by fewest entries in the child.
    """
    best = None
    best_key = None
    for child_entry in node.entries:
        enlargement = child_entry.mbr.enlargement(entry.mbr)
        key = (
            enlargement,
            child_entry.mbr.area(),
            len(child_entry.child.entries),
        )
        if best_key is None or key < best_key:
            best_key = key
            best = child_entry
    assert best is not None, "choose_subtree called on an empty node"
    return best


def insert_into(
    node: Node,
    entry: Entry,
    target_level: int,
    max_entries: int,
    min_entries: int,
    split: SplitFunction,
) -> Optional[Node]:
    """Insert ``entry`` at ``target_level`` under ``node``.

    Returns:
        The split-off sibling node if ``node`` overflowed, else ``None``.
        The caller is responsible for re-tightening its entry for ``node``
        and for housing the sibling.
    """
    if node.level == target_level:
        node.entries.append(entry)
    else:
        child_entry = choose_subtree(node, entry)
        sibling = insert_into(
            child_entry.child,
            entry,
            target_level,
            max_entries,
            min_entries,
            split,
        )
        child_entry.tighten()
        if sibling is not None:
            node.entries.append(Entry.for_node(sibling))

    if len(node.entries) > max_entries:
        group_a, group_b = split(node.entries, min_entries)
        node.entries = group_a
        return Node(node.level, group_b)
    return None
