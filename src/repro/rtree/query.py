"""Read-only R-tree queries: range, exact point, and k-nearest-neighbour.

``range_query`` is the primitive behind the paper's *basic* probing
algorithm (Algorithm 2 retrieves every competitor in ``ADR(t)`` with a range
query).  ``knn_query`` is not used by the paper's algorithms but completes
the index as a reusable substrate and exercises best-first traversal, the
same pattern BBS and the join build on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.geometry.mbr import MBR
from repro.instrumentation import Counters
from repro.obs import span
from repro.reliability.faults import maybe_inject
from repro.rtree.node import Node
from repro.rtree.tree import RTree

PointRecord = Tuple[Tuple[float, ...], int]


def range_query(
    tree: RTree,
    box: MBR,
    stats: Optional[Counters] = None,
) -> List[PointRecord]:
    """Return every ``(point, record_id)`` whose point lies inside ``box``."""
    maybe_inject("rtree.query")
    if tree.is_empty():
        return []
    with span("rtree.range_query") as sp:
        node_accesses = 0
        results: List[PointRecord] = []
        stack: List[Node] = [tree.root]
        while stack:
            node = stack.pop()
            node_accesses += 1
            if node.is_leaf:
                for e in node.entries:
                    if stats is not None:
                        stats.points_scanned += 1
                    if box.contains_point(e.point):
                        results.append((e.point, e.record_id))
            else:
                for e in node.entries:
                    if box.intersects(e.mbr):
                        stack.append(e.child)
        if stats is not None:
            stats.node_accesses += node_accesses
        sp.set(node_accesses=node_accesses, matches=len(results))
        return results


def point_query(
    tree: RTree,
    point: Sequence[float],
    stats: Optional[Counters] = None,
) -> List[int]:
    """Return the record ids stored exactly at ``point``."""
    pt = tuple(float(v) for v in point)
    box = MBR.from_point(pt)
    return [rid for p, rid in range_query(tree, box, stats) if p == pt]


def knn_query(
    tree: RTree,
    point: Sequence[float],
    k: int,
    stats: Optional[Counters] = None,
) -> List[PointRecord]:
    """Return the ``k`` points nearest to ``point`` (squared Euclidean).

    Classic best-first search: a min-heap ordered by minimum distance holds
    both nodes and points; points popped before any closer node are final.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    maybe_inject("rtree.query")
    if tree.is_empty():
        return []
    with span("rtree.knn", k=k) as sp:
        node_accesses = 0
        counter = itertools.count()
        heap: List[Tuple[float, int, object]] = [
            (0.0, next(counter), tree.root)
        ]
        results: List[PointRecord] = []
        while heap and len(results) < k:
            dist, _, item = heapq.heappop(heap)
            if stats is not None:
                stats.heap_pops += 1
            if isinstance(item, Node):
                node_accesses += 1
                if item.is_leaf:
                    for e in item.entries:
                        d = _sq_distance(point, e.point)
                        heapq.heappush(
                            heap,
                            (d, next(counter), (e.point, e.record_id)),
                        )
                        if stats is not None:
                            stats.heap_pushes += 1
                else:
                    for e in item.entries:
                        heapq.heappush(
                            heap,
                            (
                                e.mbr.min_distance(point),
                                next(counter),
                                e.child,
                            ),
                        )
                        if stats is not None:
                            stats.heap_pushes += 1
            else:
                results.append(item)  # a finalized (point, record_id) pair
        if stats is not None:
            stats.node_accesses += node_accesses
        sp.set(node_accesses=node_accesses, found=len(results))
        return results


def intersects_dominance_region(
    tree: RTree,
    corner: Sequence[float],
    stats: Optional[Counters] = None,
) -> bool:
    """True iff ``tree`` holds a point ``t`` with ``corner <= t`` everywhere.

    The *dominance region* of ``corner`` is the hyper-rectangle with
    ``corner`` as its minimum corner, unbounded above — the mirror image of
    the anti-dominant region.  A point set intersects it exactly when some
    indexed point is weakly dominated by ``corner``.

    The serving layer uses this as its precise cache-invalidation
    predicate: inserting or deleting a competitor at ``q`` can only change
    the dominator skyline (and hence the upgrade cost) of products whose
    own position lies in ``q``'s dominance region, so a cached whole-catalog
    answer survives any mutation for which this returns ``False``.

    Pruning: a subtree may reach the region only if its MBR's upper corner
    is coordinate-wise ``>= corner``.
    """
    maybe_inject("rtree.query")
    if tree.is_empty():
        return False
    with span("rtree.dominance_probe") as sp:
        node_accesses = 0
        found = False
        c = tuple(float(v) for v in corner)
        stack: List[Node] = [tree.root]
        while stack and not found:
            node = stack.pop()
            node_accesses += 1
            if node.is_leaf:
                for e in node.entries:
                    if all(v >= b for v, b in zip(e.point, c)):
                        found = True
                        break
            else:
                for e in node.entries:
                    if all(h >= b for h, b in zip(e.mbr.high, c)):
                        stack.append(e.child)
        if stats is not None:
            stats.node_accesses += node_accesses
        sp.set(node_accesses=node_accesses, intersects=found)
        return found


def _sq_distance(a: Sequence[float], b: Sequence[float]) -> float:
    return sum((x - y) * (x - y) for x, y in zip(a, b))
