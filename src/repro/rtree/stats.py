"""Descriptive statistics for R-trees.

Used by the fanout/split ablation benchmarks and by tests that assert
structural quality (fill factors, overlap) rather than mere validity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.rtree.node import Node
from repro.rtree.tree import RTree


@dataclass
class LevelStats:
    """Aggregates for one tree level."""

    level: int
    nodes: int = 0
    entries: int = 0
    min_fill: float = 1.0
    total_area: float = 0.0
    total_margin: float = 0.0

    @property
    def avg_fanout(self) -> float:
        """Mean entries per node on this level."""
        return self.entries / self.nodes if self.nodes else 0.0


@dataclass
class TreeStats:
    """Whole-tree statistics as produced by :func:`collect_stats`."""

    height: int
    points: int
    levels: Dict[int, LevelStats] = field(default_factory=dict)
    sibling_overlap_area: float = 0.0

    @property
    def node_count(self) -> int:
        """Total number of nodes."""
        return sum(s.nodes for s in self.levels.values())

    @property
    def leaf_fill(self) -> float:
        """Mean leaf fanout divided by the leaf level's max observed fanout."""
        leaf = self.levels.get(0)
        if leaf is None or leaf.nodes == 0:
            return 0.0
        return leaf.entries / leaf.nodes

    def summary(self) -> str:
        """One-line human-readable summary for benchmark annotations."""
        return (
            f"height={self.height} nodes={self.node_count} "
            f"points={self.points} leaf_avg_fanout={self.leaf_fill:.1f} "
            f"overlap={self.sibling_overlap_area:.4g}"
        )


def collect_stats(tree: RTree) -> TreeStats:
    """Walk ``tree`` and aggregate per-level node statistics.

    ``sibling_overlap_area`` sums pairwise MBR intersection volumes among
    siblings of internal nodes — the metric the R*-tree split minimizes
    and the quantity that drives query fan-out.
    """
    stats = TreeStats(height=tree.height, points=len(tree))
    if tree.is_empty():
        stats.levels[0] = LevelStats(level=0)
        return stats
    _walk(tree.root, tree.max_entries, stats)
    return stats


def _walk(node: Node, max_entries: int, stats: TreeStats) -> None:
    level = stats.levels.setdefault(node.level, LevelStats(level=node.level))
    level.nodes += 1
    level.entries += len(node.entries)
    level.min_fill = min(level.min_fill, len(node.entries) / max_entries)
    for e in node.entries:
        level.total_area += e.mbr.area()
        level.total_margin += e.mbr.margin()
    if not node.is_leaf:
        for i, a in enumerate(node.entries):
            for b in node.entries[i + 1 :]:
                stats.sibling_overlap_area += a.mbr.overlap_area(b.mbr)
        for e in node.entries:
            _walk(e.child, max_entries, stats)
