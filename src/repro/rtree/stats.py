"""Descriptive statistics and analytic estimators for R-trees.

Used by the fanout/split ablation benchmarks, by tests that assert
structural quality (fill factors, overlap) rather than mere validity,
and — since the query-planner PR — by :mod:`repro.plan` as the catalog
statistics behind plan cost estimation:

* :func:`estimate_window_accesses` — expected node accesses of a window
  (range) query, the Theodoridis–Sellis R-tree cost model evaluated on
  the tree's *measured* per-level node extents instead of uniformity
  assumptions;
* :func:`estimate_skyline_size` — the classical expectation
  ``(ln n)^(d-1) / (d-1)!`` for the skyline size of ``n`` points with
  independent continuous coordinates;
* :func:`sample_skyline_size` — a measured-sample corrector for
  correlated data: exact skyline of an evenly strided sample,
  extrapolated with the analytic growth rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rtree.node import Node
from repro.rtree.tree import RTree


@dataclass
class LevelStats:
    """Aggregates for one tree level."""

    level: int
    nodes: int = 0
    entries: int = 0
    min_fill: float = 1.0
    total_area: float = 0.0
    total_margin: float = 0.0
    #: Per-dimension sums of entry-MBR side lengths on this level (the
    #: window-query cost model needs mean node extents per dimension).
    extent_sums: List[float] = field(default_factory=list)

    @property
    def avg_fanout(self) -> float:
        """Mean entries per node on this level."""
        return self.entries / self.nodes if self.nodes else 0.0

    def avg_extents(self) -> Tuple[float, ...]:
        """Mean entry-MBR side length per dimension on this level."""
        if not self.entries or not self.extent_sums:
            return ()
        return tuple(s / self.entries for s in self.extent_sums)


@dataclass
class TreeStats:
    """Whole-tree statistics as produced by :func:`collect_stats`."""

    height: int
    points: int
    levels: Dict[int, LevelStats] = field(default_factory=dict)
    sibling_overlap_area: float = 0.0
    #: Side lengths of the root MBR — the data-space extents the window
    #: access estimator falls back to when no domain is supplied.
    root_extents: Tuple[float, ...] = ()

    @property
    def node_count(self) -> int:
        """Total number of nodes."""
        return sum(s.nodes for s in self.levels.values())

    @property
    def leaf_fill(self) -> float:
        """Mean leaf fanout divided by the leaf level's max observed fanout."""
        leaf = self.levels.get(0)
        if leaf is None or leaf.nodes == 0:
            return 0.0
        return leaf.entries / leaf.nodes

    def summary(self) -> str:
        """One-line human-readable summary for benchmark annotations."""
        return (
            f"height={self.height} nodes={self.node_count} "
            f"points={self.points} leaf_avg_fanout={self.leaf_fill:.1f} "
            f"overlap={self.sibling_overlap_area:.4g}"
        )


def collect_stats(tree: RTree) -> TreeStats:
    """Walk ``tree`` and aggregate per-level node statistics.

    ``sibling_overlap_area`` sums pairwise MBR intersection volumes among
    siblings of internal nodes — the metric the R*-tree split minimizes
    and the quantity that drives query fan-out.
    """
    stats = TreeStats(height=tree.height, points=len(tree))
    if tree.is_empty():
        stats.levels[0] = LevelStats(level=0)
        return stats
    root_mbr = tree.root.compute_mbr()
    stats.root_extents = tuple(
        hi - lo for lo, hi in zip(root_mbr.low, root_mbr.high)
    )
    _walk(tree.root, tree.max_entries, stats)
    return stats


def _walk(node: Node, max_entries: int, stats: TreeStats) -> None:
    level = stats.levels.setdefault(node.level, LevelStats(level=node.level))
    level.nodes += 1
    level.entries += len(node.entries)
    level.min_fill = min(level.min_fill, len(node.entries) / max_entries)
    for e in node.entries:
        level.total_area += e.mbr.area()
        level.total_margin += e.mbr.margin()
        sides = [hi - lo for lo, hi in zip(e.mbr.low, e.mbr.high)]
        if not level.extent_sums:
            level.extent_sums = [0.0] * len(sides)
        for d, side in enumerate(sides):
            level.extent_sums[d] += side
    if not node.is_leaf:
        for i, a in enumerate(node.entries):
            for b in node.entries[i + 1 :]:
                stats.sibling_overlap_area += a.mbr.overlap_area(b.mbr)
        for e in node.entries:
            _walk(e.child, max_entries, stats)


# ---------------------------------------------------------------------------
# Analytic estimators (consumed by repro.plan)
# ---------------------------------------------------------------------------


def estimate_window_accesses(
    stats: TreeStats,
    window_extents: Sequence[float],
    domain_extents: Optional[Sequence[float]] = None,
) -> float:
    """Expected node accesses of a window query with the given side lengths.

    Theodoridis–Sellis: a node is accessed iff its MBR intersects the query
    window, which for a uniformly placed window of extent ``q_d`` happens
    with probability ``min(1, (s_d + q_d) / D_d)`` per dimension, where
    ``s_d`` is the node's extent and ``D_d`` the data-space extent.  We
    evaluate the formula per level with the *measured* mean entry extents
    (entries at level ``l`` describe the nodes of level ``l-1``, plus the
    point entries at the leaves), matching
    :func:`repro.rtree.query.range_query`, which counts every visited node
    and always visits the root.
    """
    if not stats.levels or stats.points == 0:
        return 1.0
    if domain_extents is None:
        domain_extents = stats.root_extents or tuple(
            1.0 for _ in window_extents
        )
    expected = 1.0  # the root is always read
    for lvl, level in stats.levels.items():
        if lvl == max(stats.levels):
            continue  # root counted unconditionally above
        # Nodes of level ``lvl`` are described by the entries one level up.
        parent = stats.levels.get(lvl + 1)
        extents = parent.avg_extents() if parent else ()
        if not extents:
            continue
        prob = 1.0
        for s, q, dom in zip(extents, window_extents, domain_extents):
            if dom <= 0:
                continue
            prob *= min(1.0, (s + q) / dom)
        expected += level.nodes * prob
    return expected


def estimate_skyline_size(n: int, dims: int) -> float:
    """Expected skyline size of ``n`` points with independent coordinates.

    The classical result for continuous i.i.d. coordinates is
    ``(ln n)^(d-1) / (d-1)!`` (Bentley et al.); it is the planner's prior
    for dominator-skyline sizes before any sample correction.
    """
    if n <= 0:
        return 0.0
    if n == 1 or dims <= 1:
        return 1.0
    log_n = math.log(n)
    est = log_n ** (dims - 1) / math.factorial(dims - 1)
    return max(1.0, min(float(n), est))


def sample_skyline_size(tree: RTree, dims: int, sample_cap: int = 256) -> float:
    """Estimate the skyline size of ``tree``'s points from a strided sample.

    Computes the exact (minimising) skyline of at most ``sample_cap`` evenly
    strided points and extrapolates to the full population with the analytic
    growth rate ``(ln N / ln m)^(d-1)``.  This corrects the i.i.d. prior of
    :func:`estimate_skyline_size` on correlated or clustered catalogs.
    """
    n = len(tree)
    if n == 0:
        return 0.0
    points = [p for p, _ in tree.iter_points()]
    stride = max(1, n // sample_cap)
    sample = points[::stride]
    m = len(sample)
    skyline: List[Sequence[float]] = []
    for p in sample:
        dominated = False
        keep: List[Sequence[float]] = []
        for s in skyline:
            if all(sv <= pv for sv, pv in zip(s, p)) and any(
                sv < pv for sv, pv in zip(s, p)
            ):
                dominated = True
                keep = skyline
                break
            if not (
                all(pv <= sv for pv, sv in zip(p, s))
                and any(pv < sv for pv, sv in zip(p, s))
            ):
                keep.append(s)
        if not dominated:
            keep.append(p)
        skyline = keep
    sample_size = float(len(skyline))
    if m >= n or m <= 1:
        return max(1.0, sample_size)
    growth = (math.log(n) / math.log(m)) ** (dims - 1)
    return max(1.0, min(float(n), sample_size * growth))
