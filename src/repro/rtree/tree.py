"""The R-tree facade: construction, insertion, deletion, bulk loading.

An :class:`RTree` owns a root :class:`~repro.rtree.node.Node` and the
capacity configuration.  Both paper algorithms receive trees built here —
probing needs ``R_P``, the join needs ``R_P`` and ``R_T``.

The tree intentionally allows a *root entry* view
(:meth:`RTree.root_entry`): the join algorithm seeds its heap with
``<{R_P.root}, R_T.root, null, inf>``, i.e. it treats roots as entries.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, EmptyDatasetError
from repro.geometry.mbr import MBR
from repro.geometry.point import validate_point
from repro.rtree.bulk import str_pack_nodes, str_pack_points
from repro.rtree.entry import Entry
from repro.rtree.insert import insert_into
from repro.rtree.node import Node
from repro.rtree.split import get_split_function

DEFAULT_MAX_ENTRIES = 32


class RTree:
    """An R-tree over ``d``-dimensional points with integer record ids.

    Args:
        dims: dimensionality of the indexed points.
        max_entries: node capacity ``M`` (default 32).
        min_entries: node minimum ``m``; defaults to ``max(2, M * 2 // 5)``
            (the classic 40% fill guarantee).
        split: ``"quadratic"`` (default) or ``"linear"`` node splitting.
    """

    __slots__ = ("dims", "max_entries", "min_entries", "_split", "_split_name",
                 "root", "_size")

    def __init__(
        self,
        dims: int,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: Optional[int] = None,
        split: str = "quadratic",
    ):
        if dims < 1:
            raise ConfigurationError(f"dims must be >= 1, got {dims}")
        if max_entries < 4:
            raise ConfigurationError(
                f"max_entries must be >= 4, got {max_entries}"
            )
        if min_entries is None:
            min_entries = max(2, max_entries * 2 // 5)
        if not 1 <= min_entries <= max_entries // 2:
            raise ConfigurationError(
                f"min_entries must be in [1, max_entries/2]: "
                f"{min_entries} vs {max_entries}"
            )
        self.dims = dims
        self.max_entries = max_entries
        self.min_entries = min_entries
        self._split_name = split
        self._split = get_split_function(split)
        self.root = Node(0)
        self._size = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        points: Sequence[Sequence[float]],
        record_ids: Optional[Sequence[int]] = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: Optional[int] = None,
        split: str = "quadratic",
    ) -> "RTree":
        """Build an R-tree with STR packing (the experiments' default path).

        Args:
            points: the data points; must be non-empty and uniform in
                dimensionality.
            record_ids: per-point ids; defaults to ``0..n-1``.

        Returns:
            A packed :class:`RTree` containing every point.
        """
        pts = [tuple(float(v) for v in p) for p in points]
        if not pts:
            raise EmptyDatasetError("cannot bulk-load an empty point set")
        dims = len(pts[0])
        for p in pts:
            if len(p) != dims:
                raise ConfigurationError("points mix dimensionalities")
        if record_ids is None:
            record_ids = range(len(pts))
        tree = cls(
            dims,
            max_entries=max_entries,
            min_entries=min_entries,
            split=split,
        )
        level_nodes: List[Node] = str_pack_points(
            pts, list(record_ids), tree.max_entries
        )
        while len(level_nodes) > 1:
            level_nodes = str_pack_nodes(level_nodes, tree.max_entries)
        tree.root = level_nodes[0]
        tree._size = len(pts)
        return tree

    @classmethod
    def bulk_load_block(
        cls,
        data: "np.ndarray",
        record_ids: "np.ndarray",
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: Optional[int] = None,
        split: str = "quadratic",
    ) -> "RTree":
        """STR-pack directly from columnar ``(n, d)``/``(n,)`` arrays.

        The shard workers' rebuild path: a :class:`PointBlock` attached
        from shared memory hands its columns here without the per-point
        ``float()`` validation loop of :meth:`bulk_load` — the block
        contract already guarantees uniform float64 rows.  Identical
        output tree to ``bulk_load(data.tolist(), record_ids.tolist())``.

        Raises:
            EmptyDatasetError: no rows.
            ConfigurationError: not an ``(n, d)`` array.
        """
        import numpy as np

        coords = np.ascontiguousarray(data, dtype=np.float64)
        if coords.ndim != 2:
            raise ConfigurationError(
                f"expected an (n, d) array, got shape {coords.shape}"
            )
        if coords.shape[0] == 0:
            raise EmptyDatasetError("cannot bulk-load an empty point set")
        # One bulk tolist + tuple per row beats the generic path's
        # per-coordinate float() by ~3x at shard-rebuild sizes.
        pts = [tuple(row) for row in coords.tolist()]
        ids = [int(r) for r in np.asarray(record_ids).tolist()]
        tree = cls(
            coords.shape[1],
            max_entries=max_entries,
            min_entries=min_entries,
            split=split,
        )
        level_nodes: List[Node] = str_pack_points(
            pts, ids, tree.max_entries
        )
        while len(level_nodes) > 1:
            level_nodes = str_pack_nodes(level_nodes, tree.max_entries)
        tree.root = level_nodes[0]
        tree._size = len(pts)
        return tree

    # -- mutation -------------------------------------------------------------

    def insert(self, point: Sequence[float], record_id: int = -1) -> None:
        """Insert ``point`` with ``record_id`` (defaults to insertion order)."""
        pt = validate_point(point, self.dims)
        if record_id == -1:
            record_id = self._size
        entry = Entry.for_point(pt, record_id)
        sibling = insert_into(
            self.root,
            entry,
            target_level=0,
            max_entries=self.max_entries,
            min_entries=self.min_entries,
            split=self._split,
        )
        if sibling is not None:
            old_root = self.root
            self.root = Node(
                old_root.level + 1,
                [Entry.for_node(old_root), Entry.for_node(sibling)],
            )
        self._size += 1

    def extend(
        self, points: Iterable[Sequence[float]], start_id: Optional[int] = None
    ) -> None:
        """Insert many points; ids count up from ``start_id`` (or size)."""
        next_id = self._size if start_id is None else start_id
        for p in points:
            self.insert(p, next_id)
            next_id += 1

    def delete(self, point: Sequence[float], record_id: int) -> bool:
        """Remove one ``(point, record_id)`` pair.

        Underfull nodes are condensed: their surviving entries are
        re-inserted at their original level (Guttman's CondenseTree).

        Returns:
            ``True`` if the pair was found and removed.
        """
        pt = validate_point(point, self.dims)
        orphans: List[Tuple[int, Entry]] = []
        removed = self._delete_rec(self.root, pt, record_id, orphans)
        if not removed:
            return False
        self._size -= 1
        # Shrink a root that lost all but one child.
        while self.root.level > 0 and len(self.root.entries) == 1:
            self.root = self.root.entries[0].child
        if self.root.level > 0 and not self.root.entries:
            self.root = Node(0)
        for level, entry in orphans:
            self._reinsert_entry(entry, level)
        return True

    def _delete_rec(
        self,
        node: Node,
        point: Tuple[float, ...],
        record_id: int,
        orphans: List[Tuple[int, Entry]],
    ) -> bool:
        if node.is_leaf:
            for i, e in enumerate(node.entries):
                if e.record_id == record_id and e.point == point:
                    del node.entries[i]
                    return True
            return False
        for i, child_entry in enumerate(node.entries):
            if not child_entry.mbr.contains_point(point):
                continue
            if self._delete_rec(child_entry.child, point, record_id, orphans):
                child = child_entry.child
                if len(child.entries) < self.min_entries:
                    # Condense: orphan the survivors, drop the child.
                    for e in child.entries:
                        orphans.append((child.level, e))
                    del node.entries[i]
                else:
                    child_entry.tighten()
                return True
        return False

    def _reinsert_entry(self, entry: Entry, level: int) -> None:
        if self.root.level < level:
            # Tree shrank below the orphan's level: re-insert its points.
            if entry.is_leaf_entry:
                self.insert(entry.point, entry.record_id)
            else:
                for p, rid in entry.child.iter_points():
                    self.insert(p, rid)
            self._size -= (
                1 if entry.is_leaf_entry else entry.child.count_points()
            )
            return
        sibling = insert_into(
            self.root,
            entry,
            target_level=level,
            max_entries=self.max_entries,
            min_entries=self.min_entries,
            split=self._split,
        )
        if sibling is not None:
            old_root = self.root
            self.root = Node(
                old_root.level + 1,
                [Entry.for_node(old_root), Entry.for_node(sibling)],
            )

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return True

    @property
    def height(self) -> int:
        """Number of levels (a lone leaf root has height 1)."""
        return self.root.level + 1

    @property
    def split_strategy(self) -> str:
        """Name of the configured split strategy."""
        return self._split_name

    def is_empty(self) -> bool:
        """True iff the tree holds no points."""
        return self._size == 0

    def root_entry(self) -> Entry:
        """Return a synthetic entry wrapping the root node.

        The join algorithm's heap and join lists are entry-based; wrapping
        the root lets both trees' roots participate uniformly.
        """
        if self.is_empty():
            raise EmptyDatasetError("an empty tree has no root entry")
        return Entry.for_node(self.root)

    def bounds(self) -> MBR:
        """Return the MBR of the whole dataset."""
        if self.is_empty():
            raise EmptyDatasetError("an empty tree has no bounds")
        return self.root.compute_mbr()

    def iter_points(self) -> Iterator[Tuple[Tuple[float, ...], int]]:
        """Yield every ``(point, record_id)`` in the tree."""
        if self.is_empty():
            return
        yield from self.root.iter_points()

    def __repr__(self) -> str:
        return (
            f"RTree(dims={self.dims}, size={self._size}, "
            f"height={self.height}, M={self.max_entries})"
        )
