"""A from-scratch R-tree: the index substrate both paper algorithms assume.

The paper requires the competitor set ``P`` (probing) — and for the join
algorithm also the product set ``T`` — to be indexed by an R-tree.  This
package provides a complete implementation:

* Guttman dynamic insertion with quadratic or linear node splitting
  (:mod:`repro.rtree.insert`, :mod:`repro.rtree.split`);
* Sort-Tile-Recursive (STR) bulk loading for experiment-scale datasets
  (:mod:`repro.rtree.bulk`);
* deletion with tree condensation (:mod:`repro.rtree.tree`);
* range, point, and k-nearest-neighbour queries (:mod:`repro.rtree.query`);
* a structural invariant checker used by the test suite
  (:mod:`repro.rtree.validate`).
"""

from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.persist import load_rtree, save_rtree
from repro.rtree.stats import TreeStats, collect_stats
from repro.rtree.tree import RTree
from repro.rtree.query import (
    intersects_dominance_region,
    knn_query,
    point_query,
    range_query,
)
from repro.rtree.validate import validate_rtree

__all__ = [
    "Entry",
    "Node",
    "RTree",
    "TreeStats",
    "collect_stats",
    "intersects_dominance_region",
    "knn_query",
    "load_rtree",
    "point_query",
    "range_query",
    "save_rtree",
    "validate_rtree",
]
