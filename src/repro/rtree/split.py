"""Node splitting strategies for dynamic insertion (Guttman 1984).

When an insertion overflows a node beyond its capacity ``M``, the node's
``M + 1`` entries are redistributed into two nodes, each holding at least
``m`` entries.  Two classic strategies are provided:

* **quadratic** — pick the pair of entries whose combined MBR wastes the
  most area as seeds, then assign remaining entries to the group whose MBR
  grows least (ties by area, then by count);
* **linear** — pick seeds by the greatest normalized separation along any
  dimension, then assign the rest in arbitrary order by least enlargement.

Quadratic is the library default (better trees, still cheap at the fanouts
used here); linear is kept for the fanout/split ablation benchmark.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.exceptions import ConfigurationError
from repro.geometry.mbr import MBR
from repro.rtree.entry import Entry

SplitFunction = Callable[[List[Entry], int], Tuple[List[Entry], List[Entry]]]


def quadratic_split(
    entries: List[Entry], min_entries: int
) -> Tuple[List[Entry], List[Entry]]:
    """Guttman's quadratic split.

    Args:
        entries: the overflowing entry list (length ``M + 1``).
        min_entries: minimum number of entries per resulting node.

    Returns:
        Two disjoint entry lists, each with at least ``min_entries`` items.
    """
    _check_split_args(entries, min_entries)
    seed_a, seed_b = _pick_seeds_quadratic(entries)
    group_a = [entries[seed_a]]
    group_b = [entries[seed_b]]
    mbr_a = entries[seed_a].mbr
    mbr_b = entries[seed_b].mbr
    remaining = [
        e for i, e in enumerate(entries) if i != seed_a and i != seed_b
    ]

    while remaining:
        # If one group must take everything left to reach the minimum, do so.
        if len(group_a) + len(remaining) == min_entries:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == min_entries:
            group_b.extend(remaining)
            break
        # Pick the entry with the strongest preference for one group.
        best_idx = -1
        best_diff = -1.0
        best_growth: Tuple[float, float] = (0.0, 0.0)
        for i, e in enumerate(remaining):
            grow_a = mbr_a.enlargement(e.mbr)
            grow_b = mbr_b.enlargement(e.mbr)
            diff = abs(grow_a - grow_b)
            if diff > best_diff:
                best_diff = diff
                best_idx = i
                best_growth = (grow_a, grow_b)
        entry = remaining.pop(best_idx)
        grow_a, grow_b = best_growth
        if grow_a < grow_b:
            choose_a = True
        elif grow_b < grow_a:
            choose_a = False
        elif mbr_a.area() != mbr_b.area():
            choose_a = mbr_a.area() < mbr_b.area()
        else:
            choose_a = len(group_a) <= len(group_b)
        if choose_a:
            group_a.append(entry)
            mbr_a = mbr_a.union(entry.mbr)
        else:
            group_b.append(entry)
            mbr_b = mbr_b.union(entry.mbr)
    return group_a, group_b


def linear_split(
    entries: List[Entry], min_entries: int
) -> Tuple[List[Entry], List[Entry]]:
    """Guttman's linear split (cheaper seed selection, looser groups)."""
    _check_split_args(entries, min_entries)
    seed_a, seed_b = _pick_seeds_linear(entries)
    group_a = [entries[seed_a]]
    group_b = [entries[seed_b]]
    mbr_a = entries[seed_a].mbr
    mbr_b = entries[seed_b].mbr
    remaining = [
        e for i, e in enumerate(entries) if i != seed_a and i != seed_b
    ]
    for i, entry in enumerate(remaining):
        left = len(remaining) - i
        if len(group_a) + left == min_entries:
            group_a.extend(remaining[i:])
            return group_a, group_b
        if len(group_b) + left == min_entries:
            group_b.extend(remaining[i:])
            return group_a, group_b
        grow_a = mbr_a.enlargement(entry.mbr)
        grow_b = mbr_b.enlargement(entry.mbr)
        if grow_a < grow_b or (grow_a == grow_b and len(group_a) <= len(group_b)):
            group_a.append(entry)
            mbr_a = mbr_a.union(entry.mbr)
        else:
            group_b.append(entry)
            mbr_b = mbr_b.union(entry.mbr)
    return group_a, group_b


def rstar_split(
    entries: List[Entry], min_entries: int
) -> Tuple[List[Entry], List[Entry]]:
    """The R*-tree topological split (Beckmann et al., 1990), sans reinsertion.

    Chooses the split *axis* by minimum total margin over all candidate
    distributions, then the split *index* on that axis by minimum overlap
    between the two groups (ties by minimum combined area).  Produces
    tighter, less overlapping siblings than Guttman's heuristics at a
    modestly higher split cost; benchmarked in the R-tree ablation.
    """
    _check_split_args(entries, min_entries)
    dims = entries[0].mbr.dims
    best_axis = 0
    best_margin = float("inf")
    for axis in range(dims):
        margin = 0.0
        for ordered in _axis_orderings(entries, axis):
            for split_at in _candidate_indices(len(entries), min_entries):
                left = MBR.union_all(e.mbr for e in ordered[:split_at])
                right = MBR.union_all(e.mbr for e in ordered[split_at:])
                margin += left.margin() + right.margin()
        if margin < best_margin:
            best_margin = margin
            best_axis = axis

    best_key = None
    best_groups: Tuple[List[Entry], List[Entry]] = ([], [])
    for ordered in _axis_orderings(entries, best_axis):
        for split_at in _candidate_indices(len(entries), min_entries):
            group_a = ordered[:split_at]
            group_b = ordered[split_at:]
            mbr_a = MBR.union_all(e.mbr for e in group_a)
            mbr_b = MBR.union_all(e.mbr for e in group_b)
            key = (mbr_a.overlap_area(mbr_b), mbr_a.area() + mbr_b.area())
            if best_key is None or key < best_key:
                best_key = key
                best_groups = (list(group_a), list(group_b))
    return best_groups


def _axis_orderings(entries: List[Entry], axis: int):
    """Yield the by-lower and by-upper orderings along ``axis``."""
    yield sorted(entries, key=lambda e: (e.mbr.low[axis], e.mbr.high[axis]))
    yield sorted(entries, key=lambda e: (e.mbr.high[axis], e.mbr.low[axis]))


def _candidate_indices(total: int, min_entries: int) -> range:
    """Valid split positions keeping both groups at/above the minimum."""
    return range(min_entries, total - min_entries + 1)


SPLIT_FUNCTIONS = {
    "quadratic": quadratic_split,
    "linear": linear_split,
    "rstar": rstar_split,
}


def get_split_function(name: str) -> SplitFunction:
    """Look up a split strategy by name (``"quadratic"`` or ``"linear"``)."""
    try:
        return SPLIT_FUNCTIONS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown split strategy {name!r}; "
            f"choose from {sorted(SPLIT_FUNCTIONS)}"
        ) from None


def _check_split_args(entries: List[Entry], min_entries: int) -> None:
    if min_entries < 1:
        raise ConfigurationError(f"min_entries must be >= 1: {min_entries}")
    if len(entries) < 2 * min_entries:
        raise ConfigurationError(
            f"cannot split {len(entries)} entries into two groups of "
            f">= {min_entries}"
        )


def _pick_seeds_quadratic(entries: List[Entry]) -> Tuple[int, int]:
    """Return the index pair whose combined MBR wastes the most area."""
    worst = -1.0
    seeds = (0, 1)
    for i in range(len(entries)):
        mi = entries[i].mbr
        area_i = mi.area()
        for j in range(i + 1, len(entries)):
            mj = entries[j].mbr
            waste = mi.union(mj).area() - area_i - mj.area()
            if waste > worst:
                worst = waste
                seeds = (i, j)
    return seeds


def _pick_seeds_linear(entries: List[Entry]) -> Tuple[int, int]:
    """Return seeds with the greatest normalized separation on any axis."""
    dims = entries[0].mbr.dims
    best_norm_sep = -1.0
    seeds = (0, 1)
    for d in range(dims):
        highest_low_idx = max(
            range(len(entries)), key=lambda i: entries[i].mbr.low[d]
        )
        lowest_high_idx = min(
            range(len(entries)), key=lambda i: entries[i].mbr.high[d]
        )
        if highest_low_idx == lowest_high_idx:
            continue
        lo = min(e.mbr.low[d] for e in entries)
        hi = max(e.mbr.high[d] for e in entries)
        width = hi - lo
        if width <= 0:
            continue
        separation = (
            entries[highest_low_idx].mbr.low[d]
            - entries[lowest_high_idx].mbr.high[d]
        )
        norm_sep = separation / width
        if norm_sep > best_norm_sep:
            best_norm_sep = norm_sep
            seeds = (lowest_high_idx, highest_low_idx)
    if seeds[0] == seeds[1]:  # fully degenerate data: fall back
        seeds = (0, 1)
    return seeds
