"""Sort-Tile-Recursive (STR) bulk loading.

For experiment-scale datasets, inserting points one at a time is both slow
and produces worse trees than packing.  STR (Leutenegger et al., 1997) sorts
the points by the first coordinate, tiles them into vertical slabs, and
recurses on the remaining coordinates inside each slab; every leaf ends up
with ~``capacity`` points and near-square MBRs.  Upper levels are built by
applying the same tiling to node MBR centers.

Sorting is delegated to numpy (`argsort`) — this is the one place in the
index where vectorization pays off.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rtree.entry import Entry
from repro.rtree.node import Node


def str_pack_points(
    points: Sequence[Tuple[float, ...]],
    record_ids: Sequence[int],
    capacity: int,
) -> List[Node]:
    """Pack data points into leaf nodes with the STR tiling.

    Args:
        points: the data points (all the same dimensionality).
        record_ids: one id per point.
        capacity: leaf capacity (maximum entries per node).

    Returns:
        The list of packed leaf nodes, in tiling order.
    """
    if len(points) != len(record_ids):
        raise ConfigurationError(
            f"{len(points)} points but {len(record_ids)} record ids"
        )
    if capacity < 2:
        raise ConfigurationError(f"capacity must be >= 2, got {capacity}")
    coords = np.asarray(points, dtype=np.float64)
    if coords.ndim != 2:
        raise ConfigurationError("points must form an (n, d) array")
    order = _str_order(coords, capacity)
    leaves: List[Node] = []
    ids = list(record_ids)
    pts = [tuple(map(float, coords[i])) for i in order]
    ordered_ids = [ids[i] for i in order]
    for start in range(0, len(pts), capacity):
        chunk_points = pts[start : start + capacity]
        chunk_ids = ordered_ids[start : start + capacity]
        entries = [
            Entry.for_point(p, rid)
            for p, rid in zip(chunk_points, chunk_ids)
        ]
        leaves.append(Node(0, entries))
    return leaves


def str_pack_nodes(nodes: List[Node], capacity: int) -> List[Node]:
    """Pack one tree level into the next by STR-tiling node MBR centers."""
    if not nodes:
        raise ConfigurationError("cannot pack an empty node list")
    level = nodes[0].level + 1
    entries = [Entry.for_node(n) for n in nodes]
    centers = np.asarray([e.mbr.center() for e in entries], dtype=np.float64)
    order = _str_order(centers, capacity)
    parents: List[Node] = []
    ordered = [entries[i] for i in order]
    for start in range(0, len(ordered), capacity):
        parents.append(Node(level, ordered[start : start + capacity]))
    return parents


def _str_order(coords: np.ndarray, capacity: int) -> List[int]:
    """Return the STR tiling permutation of row indices of ``coords``."""
    n, dims = coords.shape
    indices = np.arange(n)
    return list(_str_recurse(coords, indices, capacity, 0, dims))


def _str_recurse(
    coords: np.ndarray,
    indices: np.ndarray,
    capacity: int,
    dim: int,
    dims: int,
) -> np.ndarray:
    """Recursively tile ``indices`` along dimension ``dim``."""
    n = len(indices)
    if n <= capacity or dim >= dims - 1:
        # Final dimension (or small chunk): simple sort finishes the tiling.
        if dim < dims:
            key = coords[indices, dim]
            return indices[np.argsort(key, kind="stable")]
        return indices
    pages = math.ceil(n / capacity)
    remaining_dims = dims - dim
    slabs = math.ceil(pages ** (1.0 / remaining_dims))
    slab_size = math.ceil(n / slabs)
    key = coords[indices, dim]
    sorted_idx = indices[np.argsort(key, kind="stable")]
    pieces = []
    for start in range(0, n, slab_size):
        slab = sorted_idx[start : start + slab_size]
        pieces.append(
            _str_recurse(coords, slab, capacity, dim + 1, dims)
        )
    return np.concatenate(pieces)
