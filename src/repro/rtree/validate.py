"""Structural invariant checking for R-trees.

Used heavily by the test suite (including the hypothesis property tests over
random insert/delete workloads).  Checks, for every node:

* entry MBRs are contained in (and tight against) the parent entry's MBR;
* leaf entries carry points, internal entries carry children one level down;
* node occupancy respects ``[min_entries, max_entries]`` (root excepted);
* all leaves sit at level 0 and the point count matches ``len(tree)``.
"""

from __future__ import annotations

from repro.exceptions import RTreeError
from repro.geometry.mbr import MBR
from repro.rtree.node import Node
from repro.rtree.tree import RTree


def validate_rtree(tree: RTree, check_fill: bool = True) -> None:
    """Raise :class:`RTreeError` on any violated structural invariant.

    Args:
        tree: the tree to check.
        check_fill: also enforce minimum node occupancy.  Pass ``False`` for
            bulk-loaded trees — STR tiling legitimately leaves one underfull
            remainder node per level.
    """
    if tree.is_empty():
        if tree.root.level != 0 or tree.root.entries:
            raise RTreeError("empty tree must have a bare leaf root")
        return
    points_seen = _validate_node(
        tree.root, tree.max_entries, tree.min_entries if check_fill else 0,
        is_root=True,
    )
    if points_seen != len(tree):
        raise RTreeError(
            f"tree reports {len(tree)} points but traversal found "
            f"{points_seen}"
        )


def _validate_node(
    node: Node,
    max_entries: int,
    min_entries: int,
    is_root: bool,
) -> int:
    if not node.entries:
        raise RTreeError(f"empty non-root node at level {node.level}")
    if len(node.entries) > max_entries:
        raise RTreeError(
            f"node at level {node.level} holds {len(node.entries)} entries "
            f"(max {max_entries})"
        )
    if not is_root and min_entries and len(node.entries) < min_entries:
        raise RTreeError(
            f"node at level {node.level} holds {len(node.entries)} entries "
            f"(min {min_entries})"
        )
    if is_root and not node.is_leaf and len(node.entries) < 2:
        raise RTreeError("internal root must have at least two entries")

    points = 0
    if node.is_leaf:
        for e in node.entries:
            if not e.is_leaf_entry:
                raise RTreeError("leaf node contains a non-leaf entry")
            if e.mbr != MBR.from_point(e.point):
                raise RTreeError(
                    f"leaf entry MBR {e.mbr} does not match point {e.point}"
                )
            points += 1
        return points

    for e in node.entries:
        if e.is_leaf_entry:
            raise RTreeError("internal node contains a point entry")
        child = e.child
        if child.level != node.level - 1:
            raise RTreeError(
                f"level skew: node level {node.level} has child at "
                f"level {child.level}"
            )
        actual = child.compute_mbr()
        if e.mbr != actual:
            raise RTreeError(
                f"stale entry MBR at level {node.level}: "
                f"cached {e.mbr}, actual {actual}"
            )
        points += _validate_node(child, max_entries, min_entries, False)
    return points
