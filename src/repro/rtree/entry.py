"""R-tree entries.

An :class:`Entry` is one slot of an R-tree node.  Leaf entries carry a data
point and its record id; internal entries carry a child node.  The join
algorithm of the paper manipulates entries directly (its join lists are lists
of ``R_P`` entries), so entries expose the corner accessors ``low``/``high``
that the lower-bound formulas use as ``e.min``/``e.max``.
"""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

from repro.geometry.mbr import MBR

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rtree.node import Node


class Entry:
    """One node slot: an MBR plus either a data point or a child node."""

    __slots__ = ("mbr", "child", "point", "record_id")

    def __init__(
        self,
        mbr: MBR,
        child: Optional["Node"] = None,
        point: Optional[Tuple[float, ...]] = None,
        record_id: int = -1,
    ):
        if (child is None) == (point is None):
            raise ValueError(
                "an entry holds exactly one of a child node or a data point"
            )
        self.mbr = mbr
        self.child = child
        self.point = point
        self.record_id = record_id

    @classmethod
    def for_point(cls, point: Tuple[float, ...], record_id: int) -> "Entry":
        """Build a leaf entry for ``point``."""
        return cls(MBR.from_point(point), point=point, record_id=record_id)

    @classmethod
    def for_node(cls, node: "Node") -> "Entry":
        """Build an internal entry covering ``node``."""
        return cls(node.compute_mbr(), child=node)

    @property
    def is_leaf_entry(self) -> bool:
        """True iff this entry carries a data point."""
        return self.point is not None

    @property
    def low(self) -> Tuple[float, ...]:
        """The entry MBR's minimum corner (the paper's ``e.min``)."""
        return self.mbr.low

    @property
    def high(self) -> Tuple[float, ...]:
        """The entry MBR's maximum corner (the paper's ``e.max``)."""
        return self.mbr.high

    def tighten(self) -> None:
        """Recompute the MBR from the child node (after child mutation)."""
        if self.child is not None:
            self.mbr = self.child.compute_mbr()

    def __repr__(self) -> str:
        if self.is_leaf_entry:
            return f"Entry(point={self.point}, id={self.record_id})"
        return f"Entry(child=<node level {self.child.level}>, mbr={self.mbr})"
