"""R-tree persistence: save/load to a single JSON-lines file.

Index construction dominates setup time at experiment scale, so cached
indexes are worth persisting.  The format is deliberately simple and
self-describing — one JSON header line with the tree's configuration,
then one line per node in pre-order, each carrying its level and either
its points (leaves) or the child count (internal nodes, whose children
follow immediately, pre-order).  Loading rebuilds nodes bottom-up from
that stream and re-derives every MBR, so a corrupted or hand-edited file
can never produce a structurally inconsistent tree (the MBRs are always
tight by construction).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Tuple, Union

from repro.exceptions import RTreeError
from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.tree import RTree

PathLike = Union[str, Path]

_MAGIC = "skyup-rtree"
_VERSION = 1


def save_rtree(tree: RTree, path: PathLike) -> None:
    """Write ``tree`` to ``path`` (JSON-lines, see module docstring)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        header = {
            "magic": _MAGIC,
            "version": _VERSION,
            "dims": tree.dims,
            "max_entries": tree.max_entries,
            "min_entries": tree.min_entries,
            "split": tree.split_strategy,
            "size": len(tree),
            "height": tree.height,
        }
        handle.write(json.dumps(header) + "\n")
        if not tree.is_empty():
            _write_node(tree.root, handle)


def _write_node(node: Node, handle) -> None:
    if node.is_leaf:
        record = {
            "level": 0,
            "points": [list(e.point) for e in node.entries],
            "ids": [e.record_id for e in node.entries],
        }
        handle.write(json.dumps(record) + "\n")
        return
    record = {"level": node.level, "children": len(node.entries)}
    handle.write(json.dumps(record) + "\n")
    for e in node.entries:
        _write_node(e.child, handle)


def load_rtree(path: PathLike) -> RTree:
    """Reconstruct an R-tree written by :func:`save_rtree`.

    Raises:
        RTreeError: malformed file, wrong magic/version, or a node stream
            inconsistent with the declared size.
    """
    with Path(path).open() as handle:
        header_line = handle.readline()
        if not header_line:
            raise RTreeError(f"{path}: empty file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise RTreeError(f"{path}: bad header: {exc}") from exc
        if header.get("magic") != _MAGIC:
            raise RTreeError(f"{path}: not a skyup R-tree file")
        if header.get("version") != _VERSION:
            raise RTreeError(
                f"{path}: unsupported version {header.get('version')}"
            )
        tree = RTree(
            dims=header["dims"],
            max_entries=header["max_entries"],
            min_entries=header["min_entries"],
            split=header["split"],
        )
        if header["size"] == 0:
            return tree
        records = [json.loads(line) for line in handle if line.strip()]

    root, consumed, points = _read_node(records, 0, header["dims"])
    if consumed != len(records):
        raise RTreeError(
            f"{path}: {len(records) - consumed} trailing node records"
        )
    if points != header["size"]:
        raise RTreeError(
            f"{path}: header declares {header['size']} points, "
            f"stream holds {points}"
        )
    tree.root = root
    tree._size = points
    return tree


def _read_node(
    records: List[dict], index: int, dims: int
) -> Tuple[Node, int, int]:
    """Rebuild the node at ``records[index]``; return (node, next, points)."""
    if index >= len(records):
        raise RTreeError("truncated node stream")
    record = records[index]
    level = record.get("level")
    if level == 0:
        raw_points = record.get("points", [])
        ids = record.get("ids", [])
        if len(raw_points) != len(ids):
            raise RTreeError("leaf points/ids length mismatch")
        entries = []
        for p, rid in zip(raw_points, ids):
            if len(p) != dims:
                raise RTreeError(
                    f"point dimensionality {len(p)} != header dims {dims}"
                )
            entries.append(Entry.for_point(tuple(map(float, p)), int(rid)))
        if not entries:
            raise RTreeError("empty leaf node in stream")
        return Node(0, entries), index + 1, len(entries)
    child_count = record.get("children", 0)
    if child_count < 1:
        raise RTreeError(f"internal node with {child_count} children")
    cursor = index + 1
    children: List[Node] = []
    total_points = 0
    for _ in range(child_count):
        child, cursor, points = _read_node(records, cursor, dims)
        if child.level != level - 1:
            raise RTreeError(
                f"level skew in stream: {level} -> {child.level}"
            )
        children.append(child)
        total_points += points
    entries = [Entry.for_node(c) for c in children]
    return Node(level, entries), cursor, total_points
