"""R-tree persistence: save/load to a single JSON-lines file.

Index construction dominates setup time at experiment scale, so cached
indexes are worth persisting.  The format is deliberately simple and
self-describing — one JSON header line with the tree's configuration,
then one line per node in pre-order, each carrying its level and either
its points (leaves) or the child count (internal nodes, whose children
follow immediately, pre-order).  Loading rebuilds nodes bottom-up from
that stream and re-derives every MBR, so a corrupted or hand-edited file
can never produce a structurally inconsistent tree (the MBRs are always
tight by construction).

Loading is hardened against damaged files: truncated, bit-flipped, or
wrong-version input surfaces as :class:`~repro.exceptions.RTreeError`
carrying the offending line number — never a raw ``JSONDecodeError`` /
``KeyError`` / ``TypeError`` from the decoder internals.  The test suite
bit-flips and truncates saved indexes to hold that contract.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Tuple, Union

from repro.exceptions import ConfigurationError, RTreeError
from repro.reliability.faults import maybe_inject
from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.tree import RTree

PathLike = Union[str, Path]

_MAGIC = "skyup-rtree"
_VERSION = 1

#: Required header fields and their expected JSON types.
_HEADER_FIELDS = (
    ("dims", int),
    ("max_entries", int),
    ("min_entries", int),
    ("split", str),
    ("size", int),
)


def save_rtree(tree: RTree, path: PathLike) -> None:
    """Write ``tree`` to ``path`` (JSON-lines, see module docstring)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        header = {
            "magic": _MAGIC,
            "version": _VERSION,
            "dims": tree.dims,
            "max_entries": tree.max_entries,
            "min_entries": tree.min_entries,
            "split": tree.split_strategy,
            "size": len(tree),
            "height": tree.height,
        }
        handle.write(json.dumps(header) + "\n")
        if not tree.is_empty():
            _write_node(tree.root, handle)


def _write_node(node: Node, handle) -> None:
    if node.is_leaf:
        record = {
            "level": 0,
            "points": [list(e.point) for e in node.entries],
            "ids": [e.record_id for e in node.entries],
        }
        handle.write(json.dumps(record) + "\n")
        return
    record = {"level": node.level, "children": len(node.entries)}
    handle.write(json.dumps(record) + "\n")
    for e in node.entries:
        _write_node(e.child, handle)


#: One parsed node record tagged with its 1-based line number.
_Record = Tuple[int, dict]


def load_rtree(path: PathLike) -> RTree:
    """Reconstruct an R-tree written by :func:`save_rtree`.

    Raises:
        RTreeError: malformed file (with the offending line number), wrong
            magic/version, or a node stream inconsistent with the declared
            size — never a raw ``JSONDecodeError``/``KeyError``.
    """
    maybe_inject("persist.load")
    with Path(path).open() as handle:
        header = _read_header(path, handle.readline())
        try:
            tree = RTree(
                dims=header["dims"],
                max_entries=header["max_entries"],
                min_entries=header["min_entries"],
                split=header["split"],
            )
        except ConfigurationError as exc:
            # E.g. a bit-flipped split-strategy name: well-typed JSON that
            # still cannot configure a tree.
            raise RTreeError(
                f"{path}: line 1: invalid tree configuration: {exc}"
            ) from exc
        if header["size"] == 0:
            return tree
        records: List[_Record] = []
        for lineno, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise RTreeError(
                    f"{path}: line {lineno}: corrupt node record: {exc}"
                ) from exc
            if not isinstance(obj, dict):
                raise RTreeError(
                    f"{path}: line {lineno}: node record must be a JSON "
                    f"object, got {type(obj).__name__}"
                )
            records.append((lineno, obj))

    if not records:
        raise RTreeError(
            f"{path}: header declares {header['size']} points but the "
            f"node stream is empty"
        )
    try:
        root, consumed, points = _read_node(path, records, 0, header["dims"])
    except RTreeError:
        raise
    except (KeyError, TypeError, ValueError, OverflowError) as exc:
        # Defensive catch-all: any decoder slip on hostile input still
        # surfaces under the library's exception taxonomy.
        raise RTreeError(f"{path}: malformed node stream: {exc!r}") from exc
    if consumed != len(records):
        raise RTreeError(
            f"{path}: line {records[consumed][0]}: "
            f"{len(records) - consumed} trailing node records"
        )
    if points != header["size"]:
        raise RTreeError(
            f"{path}: header declares {header['size']} points, "
            f"stream holds {points}"
        )
    tree.root = root
    tree._size = points
    return tree


def _read_header(path: PathLike, header_line: str) -> dict:
    """Parse and validate the header line (line 1)."""
    if not header_line:
        raise RTreeError(f"{path}: empty file")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise RTreeError(f"{path}: line 1: bad header: {exc}") from exc
    if not isinstance(header, dict):
        raise RTreeError(f"{path}: line 1: header must be a JSON object")
    if header.get("magic") != _MAGIC:
        raise RTreeError(f"{path}: not a skyup R-tree file")
    if header.get("version") != _VERSION:
        raise RTreeError(
            f"{path}: unsupported version {header.get('version')!r}"
        )
    for name, typ in _HEADER_FIELDS:
        value = header.get(name)
        if not isinstance(value, typ) or isinstance(value, bool):
            raise RTreeError(
                f"{path}: line 1: missing or invalid header field "
                f"{name!r} (expected {typ.__name__}, got {value!r})"
            )
    if header["size"] < 0 or header["dims"] < 1:
        raise RTreeError(
            f"{path}: line 1: nonsensical header "
            f"(size={header['size']}, dims={header['dims']})"
        )
    return header


def _read_node(
    path: PathLike, records: List[_Record], index: int, dims: int
) -> Tuple[Node, int, int]:
    """Rebuild the node at ``records[index]``; return (node, next, points)."""
    if index >= len(records):
        last_line = records[-1][0] if records else 1
        raise RTreeError(
            f"{path}: truncated node stream after line {last_line}"
        )
    lineno, record = records[index]
    level = record.get("level")
    if not isinstance(level, int) or isinstance(level, bool) or level < 0:
        raise RTreeError(
            f"{path}: line {lineno}: missing or invalid node level "
            f"{level!r}"
        )
    if level == 0:
        return _read_leaf(path, lineno, record, dims), index + 1, _leaf_size(
            record
        )
    child_count = record.get("children")
    if (
        not isinstance(child_count, int)
        or isinstance(child_count, bool)
        or child_count < 1
    ):
        raise RTreeError(
            f"{path}: line {lineno}: internal node with invalid child "
            f"count {child_count!r}"
        )
    cursor = index + 1
    children: List[Node] = []
    total_points = 0
    for _ in range(child_count):
        child, cursor, points = _read_node(path, records, cursor, dims)
        if child.level != level - 1:
            raise RTreeError(
                f"{path}: line {lineno}: level skew in stream: "
                f"{level} -> {child.level}"
            )
        children.append(child)
        total_points += points
    entries = [Entry.for_node(c) for c in children]
    return Node(level, entries), cursor, total_points


def _read_leaf(path: PathLike, lineno: int, record: dict, dims: int) -> Node:
    """Rebuild one leaf node, validating every point and id."""
    raw_points = record.get("points")
    ids = record.get("ids")
    if not isinstance(raw_points, list) or not isinstance(ids, list):
        raise RTreeError(
            f"{path}: line {lineno}: leaf node needs 'points' and 'ids' "
            f"lists"
        )
    if len(raw_points) != len(ids):
        raise RTreeError(
            f"{path}: line {lineno}: leaf points/ids length mismatch "
            f"({len(raw_points)} vs {len(ids)})"
        )
    entries = []
    for p, rid in zip(raw_points, ids):
        if not isinstance(p, list) or len(p) != dims:
            raise RTreeError(
                f"{path}: line {lineno}: point dimensionality "
                f"{len(p) if isinstance(p, list) else '?'} != header "
                f"dims {dims}"
            )
        if not all(isinstance(v, (int, float)) for v in p) or any(
            isinstance(v, bool) for v in p
        ):
            raise RTreeError(
                f"{path}: line {lineno}: non-numeric point coordinate "
                f"in {p!r}"
            )
        if not isinstance(rid, int) or isinstance(rid, bool):
            raise RTreeError(
                f"{path}: line {lineno}: non-integer record id {rid!r}"
            )
        entries.append(Entry.for_point(tuple(map(float, p)), rid))
    if not entries:
        raise RTreeError(f"{path}: line {lineno}: empty leaf node in stream")
    return Node(0, entries)


def _leaf_size(record: dict) -> int:
    return len(record.get("points") or [])
