"""Synthetic stand-in for the UCI white-wine dataset (paper §IV-B).

The paper evaluates on the white-wine quality dataset (Cortez et al., 2009;
4,898 tuples), restricted to three manufacturer-controllable attributes:
**chlorides**, **sulphates**, and **total sulfur dioxide**.  The UCI archive
is unavailable offline, so :func:`synthesize_wine` generates a seeded
surrogate with the same cardinality and moment-matched marginals /
correlations (published summary statistics of the real set):

* chlorides — right-skewed, log-normal-like (mean ≈ 0.046, sd ≈ 0.022);
* sulphates — near-normal (mean ≈ 0.49, sd ≈ 0.114);
* total sulfur dioxide — near-normal (mean ≈ 138, sd ≈ 42.5);
* mild positive pairwise correlations (0.02–0.21), via a Gaussian copula.

What the algorithms actually consume is the *dominance structure after
min-max normalization*, which depends only on cardinality, dimensionality,
and the joint shape — all preserved.  See DESIGN.md §5.

:func:`wine_split` reproduces the paper's protocol: pick 1,000 random
non-skyline tuples as the product set ``T``; the remaining 3,898 tuples form
the competitor set ``P``; normalize everything into ``[0,1]^c``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.data.normalize import min_max_normalize
from repro.exceptions import ConfigurationError, EmptyDatasetError
from repro.skyline.vectorized import numpy_skyline_mask

#: Number of tuples in the real white-wine dataset.
WINE_CARDINALITY = 4898

#: Column order of the synthesized array.
WINE_ATTRIBUTES = ("chlorides", "sulphates", "total_sulfur_dioxide")

#: Table III — the four attribute combinations evaluated in Fig. 4.
ATTRIBUTE_COMBOS: Dict[str, Tuple[str, ...]] = {
    "c,s": ("chlorides", "sulphates"),
    "c,t": ("chlorides", "total_sulfur_dioxide"),
    "s,t": ("sulphates", "total_sulfur_dioxide"),
    "c,s,t": ("chlorides", "sulphates", "total_sulfur_dioxide"),
}

# Moment targets from the published summary statistics of the real dataset.
_CHLORIDES_MEAN, _CHLORIDES_SD = 0.0458, 0.0218
_SULPHATES_MEAN, _SULPHATES_SD = 0.4898, 0.1141
_TOTAL_SO2_MEAN, _TOTAL_SO2_SD = 138.36, 42.50

# Pairwise correlations (c-s, c-t, s-t) of the real dataset, approximate.
_CORRELATION = np.array(
    [
        [1.00, 0.02, 0.21],
        [0.02, 1.00, 0.13],
        [0.21, 0.13, 1.00],
    ]
)


def synthesize_wine(
    n: int = WINE_CARDINALITY, seed: int = 2012
) -> "np.ndarray":
    """Return an ``(n, 3)`` array mimicking the white-wine attributes.

    Columns follow :data:`WINE_ATTRIBUTES`.  Values are positive and in
    realistic physical ranges; dominance is *not* yet oriented or
    normalized — use :func:`wine_split` for the experiment-ready form.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    # Gaussian copula: correlated standard normals, then marginal transforms.
    chol = np.linalg.cholesky(_CORRELATION)
    z = rng.standard_normal((n, 3)) @ chol.T
    # chlorides: log-normal matched to mean/sd.
    lg_var = np.log(1.0 + (_CHLORIDES_SD / _CHLORIDES_MEAN) ** 2)
    lg_mu = np.log(_CHLORIDES_MEAN) - lg_var / 2.0
    chlorides = np.exp(lg_mu + np.sqrt(lg_var) * z[:, 0])
    # sulphates / total SO2: truncated normals (values stay positive).
    sulphates = np.clip(
        _SULPHATES_MEAN + _SULPHATES_SD * z[:, 1], 0.22, 1.08
    )
    total_so2 = np.clip(
        _TOTAL_SO2_MEAN + _TOTAL_SO2_SD * z[:, 2], 9.0, 440.0
    )
    return np.column_stack([chlorides, sulphates, total_so2])


def wine_split(
    combo: str = "c,s,t",
    t_size: int = 1000,
    seed: int = 2012,
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Return the paper's ``(P, T)`` split for one attribute combination.

    Protocol (§IV-B): project the dataset to the combination's attributes,
    min-max normalize into ``[0,1]^c``, pick ``t_size`` random *non-skyline*
    tuples as ``T``, and let every remaining tuple form ``P``.

    Args:
        combo: a key of :data:`ATTRIBUTE_COMBOS` (``"c,s"``, ``"c,t"``,
            ``"s,t"``, or ``"c,s,t"``).
        t_size: number of product tuples (paper: 1,000).
        seed: seed shared by synthesis and the random split.

    Returns:
        ``(P, T)`` arrays with ``P.shape[0] + T.shape[0] == 4898``.
    """
    if combo not in ATTRIBUTE_COMBOS:
        raise ConfigurationError(
            f"unknown combination {combo!r}; "
            f"choose from {sorted(ATTRIBUTE_COMBOS)}"
        )
    raw = synthesize_wine(seed=seed)
    columns = [WINE_ATTRIBUTES.index(a) for a in ATTRIBUTE_COMBOS[combo]]
    data = min_max_normalize(raw[:, columns])
    skyline_mask = numpy_skyline_mask(data)
    non_skyline = np.flatnonzero(~skyline_mask)
    if len(non_skyline) < t_size:
        raise EmptyDatasetError(
            f"only {len(non_skyline)} non-skyline tuples available, "
            f"need {t_size}"
        )
    rng = np.random.default_rng(seed + 1)
    t_idx = rng.choice(non_skyline, size=t_size, replace=False)
    t_mask = np.zeros(data.shape[0], dtype=bool)
    t_mask[t_idx] = True
    return data[~t_mask], data[t_mask]
