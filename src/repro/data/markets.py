"""Realistic domain market generators: phones and hotels.

The paper motivates product upgrading with cell phones (its running
example) and hotels (§I-B).  These generators synthesize *plausible*
markets in raw attribute units — correlated specs, segment structure,
realistic ranges — for examples and integration tests that should read
like the motivating applications rather than unit-cube noise.

Both return raw attribute matrices plus the orientation vector needed to
convert them to the library's smaller-is-better convention via
:func:`repro.data.normalize.orient_minimize`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.normalize import Orientation
from repro.exceptions import ConfigurationError

#: Phone market attribute names, in column order.
PHONE_MARKET_ATTRIBUTES = (
    "weight_g",
    "standby_hours",
    "camera_megapixels",
)

#: Orientation per phone attribute (lighter better; more standby/camera).
PHONE_MARKET_ORIENTATIONS = (
    Orientation.MIN,
    Orientation.MAX,
    Orientation.MAX,
)

#: Hotel market attribute names, in column order.
HOTEL_MARKET_ATTRIBUTES = (
    "nightly_rate",
    "distance_to_center_km",
    "guest_rating",
)

#: Orientation per hotel attribute (cheaper/closer better; higher rating).
HOTEL_MARKET_ORIENTATIONS = (
    Orientation.MIN,
    Orientation.MIN,
    Orientation.MAX,
)


def phone_market(
    n: int, seed: int = 0
) -> Tuple["np.ndarray", Tuple[Orientation, ...]]:
    """Synthesize ``n`` phones with correlated, segment-structured specs.

    Three segments (budget / mid-range / flagship) with increasing camera
    resolution and standby time; weight trades off against battery within
    a segment (bigger battery, heavier phone).

    Returns:
        ``(raw, orientations)`` where ``raw`` has columns
        :data:`PHONE_MARKET_ATTRIBUTES` in physical units.
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    segment = rng.choice(3, size=n, p=[0.5, 0.35, 0.15])
    base_standby = np.array([120.0, 180.0, 260.0])[segment]
    base_camera = np.array([2.0, 5.0, 12.0])[segment]
    standby = base_standby * rng.lognormal(0.0, 0.15, n)
    # Weight grows with battery capacity (standby), plus noise.
    weight = 90.0 + standby * 0.35 + rng.normal(0.0, 12.0, n)
    camera = np.maximum(
        0.3, base_camera * rng.lognormal(0.0, 0.25, n)
    )
    raw = np.column_stack(
        [np.clip(weight, 70.0, None), standby, camera]
    )
    return raw, PHONE_MARKET_ORIENTATIONS


def hotel_market(
    n: int, seed: int = 0
) -> Tuple["np.ndarray", Tuple[Orientation, ...]]:
    """Synthesize ``n`` hotels with location/price/rating structure.

    Rates fall with distance from the center and rise with rating; the
    rating distribution is left-skewed (most hotels are decent), matching
    public review-platform statistics in shape.
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    distance = rng.gamma(shape=2.0, scale=2.0, size=n)  # km, mode ~2
    rating = np.clip(9.2 - rng.gamma(1.8, 0.7, n), 3.0, 10.0)
    rate = (
        40.0
        + 22.0 * rating
        - 6.0 * np.minimum(distance, 8.0)
        + rng.normal(0.0, 15.0, n)
    )
    raw = np.column_stack([np.clip(rate, 25.0, None), distance, rating])
    return raw, HOTEL_MARKET_ORIENTATIONS


def split_by_brand(
    raw: "np.ndarray",
    own_fraction: float,
    seed: int = 0,
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Randomly split a market into competitors and "our" products.

    Args:
        raw: the full market.
        own_fraction: fraction of rows assigned to our brand, in (0, 1).

    Returns:
        ``(competitor_rows, own_rows, own_ids)`` with ``own_ids`` mapping
        our rows back to market positions.
    """
    if not 0.0 < own_fraction < 1.0:
        raise ConfigurationError(
            f"own_fraction must be in (0, 1), got {own_fraction}"
        )
    n = raw.shape[0]
    own_size = max(1, int(round(n * own_fraction)))
    if own_size >= n:
        raise ConfigurationError("own_fraction leaves no competitors")
    rng = np.random.default_rng(seed)
    own_ids = np.sort(rng.choice(n, size=own_size, replace=False))
    mask = np.zeros(n, dtype=bool)
    mask[own_ids] = True
    return raw[~mask], raw[mask], own_ids


def _check_n(n: int) -> None:
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
