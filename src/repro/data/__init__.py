"""Dataset generation, normalization, and I/O.

Provides the paper's three data sources:

* synthetic independent / correlated / anti-correlated point sets following
  the Börzsönyi et al. generator conventions (:mod:`repro.data.generators`),
  including the paper's experiment layout with ``P`` drawn from ``[0,1]^c``
  and ``T`` from ``(1,2]^c``;
* a synthetic stand-in for the UCI white-wine dataset used in §IV-B
  (:mod:`repro.data.wine`) — see DESIGN.md §5 for the substitution rationale;
* the cell-phone running example of Tables I–II (:mod:`repro.data.phones`).
"""

from repro.data.categorical import OrdinalEncoder
from repro.data.generators import (
    anti_correlated,
    correlated,
    generate,
    independent,
    paper_workload,
)
from repro.data.normalize import (
    Orientation,
    min_max_normalize,
    orient_minimize,
)
from repro.data.phones import (
    COMPETITOR_PHONES,
    UPGRADE_CANDIDATE_PHONES,
    phone_example,
)
from repro.data.wine import ATTRIBUTE_COMBOS, synthesize_wine, wine_split
from repro.data.io import load_points_csv, save_points_csv

__all__ = [
    "ATTRIBUTE_COMBOS",
    "COMPETITOR_PHONES",
    "OrdinalEncoder",
    "Orientation",
    "UPGRADE_CANDIDATE_PHONES",
    "anti_correlated",
    "correlated",
    "generate",
    "independent",
    "load_points_csv",
    "min_max_normalize",
    "orient_minimize",
    "paper_workload",
    "phone_example",
    "save_points_csv",
    "synthesize_wine",
    "wine_split",
]
