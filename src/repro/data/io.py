"""CSV persistence for point sets.

Experiment datasets are cached on disk between benchmark runs; the format is
a plain CSV with an optional header row naming the attributes, loadable
without this library.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError

PathLike = Union[str, Path]


def save_points_csv(
    path: PathLike,
    points: "np.ndarray",
    attributes: Optional[Sequence[str]] = None,
) -> None:
    """Write an ``(n, d)`` point array to ``path`` as CSV.

    Args:
        path: destination file; parent directories are created.
        points: the data.
        attributes: optional column names written as a header row.
    """
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim != 2:
        raise ConfigurationError(f"expected (n, d) data, got {arr.shape}")
    if attributes is not None and len(attributes) != arr.shape[1]:
        raise ConfigurationError(
            f"{len(attributes)} attribute names for {arr.shape[1]} columns"
        )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        if attributes is not None:
            writer.writerow(attributes)
        for row in arr:
            writer.writerow([repr(float(v)) for v in row])


def load_points_csv(
    path: PathLike,
) -> Tuple["np.ndarray", Optional[Tuple[str, ...]]]:
    """Read a CSV point file written by :func:`save_points_csv`.

    A header row is auto-detected (any non-numeric first row).

    Returns:
        ``(points, attributes)`` where ``attributes`` is ``None`` when the
        file has no header.
    """
    rows = []
    attributes: Optional[Tuple[str, ...]] = None
    with Path(path).open(newline="") as handle:
        reader = csv.reader(handle)
        for i, row in enumerate(reader):
            if not row:
                continue
            if i == 0:
                try:
                    rows.append([float(v) for v in row])
                except ValueError:
                    attributes = tuple(row)
                continue
            rows.append([float(v) for v in row])
    if not rows:
        raise ConfigurationError(f"no data rows in {path}")
    widths = {len(r) for r in rows}
    if len(widths) != 1:
        raise ConfigurationError(f"ragged rows in {path}: widths {widths}")
    return np.asarray(rows, dtype=np.float64), attributes
