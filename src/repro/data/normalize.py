"""Attribute normalization and orientation.

The paper's Definition 3 footnote: for a dimension on which *larger* values
are preferred (standby time, camera resolution), a negation converts it to
the library-wide smaller-is-better convention.  :func:`orient_minimize`
applies that conversion; :func:`min_max_normalize` rescales every dimension
into ``[0, 1]`` as the paper does for the wine data (§IV-B).
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError


class Orientation(enum.Enum):
    """Preference direction of one attribute."""

    MIN = "min"  #: smaller values preferred (weight, price, chlorides)
    MAX = "max"  #: larger values preferred (standby time, camera pixels)


def orient_minimize(
    data: "np.ndarray",
    orientations: Sequence[Orientation],
) -> "np.ndarray":
    """Return a copy of ``data`` where every dimension is min-preferred.

    MAX-oriented columns are negated, which preserves the dominance relation
    exactly (the paper's "simple negation conversion").

    Args:
        data: an ``(n, d)`` array.
        orientations: one :class:`Orientation` per column.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2:
        raise ConfigurationError(f"expected (n, d) data, got {arr.shape}")
    if arr.shape[1] != len(orientations):
        raise ConfigurationError(
            f"{len(orientations)} orientations for {arr.shape[1]} columns"
        )
    out = arr.copy()
    for i, o in enumerate(orientations):
        if o is Orientation.MAX:
            out[:, i] = -out[:, i]
        elif o is not Orientation.MIN:
            raise ConfigurationError(f"invalid orientation: {o!r}")
    return out


def min_max_normalize(
    data: "np.ndarray",
    low: float = 0.0,
    high: float = 1.0,
) -> "np.ndarray":
    """Rescale every column of ``data`` affinely into ``[low, high]``.

    Constant columns map to ``low`` (a constant attribute can never decide
    dominance, so any constant is equally valid; the low end keeps the
    reciprocal cost finite).
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2:
        raise ConfigurationError(f"expected (n, d) data, got {arr.shape}")
    if high <= low:
        raise ConfigurationError(f"need high > low, got [{low}, {high}]")
    mins = arr.min(axis=0)
    maxs = arr.max(axis=0)
    span = maxs - mins
    out = np.empty_like(arr)
    for i in range(arr.shape[1]):
        if span[i] == 0:
            out[:, i] = low
        else:
            out[:, i] = low + (arr[:, i] - mins[i]) / span[i] * (high - low)
    return out
