"""Synthetic point-set generators (Börzsönyi et al. conventions).

Three distributions, as in the skyline literature the paper follows:

* **independent** — uniform in the unit hypercube; moderate skylines;
* **correlated** — points hug the main diagonal; tiny skylines;
* **anti-correlated** — points concentrate around a hyperplane orthogonal to
  the diagonal (being good on one dimension implies being bad on others);
  large skylines, the paper's hard case.

:func:`paper_workload` reproduces the paper's §IV-C/D layout: the competitor
set ``P`` lives in ``[0,1]^c`` and the upgrade-candidate set ``T`` in
``(1,2]^c``, so every product is initially dominated by essentially all
competitors — the worst case for upgrading.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError

RandomState = Union[int, np.random.Generator, None]

_DISTRIBUTIONS = ("independent", "correlated", "anti_correlated")


def _rng(seed: RandomState) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def independent(
    n: int, dims: int, seed: RandomState = None
) -> "np.ndarray":
    """Return ``n`` points uniform in ``[0,1]^dims``."""
    _check(n, dims)
    return _rng(seed).random((n, dims))


def correlated(
    n: int,
    dims: int,
    seed: RandomState = None,
    spread: float = 0.08,
) -> "np.ndarray":
    """Return ``n`` points clustered around the main diagonal.

    Each point is a diagonal anchor ``v * (1,...,1)`` plus centred Gaussian
    noise of standard deviation ``spread``, clipped to the unit cube.
    """
    _check(n, dims)
    rng = _rng(seed)
    anchor = rng.random((n, 1))
    noise = rng.normal(0.0, spread, size=(n, dims))
    return np.clip(anchor + noise, 0.0, 1.0)


def anti_correlated(
    n: int,
    dims: int,
    seed: RandomState = None,
    plane_spread: float = 0.02,
) -> "np.ndarray":
    """Return ``n`` points concentrated around an anti-diagonal hyperplane.

    Following the Börzsönyi generator's construction: each point starts at a
    diagonal anchor ``v`` drawn from a tight normal centred at 0.5 (standard
    deviation ``plane_spread``), then mass is redistributed *between*
    dimensions by a zero-sum perturbation, so the coordinate sum stays near
    ``dims * v`` while individual coordinates trade off strongly against
    each other.  The redistribution step is drawn with a square-root bias
    towards large spreads; combined with the tight anchor this keeps the
    cross-dimension trade-off (not the anchor variance) in charge of
    dominance, yielding the large, fast-growing skylines anti-correlated
    data is used for (at 10K points: ~95 skyline points for ``dims=2``,
    ~7K for ``dims=5`` — versus 9 and 455 for the independent generator).
    """
    _check(n, dims)
    rng = _rng(seed)
    anchors = np.clip(
        rng.normal(0.5, plane_spread, size=(n, 1)), 0.05, 0.95
    )
    if dims == 1:
        return anchors.copy()
    # Zero-sum direction per point: uniform noise minus its own mean.
    raw = rng.random((n, dims))
    direction = raw - raw.mean(axis=1, keepdims=True)
    # Largest step keeping every coordinate inside [0, 1].
    with np.errstate(divide="ignore", invalid="ignore"):
        pos_room = np.where(direction > 0, (1.0 - anchors) / direction, np.inf)
        neg_room = np.where(direction < 0, (0.0 - anchors) / direction, np.inf)
    max_step = np.minimum(pos_room.min(axis=1), neg_room.min(axis=1))
    max_step = np.where(np.isfinite(max_step), max_step, 0.0)
    step = np.sqrt(rng.random(n)) * max_step
    points = anchors + direction * step[:, None]
    return np.clip(points, 0.0, 1.0)


def generate(
    distribution: str,
    n: int,
    dims: int,
    seed: RandomState = None,
    low: float = 0.0,
    high: float = 1.0,
) -> "np.ndarray":
    """Generate ``n`` points of the named distribution in ``[low, high]^dims``.

    Args:
        distribution: ``"independent"``, ``"correlated"``, or
            ``"anti_correlated"``.
        low, high: affine rescaling target interval per dimension.

    Returns:
        An ``(n, dims)`` float array.
    """
    if distribution not in _DISTRIBUTIONS:
        raise ConfigurationError(
            f"unknown distribution {distribution!r}; "
            f"choose from {_DISTRIBUTIONS}"
        )
    if high <= low:
        raise ConfigurationError(f"need high > low, got [{low}, {high}]")
    maker = {
        "independent": independent,
        "correlated": correlated,
        "anti_correlated": anti_correlated,
    }[distribution]
    unit = maker(n, dims, seed)
    return low + unit * (high - low)


def paper_workload(
    distribution: str,
    p_size: int,
    t_size: int,
    dims: int,
    seed: RandomState = None,
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Return the paper's §IV synthetic workload ``(P, T)``.

    ``P`` is drawn from ``[0,1]^dims`` and ``T`` from ``(1,2]^dims`` — the
    paper's setup where every upgrade candidate starts out dominated by
    (essentially) every competitor.  Both sets use the same distribution.

    Args:
        distribution: the shared distribution name.
        p_size: competitor cardinality ``|P|``.
        t_size: product cardinality ``|T|``.
        dims: dimensionality ``c``.
        seed: base seed; ``P`` and ``T`` use independent substreams.

    Returns:
        ``(P, T)`` as float arrays of shapes ``(p_size, dims)`` and
        ``(t_size, dims)``.
    """
    rng = _rng(seed)
    p_points = generate(distribution, p_size, dims, rng, low=0.0, high=1.0)
    # (1, 2]: shift the unit sample and nudge off the closed lower boundary.
    t_unit = generate(distribution, t_size, dims, rng, low=0.0, high=1.0)
    t_points = 1.0 + np.maximum(t_unit, 1e-9)
    return p_points, t_points


def _check(n: int, dims: int) -> None:
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if dims < 1:
        raise ConfigurationError(f"dims must be >= 1, got {dims}")
