"""The paper's cell-phone running example (Tables I and II).

Table I is the competitor set ``P`` (phones 1–6); Table II the manufacturer's
uncompetitive set ``T`` (phones A–D).  Attributes: weight (grams, smaller is
better), standby time (hours, larger is better), camera resolution
(megapixels, larger is better).

The paper's introduction states the dominance facts these tables encode —
phones 1, 3, 5 are the skyline of ``P``; phone A is dominated by phones
1, 3, 5, 6; phone B by all of ``P``; phone C by all but phone 1; phone D by
phones 1, 4, 5 — and the test suite verifies each one against this module.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.data.normalize import Orientation, orient_minimize

#: Attribute names in column order.
PHONE_ATTRIBUTES = ("weight", "standby_time", "camera_pixels")

#: Preference direction per attribute (weight: less is better).
PHONE_ORIENTATIONS = (Orientation.MIN, Orientation.MAX, Orientation.MAX)

#: Table I — competitor phones, raw attribute values.
COMPETITOR_PHONES: Dict[str, Tuple[float, float, float]] = {
    "phone 1": (140.0, 200.0, 2.0),
    "phone 2": (180.0, 150.0, 3.0),
    "phone 3": (100.0, 160.0, 3.0),
    "phone 4": (180.0, 180.0, 3.0),
    "phone 5": (120.0, 180.0, 4.0),
    "phone 6": (150.0, 150.0, 3.0),
}

#: Table II — the manufacturer's upgrade candidates, raw attribute values.
UPGRADE_CANDIDATE_PHONES: Dict[str, Tuple[float, float, float]] = {
    "phone A": (150.0, 120.0, 2.0),
    "phone B": (180.0, 130.0, 1.0),
    "phone C": (180.0, 120.0, 3.0),
    "phone D": (220.0, 180.0, 2.0),
}


def phone_example() -> Tuple["np.ndarray", "np.ndarray", List[str], List[str]]:
    """Return the running example oriented to smaller-is-better.

    Returns:
        ``(P, T, p_names, t_names)`` where ``P`` and ``T`` are ``(n, 3)``
        arrays with max-preferred attributes negated, and the name lists
        give the row order ("phone 1".."phone 6", "phone A".."phone D").
    """
    p_names = sorted(COMPETITOR_PHONES)
    t_names = sorted(UPGRADE_CANDIDATE_PHONES)
    p_raw = np.array([COMPETITOR_PHONES[n] for n in p_names])
    t_raw = np.array([UPGRADE_CANDIDATE_PHONES[n] for n in t_names])
    p_points = orient_minimize(p_raw, PHONE_ORIENTATIONS)
    t_points = orient_minimize(t_raw, PHONE_ORIENTATIONS)
    return p_points, t_points, p_names, t_names
