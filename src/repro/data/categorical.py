"""Ordinal categorical attributes (the paper's §VI first research direction).

The paper assumes numerical domains and names mixed numerical/categorical
data as future work.  For *ordinal* categories — quality grades, star
ratings, material classes — dominance is well defined once the categories
are totally ordered, so the entire machinery applies after an
order-preserving encoding.  :class:`OrdinalEncoder` provides exactly that:
categories map to their rank (best category — the one consumers prefer —
to the smallest value, matching the library's smaller-is-better
convention), and decoded upgrade results snap to the nearest achievable
category.

Nominal (unordered) categories admit no total preference order and hence
no dominance semantics; they are intentionally out of scope, as they are
for the paper.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ConfigurationError


class OrdinalEncoder:
    """Order-preserving encoder for one ordinal categorical attribute.

    Args:
        categories: category labels ordered from *most* preferred to
            *least* preferred (e.g. ``["platinum", "gold", "silver"]``).
            The most preferred maps to ``0.0``, in line with the
            smaller-is-better dominance convention.

    Example:
        >>> enc = OrdinalEncoder(["platinum", "gold", "silver"])
        >>> enc.encode("gold")
        1.0
        >>> enc.decode(0.3)
        'platinum'
    """

    def __init__(self, categories: Sequence[str]):
        labels = list(categories)
        if len(labels) < 2:
            raise ConfigurationError(
                "an ordinal attribute needs at least two categories"
            )
        if len(set(labels)) != len(labels):
            raise ConfigurationError(f"duplicate categories: {labels}")
        self._labels: List[str] = labels
        self._ranks: Dict[str, float] = {
            label: float(rank) for rank, label in enumerate(labels)
        }

    @property
    def categories(self) -> Tuple[str, ...]:
        """Labels from most to least preferred."""
        return tuple(self._labels)

    def encode(self, label: str) -> float:
        """Return the numeric rank of ``label`` (0.0 = most preferred)."""
        try:
            return self._ranks[label]
        except KeyError:
            raise ConfigurationError(
                f"unknown category {label!r}; known: {self._labels}"
            ) from None

    def encode_many(self, labels: Sequence[str]) -> List[float]:
        """Encode a column of labels."""
        return [self.encode(label) for label in labels]

    def decode(self, value: float) -> str:
        """Snap a numeric value back to the nearest achievable category.

        Upgraded coordinates land at ``rank - epsilon``; rounding to the
        nearest rank (clamped to the valid range) recovers the category a
        manufacturer can actually build.
        """
        index = int(round(value))
        index = min(max(index, 0), len(self._labels) - 1)
        return self._labels[index]

    def decode_many(self, values: Sequence[float]) -> List[str]:
        """Decode a column of numeric values."""
        return [self.decode(v) for v in values]

    def upgrade_steps(self, old: str, new: str) -> int:
        """Number of category steps an upgrade moves (negative = downgrade)."""
        return int(self.encode(old) - self.encode(new))

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:
        return f"OrdinalEncoder({self._labels!r})"
