"""One-call convenience API.

:func:`top_k_upgrades` accepts raw point collections, builds the required
R-tree(s) via STR bulk loading, dispatches to the chosen algorithm, and
returns an :class:`~repro.core.types.UpgradeOutcome`.  Library users with
long-lived indexes should instead construct
:class:`~repro.core.join.JoinUpgrader` (or call the probing functions)
directly to amortize index construction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.bounds import BOUND_NAMES, LBC_MODES
from repro.core.join import JoinUpgrader
from repro.core.probing import basic_probing, improved_probing
from repro.core.types import UpgradeConfig, UpgradeOutcome
from repro.costs.model import CostModel, paper_cost_model
from repro.exceptions import EmptyDatasetError, UnknownOptionError
from repro.rtree.tree import RTree

#: Algorithm selector values accepted by :func:`top_k_upgrades`.
METHODS = ("auto", "join", "probing", "basic-probing")

_DEFAULT_CONFIG = UpgradeConfig()


def top_k_upgrades(
    competitors: Sequence[Sequence[float]],
    products: Sequence[Sequence[float]],
    k: int = 1,
    cost_model: Optional[CostModel] = None,
    method: str = "join",
    bound: str = "clb",
    config: UpgradeConfig = _DEFAULT_CONFIG,
    max_entries: int = 32,
    lbc_mode: str = "corrected",
    explain: bool = False,
    planner=None,
) -> UpgradeOutcome:
    """Solve the top-k product upgrading problem end to end.

    Args:
        competitors: the competitor set ``P`` (rows of points).
        products: the upgrade-candidate set ``T``; result record ids are
            row positions in this collection.
        k: number of cheapest-to-upgrade products to return.
        cost_model: the product cost function; defaults to the paper's
            summation of reciprocal attribute costs.
        method: ``"auto"`` (cost-based planner picks), ``"join"``
            (Algorithm 4), ``"probing"`` (improved probing), or
            ``"basic-probing"`` (Algorithm 2 verbatim).
        bound: join-list bound for the join method (ignored otherwise;
            with ``method="auto"`` the planner chooses the bound).
        config: Algorithm 1 configuration.
        max_entries: R-tree node capacity for the bulk-loaded indexes.
        lbc_mode: per-pair bound variant for the join method —
            ``"corrected"`` (default) or ``"paper"``; see
            :mod:`repro.core.bounds`.
        explain: attach an EXPLAIN tree (estimated vs actual costs per
            plan node) as ``outcome.report.extras["explain"]``, an
            :class:`~repro.plan.explain.ExplainReport`.  Works for fixed
            methods too — the tree then shows what the planner would
            have picked.
        planner: the :class:`~repro.plan.planner.Planner` to consult
            (``method="auto"`` / ``explain=True`` only); defaults to the
            shared process-wide planner, which accumulates calibration
            feedback across calls.

    Returns:
        The top-k results sorted by ascending upgrade cost, with a run
        report; ``report.extras["plan"]`` names the executed plan.

    Example:
        >>> import numpy as np
        >>> P = np.array([[0.2, 0.8], [0.5, 0.5], [0.8, 0.2]])
        >>> T = np.array([[0.9, 0.9], [0.6, 0.6]])
        >>> outcome = top_k_upgrades(P, T, k=1)
        >>> outcome.results[0].record_id
        1
    """
    # Validate every string selector up front — a typo fails here with
    # the valid choices listed, not deep inside index construction.
    if method not in METHODS:
        raise UnknownOptionError("method", method, METHODS)
    if bound not in BOUND_NAMES:
        raise UnknownOptionError("bound", bound, BOUND_NAMES)
    if lbc_mode not in LBC_MODES:
        raise UnknownOptionError("lbc_mode", lbc_mode, LBC_MODES)
    if len(products) == 0:
        raise EmptyDatasetError("the product set T is empty")
    dims = len(products[0])
    if cost_model is None:
        cost_model = paper_cost_model(dims)

    if len(competitors) == 0:
        # Degenerate but legal: nothing dominates anything, all costs are 0.
        competitor_tree = RTree(dims, max_entries=max_entries)
    else:
        competitor_tree = RTree.bulk_load(
            competitors, max_entries=max_entries
        )

    if method == "auto" or explain:
        return _planned_top_k(
            competitor_tree,
            products,
            cost_model,
            k,
            config,
            max_entries,
            method,
            bound,
            lbc_mode,
            explain,
            planner,
        )

    if method == "join":
        product_tree = RTree.bulk_load(products, max_entries=max_entries)
        upgrader = JoinUpgrader(
            competitor_tree, product_tree, cost_model, bound, config, lbc_mode
        )
        return upgrader.run(k)
    if method == "probing":
        return improved_probing(
            competitor_tree, products, cost_model, k, config
        )
    return basic_probing(competitor_tree, products, cost_model, k, config)


def _planned_top_k(
    competitor_tree: RTree,
    products: Sequence[Sequence[float]],
    cost_model: CostModel,
    k: int,
    config: UpgradeConfig,
    max_entries: int,
    method: str,
    bound: str,
    lbc_mode: str,
    explain: bool,
    planner,
) -> UpgradeOutcome:
    """Plan (or force), execute, observe, and optionally explain."""
    # Imported lazily: repro.plan builds on repro.core, not vice versa.
    from repro.plan import (
        LogicalPlan,
        PhysicalPlan,
        default_planner,
        execute_plan,
        profile_catalog,
    )
    from repro.plan.planner import attach_actual

    if planner is None:
        planner = default_planner()
    profile = profile_catalog(
        competitor_tree, len(products), competitor_tree.dims or
        len(products[0]), max_entries=max_entries,
    )
    logical = LogicalPlan(k=k, profile=profile, lbc_mode=lbc_mode)
    force = None
    if method != "auto":
        force = PhysicalPlan(
            method=method,
            bound=bound,
            lbc_mode=lbc_mode,
            vector_jl_from=planner.vector_jl_from,
        )
    planned = planner.plan(logical, force=force)
    outcome = execute_plan(
        planned.plan,
        competitor_tree,
        products,
        cost_model,
        k,
        config,
        max_entries,
    )
    planner.observe(
        planned, outcome.report.elapsed_s, outcome.report.counters
    )
    outcome.report.extras["plan"] = planned.plan.label
    if explain:
        report = planned.explain()
        attach_actual(
            report, outcome.report.elapsed_s, outcome.report.counters
        )
        outcome.report.extras["explain"] = report
    return outcome
