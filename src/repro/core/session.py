"""A long-lived market session: mutable catalogs with incremental queries.

The one-shot APIs (:func:`repro.core.api.top_k_upgrades`,
:class:`~repro.core.join.JoinUpgrader`) rebuild nothing but also own
nothing: callers manage the trees.  :class:`MarketSession` is the
convenience layer a downstream application would actually keep around —
it owns the competitor and product R-trees, supports incremental updates
(competitors appear/disappear, products get added, upgraded products get
committed), and answers top-k upgrade queries against the current state.

Updates use the dynamic R-tree paths (Guttman insert / delete-condense);
queries run the join algorithm with valid bounds, so every answer agrees
with a from-scratch recomputation — which the test suite asserts after
randomized update interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.dominators import get_dominating_skyline
from repro.core.join import JoinUpgrader
from repro.core.types import UpgradeConfig, UpgradeOutcome, UpgradeResult
from repro.costs.model import CostModel, paper_cost_model
from repro.exceptions import ConfigurationError
from repro.geometry.point import validate_point
from repro.instrumentation import Counters
from repro.rtree.query import intersects_dominance_region
from repro.rtree.tree import RTree

Point = Tuple[float, ...]

_DEFAULT_CONFIG = UpgradeConfig()


@dataclass(frozen=True)
class MutationEvent:
    """One catalog mutation, as reported to session listeners.

    Attributes:
        side: ``"competitor"`` or ``"product"`` — which set changed.
        action: ``"add"``, ``"remove"``, or ``"upgrade"``.
        point: the point added or removed; for an upgrade, the *new* point.
        record_id: the mutated record's id.
        old_point: the replaced point (upgrades only).
    """

    side: str
    action: str
    point: Point
    record_id: int
    old_point: Optional[Point] = None

MutationListener = Callable[[MutationEvent], None]


class MarketSession:
    """Owns a competitor market and a product catalog; answers top-k queries.

    Args:
        dims: dimensionality of the product space.
        cost_model: the (monotonic) product cost function.
        bound: join-list bound used for queries.
        max_entries: R-tree node capacity.

    Example:
        >>> from repro.costs.model import paper_cost_model
        >>> session = MarketSession(2, paper_cost_model(2))
        >>> session.add_competitor((0.4, 0.6))
        0
        >>> session.add_product((1.0, 1.0))
        0
        >>> session.top_k(1).results[0].record_id
        0
    """

    def __init__(
        self,
        dims: int,
        cost_model: CostModel,
        bound: str = "clb",
        config: UpgradeConfig = _DEFAULT_CONFIG,
        max_entries: int = 32,
    ):
        if cost_model.dims != dims:
            raise ConfigurationError(
                f"cost model covers {cost_model.dims} dims, session "
                f"needs {dims}"
            )
        self.dims = dims
        self.cost_model = cost_model
        self.bound = bound
        self.config = config
        self._competitors = RTree(dims, max_entries=max_entries)
        self._products = RTree(dims, max_entries=max_entries)
        self._competitor_points: Dict[int, Point] = {}
        self._product_points: Dict[int, Point] = {}
        self._next_competitor_id = 0
        self._next_product_id = 0
        self.competitor_epoch = 0
        self.product_epoch = 0
        self._listeners: List[MutationListener] = []

    @classmethod
    def from_points(
        cls,
        competitors: Sequence[Sequence[float]],
        products: Sequence[Sequence[float]],
        cost_model: Optional[CostModel] = None,
        bound: str = "clb",
        config: UpgradeConfig = _DEFAULT_CONFIG,
        max_entries: int = 32,
    ) -> "MarketSession":
        """Build a session with STR-bulk-loaded indexes (ids are row order).

        Much faster than repeated :meth:`add_competitor` /
        :meth:`add_product` for large initial catalogs; the serving layer's
        benchmarks start here.  Either collection may be empty.
        """
        rows_p = [tuple(float(v) for v in p) for p in competitors]
        rows_t = [tuple(float(v) for v in p) for p in products]
        dims = len(rows_t[0]) if rows_t else (
            len(rows_p[0]) if rows_p else None
        )
        if dims is None:
            raise ConfigurationError(
                "from_points needs at least one point to infer dims"
            )
        if cost_model is None:
            cost_model = paper_cost_model(dims)
        session = cls(
            dims, cost_model, bound=bound, config=config,
            max_entries=max_entries,
        )
        if rows_p:
            session._competitors = RTree.bulk_load(
                rows_p, max_entries=max_entries
            )
            session._competitor_points = dict(enumerate(rows_p))
            session._next_competitor_id = len(rows_p)
        if rows_t:
            session._products = RTree.bulk_load(
                rows_t, max_entries=max_entries
            )
            session._product_points = dict(enumerate(rows_t))
            session._next_product_id = len(rows_t)
        return session

    # -- epochs and listeners --------------------------------------------------

    @property
    def epoch(self) -> Tuple[int, int]:
        """Catalog version as ``(competitor_epoch, product_epoch)``.

        Each component increments once per successful mutation of its side;
        the serving layer keys cached answers on this pair.
        """
        return (self.competitor_epoch, self.product_epoch)

    def add_mutation_listener(self, listener: MutationListener) -> None:
        """Call ``listener(event)`` after every successful mutation."""
        self._listeners.append(listener)

    def remove_mutation_listener(self, listener: MutationListener) -> None:
        """Detach a previously registered listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, event: MutationEvent) -> None:
        for listener in list(self._listeners):
            listener(event)

    # -- market mutation ------------------------------------------------------

    def add_competitor(self, point: Sequence[float]) -> int:
        """Register a competitor product; returns its id."""
        p = validate_point(point, self.dims)
        cid = self._next_competitor_id
        self._next_competitor_id += 1
        self._competitors.insert(p, cid)
        self._competitor_points[cid] = p
        self.competitor_epoch += 1
        self._notify(MutationEvent("competitor", "add", p, cid))
        return cid

    def remove_competitor(self, competitor_id: int) -> bool:
        """Withdraw a competitor (e.g. discontinued); True if it existed."""
        point = self._competitor_points.pop(competitor_id, None)
        if point is None:
            return False
        removed = self._competitors.delete(point, competitor_id)
        if removed:
            self.competitor_epoch += 1
            self._notify(
                MutationEvent("competitor", "remove", point, competitor_id)
            )
        return removed

    def add_product(self, point: Sequence[float]) -> int:
        """Register one of our own products; returns its id."""
        p = validate_point(point, self.dims)
        pid = self._next_product_id
        self._next_product_id += 1
        self._products.insert(p, pid)
        self._product_points[pid] = p
        self.product_epoch += 1
        self._notify(MutationEvent("product", "add", p, pid))
        return pid

    def remove_product(self, product_id: int) -> bool:
        """Drop a product from the catalog; True if it existed."""
        point = self._product_points.pop(product_id, None)
        if point is None:
            return False
        removed = self._products.delete(point, product_id)
        if removed:
            self.product_epoch += 1
            self._notify(
                MutationEvent("product", "remove", point, product_id)
            )
        return removed

    def commit_upgrade(self, result: UpgradeResult) -> None:
        """Apply an upgrade: the product now has its upgraded vector.

        Raises:
            ConfigurationError: unknown product id or a stale result (the
                stored point no longer matches ``result.original``).
        """
        current = self._product_points.get(result.record_id)
        if current is None:
            raise ConfigurationError(
                f"unknown product id {result.record_id}"
            )
        if current != result.original:
            raise ConfigurationError(
                f"stale upgrade for product {result.record_id}: catalog "
                f"has {current}, result was computed for {result.original}"
            )
        self._products.delete(current, result.record_id)
        self._products.insert(result.upgraded, result.record_id)
        self._product_points[result.record_id] = result.upgraded
        self.product_epoch += 1
        self._notify(
            MutationEvent(
                "product",
                "upgrade",
                result.upgraded,
                result.record_id,
                old_point=current,
            )
        )

    # -- queries ----------------------------------------------------------------

    @property
    def competitor_count(self) -> int:
        """Number of live competitors."""
        return len(self._competitor_points)

    @property
    def product_count(self) -> int:
        """Number of live products."""
        return len(self._product_points)

    def product_point(self, product_id: int) -> Optional[Point]:
        """Current attribute vector of a product (None if unknown)."""
        return self._product_points.get(product_id)

    def dominator_skyline(
        self, point: Sequence[float], stats: Optional[Counters] = None
    ) -> List[Point]:
        """Skyline of ``point``'s dominators in the current competitor set."""
        p = validate_point(point, self.dims)
        if self._competitors.is_empty():
            return []
        return get_dominating_skyline(self._competitors, p, stats)

    def any_product_in_dominance_region(
        self, point: Sequence[float]
    ) -> bool:
        """True iff some product is weakly dominated by ``point``.

        A competitor mutation at ``point`` can only change upgrade answers
        for products inside its dominance region — this is the precise
        invalidation predicate used by the serving layer's top-k cache.
        """
        p = validate_point(point, self.dims)
        return intersects_dominance_region(self._products, p)

    @property
    def competitor_index(self) -> RTree:
        """The live competitor R-tree (read-only: mutate via the session)."""
        return self._competitors

    @property
    def product_index(self) -> RTree:
        """The live product R-tree (read-only: mutate via the session)."""
        return self._products

    def products_by_id(self) -> Tuple[List[int], List[Point]]:
        """Live products as parallel (ids, points) lists in id order.

        The probing algorithms take a plain point sequence and report
        positional record ids; callers use the id list to map positions
        back to catalog ids (ids are not contiguous after removals).
        """
        ids = sorted(self._product_points)
        return ids, [self._product_points[pid] for pid in ids]

    def competitors_by_id(self) -> Tuple[List[int], List[Point]]:
        """Live competitors as parallel (ids, points) lists in id order.

        The sharded engine partitions the competitor catalog from this
        snapshot (``record_id % n_shards``); id order makes the per-shard
        blocks deterministic functions of the catalog state.
        """
        ids = sorted(self._competitor_points)
        return ids, [self._competitor_points[cid] for cid in ids]

    def make_upgrader(
        self,
        bound: Optional[str] = None,
        vector_jl_from: Optional[int] = None,
    ) -> JoinUpgrader:
        """A :class:`JoinUpgrader` over the session's live indexes.

        The serving layer drives the progressive stream itself (for
        deadline checks between results) and harvests the upgrader's
        counters afterwards; plain callers should prefer :meth:`top_k` /
        :meth:`stream`.  ``bound`` and ``vector_jl_from`` override the
        session defaults — the query planner passes its chosen knobs here
        without reconfiguring the session.
        """
        kwargs = {}
        if vector_jl_from is not None:
            kwargs["vector_jl_from"] = vector_jl_from
        return JoinUpgrader(
            self._competitors,
            self._products,
            self.cost_model,
            bound=self.bound if bound is None else bound,
            config=self.config,
            **kwargs,
        )

    def top_k(self, k: int = 1) -> UpgradeOutcome:
        """Top-k cheapest upgrades against the current market state."""
        if self._products.is_empty():
            return UpgradeOutcome([])
        return self.make_upgrader().run(k)

    def stream(self) -> Iterator[UpgradeResult]:
        """Progressively yield upgrades, cheapest first (current state)."""
        if self._products.is_empty():
            return iter(())
        return self.make_upgrader().results()

    def validate_indexes(self) -> None:
        """Structurally validate both R-trees (the reliability layer's
        budgeted post-mutation check).

        Occupancy is not enforced: bulk-loaded trees legitimately carry
        one underfull remainder node per level, and delete-condense keeps
        them valid without refilling.

        Raises:
            RTreeError: an index invariant is violated (corruption).
        """
        from repro.rtree.validate import validate_rtree

        validate_rtree(self._competitors, check_fill=False)
        validate_rtree(self._products, check_fill=False)

    def snapshot(self) -> Tuple[List[Point], List[Point]]:
        """Current (competitors, products) as point lists (id order)."""
        competitors = [
            self._competitor_points[cid]
            for cid in sorted(self._competitor_points)
        ]
        products = [
            self._product_points[pid]
            for pid in sorted(self._product_points)
        ]
        return competitors, products

    def __repr__(self) -> str:
        return (
            f"MarketSession(dims={self.dims}, "
            f"competitors={self.competitor_count}, "
            f"products={self.product_count}, bound={self.bound!r})"
        )
