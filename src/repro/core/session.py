"""A long-lived market session: mutable catalogs with incremental queries.

The one-shot APIs (:func:`repro.core.api.top_k_upgrades`,
:class:`~repro.core.join.JoinUpgrader`) rebuild nothing but also own
nothing: callers manage the trees.  :class:`MarketSession` is the
convenience layer a downstream application would actually keep around —
it owns the competitor and product R-trees, supports incremental updates
(competitors appear/disappear, products get added, upgraded products get
committed), and answers top-k upgrade queries against the current state.

Updates use the dynamic R-tree paths (Guttman insert / delete-condense);
queries run the join algorithm with valid bounds, so every answer agrees
with a from-scratch recomputation — which the test suite asserts after
randomized update interleavings.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.join import JoinUpgrader
from repro.core.types import UpgradeConfig, UpgradeOutcome, UpgradeResult
from repro.costs.model import CostModel
from repro.exceptions import ConfigurationError
from repro.geometry.point import validate_point
from repro.rtree.tree import RTree

Point = Tuple[float, ...]

_DEFAULT_CONFIG = UpgradeConfig()


class MarketSession:
    """Owns a competitor market and a product catalog; answers top-k queries.

    Args:
        dims: dimensionality of the product space.
        cost_model: the (monotonic) product cost function.
        bound: join-list bound used for queries.
        max_entries: R-tree node capacity.

    Example:
        >>> from repro.costs.model import paper_cost_model
        >>> session = MarketSession(2, paper_cost_model(2))
        >>> session.add_competitor((0.4, 0.6))
        0
        >>> session.add_product((1.0, 1.0))
        0
        >>> session.top_k(1).results[0].record_id
        0
    """

    def __init__(
        self,
        dims: int,
        cost_model: CostModel,
        bound: str = "clb",
        config: UpgradeConfig = _DEFAULT_CONFIG,
        max_entries: int = 32,
    ):
        if cost_model.dims != dims:
            raise ConfigurationError(
                f"cost model covers {cost_model.dims} dims, session "
                f"needs {dims}"
            )
        self.dims = dims
        self.cost_model = cost_model
        self.bound = bound
        self.config = config
        self._competitors = RTree(dims, max_entries=max_entries)
        self._products = RTree(dims, max_entries=max_entries)
        self._competitor_points: Dict[int, Point] = {}
        self._product_points: Dict[int, Point] = {}
        self._next_competitor_id = 0
        self._next_product_id = 0

    # -- market mutation ------------------------------------------------------

    def add_competitor(self, point: Sequence[float]) -> int:
        """Register a competitor product; returns its id."""
        p = validate_point(point, self.dims)
        cid = self._next_competitor_id
        self._next_competitor_id += 1
        self._competitors.insert(p, cid)
        self._competitor_points[cid] = p
        return cid

    def remove_competitor(self, competitor_id: int) -> bool:
        """Withdraw a competitor (e.g. discontinued); True if it existed."""
        point = self._competitor_points.pop(competitor_id, None)
        if point is None:
            return False
        return self._competitors.delete(point, competitor_id)

    def add_product(self, point: Sequence[float]) -> int:
        """Register one of our own products; returns its id."""
        p = validate_point(point, self.dims)
        pid = self._next_product_id
        self._next_product_id += 1
        self._products.insert(p, pid)
        self._product_points[pid] = p
        return pid

    def remove_product(self, product_id: int) -> bool:
        """Drop a product from the catalog; True if it existed."""
        point = self._product_points.pop(product_id, None)
        if point is None:
            return False
        return self._products.delete(point, product_id)

    def commit_upgrade(self, result: UpgradeResult) -> None:
        """Apply an upgrade: the product now has its upgraded vector.

        Raises:
            ConfigurationError: unknown product id or a stale result (the
                stored point no longer matches ``result.original``).
        """
        current = self._product_points.get(result.record_id)
        if current is None:
            raise ConfigurationError(
                f"unknown product id {result.record_id}"
            )
        if current != result.original:
            raise ConfigurationError(
                f"stale upgrade for product {result.record_id}: catalog "
                f"has {current}, result was computed for {result.original}"
            )
        self._products.delete(current, result.record_id)
        self._products.insert(result.upgraded, result.record_id)
        self._product_points[result.record_id] = result.upgraded

    # -- queries ----------------------------------------------------------------

    @property
    def competitor_count(self) -> int:
        """Number of live competitors."""
        return len(self._competitor_points)

    @property
    def product_count(self) -> int:
        """Number of live products."""
        return len(self._product_points)

    def product_point(self, product_id: int) -> Optional[Point]:
        """Current attribute vector of a product (None if unknown)."""
        return self._product_points.get(product_id)

    def top_k(self, k: int = 1) -> UpgradeOutcome:
        """Top-k cheapest upgrades against the current market state."""
        if self._products.is_empty():
            return UpgradeOutcome([])
        upgrader = JoinUpgrader(
            self._competitors,
            self._products,
            self.cost_model,
            bound=self.bound,
            config=self.config,
        )
        return upgrader.run(k)

    def stream(self) -> Iterator[UpgradeResult]:
        """Progressively yield upgrades, cheapest first (current state)."""
        if self._products.is_empty():
            return iter(())
        upgrader = JoinUpgrader(
            self._competitors,
            self._products,
            self.cost_model,
            bound=self.bound,
            config=self.config,
        )
        return upgrader.results()

    def snapshot(self) -> Tuple[List[Point], List[Point]]:
        """Current (competitors, products) as point lists (id order)."""
        competitors = [
            self._competitor_points[cid]
            for cid in sorted(self._competitor_points)
        ]
        products = [
            self._product_points[pid]
            for pid in sorted(self._product_points)
        ]
        return competitors, products

    def __repr__(self) -> str:
        return (
            f"MarketSession(dims={self.dims}, "
            f"competitors={self.competitor_count}, "
            f"products={self.product_count}, bound={self.bound!r})"
        )
