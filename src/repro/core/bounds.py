"""Lower bounds on group upgrade costs (paper §III-B3 and §III-B4).

``LBC(e_T, e_P)`` lower-bounds the cost of upgrading *any* product inside
the ``R_T`` node ``e_T`` to escape domination by *any* competitor inside the
``R_P`` node ``e_P``.  The bound reasons about ``e_T.min`` — the virtual
best product of the node — against the dimension classification of
:func:`repro.geometry.classify.classify_dimensions`:

* Case 1 — some advantaged dimension: ``0`` (the node may already contain
  undominated products);
* Case 2 — all dimensions incomparable: ``0`` (competitors may all sit on
  the far side of every dimension);
* Case 3 — all dimensions disadvantaged: the node's best product must become
  at least as good as ``e_P.max`` — cost ``f_p(e_P.max) - f_p(e_T.min)``;
* Case 4 — disadvantaged and incomparable mixed: upgrade only the
  disadvantaged dimensions to ``e_P.max``'s values, keep the incomparable
  ones — cost ``f_p(t_v) - f_p(e_T.min)``.

Join-list bounds (one ``e_T`` against its whole join list ``JL``):

* **NLB** (Equation 2) — ``min`` of all per-entry bounds: correct but
  pessimistic (one Case-1/2 zero collapses it);
* **CLB** (Equation 3) — ``min`` over entries with *positive* bounds,
  justified by Lemma 2;
* **ALB** (Equation 4) — partition ``JL'`` by dimension-classification
  signature and take ``min`` over partitions of the ``max`` within each;
* **MAX** — an extension beyond the paper: ``max`` of all per-entry bounds.
  Escaping the whole join list is at least as expensive as escaping any
  single entry (an upgrade valid against a superset is valid against every
  subset), so the maximum per-entry bound is itself a valid — and the
  tightest corner-derivable — lower bound.  Benchmarked as an ablation.

Reproduction finding — the paper's Case 3/4 formulas are not lower bounds
============================================================================

A product escapes domination by a competitor by beating it on *one*
dimension; the paper's Case 3 charges for matching ``e_P.max`` on *every*
dimension, and its Case 4 for matching it on every disadvantaged dimension.
Both therefore overestimate the achievable cost:

* Case 3 counter-example (``c = 2``, reciprocal costs): ``e_P`` holding the
  single point ``(0.5, 0.5)`` against ``e_T.min = (1, 1)`` — the paper's
  bound is ``2 * (f(0.5) - f(1))`` but upgrading only the first attribute
  to ``0.5 - ε`` escapes at half that cost.
* Case 4 with two or more incomparable dimensions can even bound a node
  whose best corner is *undominated* (no valid bound above zero exists):
  ``e_P = {(0.5, 0.5, 2), (0.5, 2, 0.5)}`` against ``e_T.min = (1, 1, 1)``
  classifies dimension 1 disadvantaged and dimensions 2, 3 incomparable,
  yet neither point dominates ``(1, 1, 1)``.

An overestimating "lower" bound breaks the best-first invariant: Algorithm 4
can emit results out of cost order and return strictly more expensive
products than the probing baseline computes (the paper's §IV measures
execution time only, so the issue cannot be seen in its plots).  This module
therefore implements two modes:

* ``mode="corrected"`` (default) — Case 3 becomes the cheapest
  *single-dimension* escape ``min_i [f_p(e_T.min with d_i := e_P.max.d_i)
  - f_p(e_T.min)]``; Case 4 keeps a positive bound only when exactly one
  dimension is incomparable (then the point attaining ``e_P.min`` on it
  provably dominates ``e_T.min``) and is ``0`` otherwise.  All join results
  then match the probing baseline exactly.
* ``mode="paper"`` — the formulas verbatim, for reproducing the paper's
  pruning behaviour in the ablation benchmarks.

Upgrades are taken to be attribute *improvements* (``t' <= t``
coordinate-wise), matching every candidate Algorithm 1 generates; this is
what makes the single-dimension escape the cheapest one.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.costs.model import CostModel
from repro.exceptions import ConfigurationError, UnknownOptionError
from repro.geometry.classify import DimClassification, classify_dimensions
from repro.instrumentation import Counters
from repro.kernels.bounds_batch import _DIS, _INC, pair_bounds_block
from repro.reliability.faults import maybe_corrupt

#: The names accepted wherever a join-list bound is selected.
BOUND_NAMES = ("nlb", "clb", "alb", "max")

#: Per-pair LBC variants: the validity-fixed default and the paper verbatim.
LBC_MODES = ("corrected", "paper")

Corner = Tuple[float, ...]

#: A per-entry bound plus the partition key of its dimension classification.
Pair = Tuple[float, bytes]


def signature_of(classification: DimClassification) -> bytes:
    """Encode a classification's ``(D_D, D_I)`` split as compact bytes.

    The byte string assigns every dimension its category code; two entries
    share an aggressive-bound partition iff their byte strings are equal.
    The scalar and vectorized bound paths both emit this encoding so their
    pairs mix freely inside one join list.
    """
    codes = bytearray(classification.dims)
    for i in classification.disadvantaged:
        codes[i] = _DIS
    for i in classification.incomparable:
        codes[i] = _INC
    return bytes(codes)


def lbc(
    t_low: Sequence[float],
    p_low: Sequence[float],
    p_high: Sequence[float],
    cost_model: CostModel,
    stats: Optional[Counters] = None,
    mode: str = "corrected",
) -> Pair:
    """Return ``(LBC(e_T, e_P), signature)`` for one entry pair.

    Args:
        t_low: ``e_T.min`` (for a leaf entry, the product point itself).
        p_low: ``e_P.min``.
        p_high: ``e_P.max``.
        cost_model: the product cost function ``f_p``.
        stats: optional counters (``lbc_evaluations``).
        mode: ``"corrected"`` (valid lower bounds, default) or ``"paper"``
            (the literal Case 3/4 formulas — see the module docstring for
            why those overestimate).

    Returns:
        The lower bound (never negative) and the classification signature
        (the aggressive bound's partition key).
    """
    if stats is not None:
        stats.lbc_evaluations += 1
    classification = classify_dimensions(t_low, p_low, p_high)
    signature = signature_of(classification)
    if classification.has_advantage or classification.all_incomparable:
        return 0.0, signature
    if mode == "paper":
        bound = _lbc_paper(t_low, p_high, classification, cost_model)
    elif mode == "corrected":
        bound = _lbc_corrected(
            t_low, p_low, p_high, classification, cost_model
        )
    else:
        raise UnknownOptionError("lbc_mode", mode, LBC_MODES)
    return bound, signature


def _lbc_paper(
    t_low: Sequence[float],
    p_high: Sequence[float],
    classification: DimClassification,
    cost_model: CostModel,
) -> float:
    """Cases 3/4 exactly as printed in the paper (overestimating)."""
    if classification.all_disadvantaged:
        bound = cost_model.product_cost(p_high) - cost_model.product_cost(
            t_low
        )
        return max(0.0, bound)
    disadvantaged = set(classification.disadvantaged)
    t_v = tuple(
        p_high[i] if i in disadvantaged else t_low[i]
        for i in range(len(t_low))
    )
    return max(
        0.0, cost_model.product_cost(t_v) - cost_model.product_cost(t_low)
    )


def _lbc_corrected(
    t_low: Sequence[float],
    p_low: Sequence[float],
    p_high: Sequence[float],
    classification: DimClassification,
    cost_model: CostModel,
) -> float:
    """Validity-fixed Cases 3/4 (see the module docstring)."""
    base = cost_model.product_cost(t_low)
    point = list(t_low)

    def single_dim_escape(dim: int, target: float) -> float:
        point[dim] = target
        cost = cost_model.product_cost(point) - base
        point[dim] = t_low[dim]
        return cost

    if classification.all_disadvantaged:
        # Every competitor in e_P dominates every product in e_T; the
        # cheapest escape beats the node's worst corner on one dimension.
        bound = min(
            single_dim_escape(i, p_high[i]) for i in range(len(t_low))
        )
        return max(0.0, bound)
    if len(classification.incomparable) != 1:
        # Two or more incomparable dimensions: e_P may contain no dominator
        # of e_T.min at all, so no positive bound is sound.
        return 0.0
    # Exactly one incomparable dimension: the point attaining e_P.min on it
    # has every other coordinate below e_T.min, hence dominates e_T.min.
    # Escape it on a disadvantaged dimension (beat e_P.max there) or on the
    # incomparable dimension (beat e_P.min there).
    inc = classification.incomparable[0]
    candidates = [
        single_dim_escape(i, p_high[i]) for i in classification.disadvantaged
    ]
    candidates.append(single_dim_escape(inc, p_low[inc]))
    return max(0.0, min(candidates))


def pair_bounds_vector(
    t_low: Sequence[float],
    p_lows: "np.ndarray",
    p_highs: "np.ndarray",
    cost_model: CostModel,
    stats: Optional[Counters] = None,
    mode: str = "corrected",
) -> List[Pair]:
    """Vectorized :func:`lbc` over many competitor entries at once.

    Requires a cost model whose attribute costs support numpy evaluation
    (``cost_model.supports_vectorization()``); the join falls back to the
    scalar path otherwise.  Agrees with :func:`lbc` to floating-point
    associativity.

    The implementation lives in the columnar kernel layer
    (:func:`repro.kernels.bounds_batch.pair_bounds_block`); this name is
    kept as the core-layer entry point.

    Args:
        t_low: ``e_T.min``.
        p_lows: ``(n, c)`` array of ``e_P.min`` corners.
        p_highs: ``(n, c)`` array of ``e_P.max`` corners.

    Returns:
        One ``(bound, signature)`` pair per row.
    """
    pairs = pair_bounds_block(
        t_low, p_lows, p_highs, cost_model, stats, mode
    )
    # Chaos hook: the `kernels.bounds` corruption point inflates one
    # positive bound (an unsound "lower" bound mis-prunes the join) —
    # only on this batched path; the scalar `lbc` stays the oracle.
    return maybe_corrupt("kernels.bounds", pairs, _inflate_one_bound)


def _inflate_one_bound(pairs: List[Pair]) -> List[Pair]:
    out = list(pairs)
    for i, (bound, signature) in enumerate(out):
        if bound > 0.0:
            out[i] = (bound * 4.0, signature)
            break
    return out


def supports_vector_bounds(cost_model: CostModel) -> bool:
    """True iff :func:`pair_bounds_vector` is applicable to ``cost_model``.

    The vectorized deltas decompose the product cost per dimension, which
    is only valid for (weighted-)sum integrations, and need numpy attribute
    cost evaluation.
    """
    from repro.costs.integration import (
        SumIntegration,
        WeightedSumIntegration,
    )

    return isinstance(
        cost_model.integration, (SumIntegration, WeightedSumIntegration)
    ) and cost_model.supports_vectorization()


def naive_bound(pair_bounds: Iterable[float]) -> float:
    """NLB (Equation 2): the minimum over all per-entry bounds.

    An empty join list yields ``0.0`` (nothing constrains the products).
    """
    bounds = list(pair_bounds)
    if not bounds:
        return 0.0
    return min(bounds)


def conservative_bound(pair_bounds: Iterable[float]) -> float:
    """CLB (Equation 3): the minimum over *positive* per-entry bounds.

    Lemma 2: if any entry forces a positive cost, every product in the node
    has positive cost, so zero-bound entries cannot cap the group bound.
    """
    positive = [b for b in pair_bounds if b > 0.0]
    if not positive:
        return 0.0
    return min(positive)


def aggressive_bound(pairs: Iterable[Pair]) -> float:
    """ALB (Equation 4): min over signature partitions of the in-partition max.

    Entries with zero bounds are excluded first (as in CLB); the remaining
    join list ``JL'`` is partitioned by the ``(D_D, D_I)`` signature, and
    within a partition every entry constrains the same upgrade route, so
    the *most* demanding entry — the max — governs.

    Args:
        pairs: ``(bound, signature)`` tuples as produced by :func:`lbc` or
            :func:`pair_bounds_vector`.
    """
    partitions: Dict[Hashable, float] = {}
    for bound, signature in pairs:
        if bound <= 0.0:
            continue
        current = partitions.get(signature)
        if current is None or bound > current:
            partitions[signature] = bound
    if not partitions:
        return 0.0
    return min(partitions.values())


def max_bound(pair_bounds: Iterable[float]) -> float:
    """MAX (extension): the maximum over all per-entry bounds.

    Valid because an upgrade escaping the whole join list also escapes each
    individual entry, so its cost dominates every per-entry bound.
    """
    bounds = list(pair_bounds)
    if not bounds:
        return 0.0
    return max(bounds)


def join_list_bound(bound_name: str, pairs: List[Pair]) -> float:
    """Dispatch to the named join-list bound over precomputed pairs.

    Args:
        bound_name: one of :data:`BOUND_NAMES`.
        pairs: per-entry ``(bound, signature)`` tuples.
    """
    if bound_name == "nlb":
        return naive_bound(b for b, _ in pairs)
    if bound_name == "clb":
        return conservative_bound(b for b, _ in pairs)
    if bound_name == "alb":
        return aggressive_bound(pairs)
    if bound_name == "max":
        return max_bound(b for b, _ in pairs)
    raise UnknownOptionError("bound", bound_name, BOUND_NAMES)
