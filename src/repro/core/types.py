"""Shared core types: configuration and result records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.exceptions import ConfigurationError
from repro.instrumentation import RunReport

Point = Tuple[float, ...]


@dataclass(frozen=True)
class UpgradeConfig:
    """Tunables of Algorithm 1 and everything built on it.

    Attributes:
        epsilon: the paper's ε — how far below a skyline value an upgraded
            attribute is placed to be *strictly* better.  Must be positive
            and small relative to attribute spans.
        extended: also consider the "tail" upgrade the paper's pseudo code
            omits — keep the sort dimension's original value and match the
            *last* skyline point on every other dimension.  This never
            breaks correctness (see :func:`repro.core.upgrade.upgrade` for
            the argument) and can only lower the chosen cost; it is off by
            default so the default behaviour is the paper verbatim.
        validate: verify at call time that the provided skyline is an
            antichain (Lemma 1's precondition).  Costs an ``O(|S|^2)``
            check; enable in tests, disable in benchmarks.
    """

    epsilon: float = 1e-9
    extended: bool = False
    validate: bool = False

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ConfigurationError(
                f"epsilon must be positive, got {self.epsilon}"
            )


@dataclass(frozen=True)
class UpgradeResult:
    """One product's optimal upgrade as chosen by Algorithm 1.

    Attributes:
        record_id: the product's id in ``T`` (array row by default).
        original: the product's current attribute vector.
        upgraded: the chosen non-dominated attribute vector; equals
            ``original`` when the product is already competitive.
        cost: ``f_p(upgraded) - f_p(original)`` (Definition 7); ``0.0`` for
            already-competitive products.
    """

    record_id: int
    original: Point
    upgraded: Point
    cost: float

    @property
    def already_competitive(self) -> bool:
        """True iff no upgrade was needed."""
        return self.upgraded == self.original


@dataclass
class UpgradeOutcome:
    """A full algorithm run: the top-k results plus its run report.

    Results are sorted by ascending cost (ties by record id).
    """

    results: List[UpgradeResult]
    report: RunReport = field(default_factory=RunReport)

    @property
    def costs(self) -> List[float]:
        """The result costs, in ranking order."""
        return [r.cost for r in self.results]

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)
