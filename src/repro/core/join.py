"""Algorithm 4: the best-first R-tree join for top-k product upgrading.

Both the competitor set ``P`` and the product set ``T`` are R-tree indexed.
A min-heap orders *product-side* entries by a lower bound on the upgrade
cost of any product below them; each popped entry is either

* a **final leaf** (exact cost already computed, empty join list) — emitted
  as the next result: nothing left on the heap can beat its cost;
* a **leaf with a join list** — its exact cost is computed by Algorithm 1
  over the skyline of its dominators within the join-list subtrees, then it
  is re-pushed as final;
* a **non-leaf with zero bound** (Heuristic 1) — expanded: each child
  inherits the subset of the join list overlapping its own anti-dominant
  region and is pushed with its own bound;
* a **non-leaf with positive bound** (Heuristic 2) — one competitor-side
  entry is expanded instead (chosen by Heuristic 3 for NLB/CLB, Heuristic 4
  for ALB), its children are filtered against ``ADR(e_T.max)`` and checked
  for mutual dominance with the join list (lines 22–31), and the entry is
  re-pushed with a refreshed bound.

The traversal is *progressive*: results stream out in ascending cost order
without processing all of ``T`` (:meth:`JoinUpgrader.results`).

Two cases the paper leaves implicit are resolved as documented in DESIGN.md:
a positive-bound node whose join list holds only leaf entries expands the
product-side entry (Heuristic 2 needs a non-leaf), and ``LBC(e_T, ∅) = 0``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.core.bounds import (
    BOUND_NAMES,
    LBC_MODES,
    Pair,
    join_list_bound,
    lbc,
    pair_bounds_vector,
    supports_vector_bounds,
)
from repro.core.dominators import get_dominating_skyline_multi
from repro.core.types import UpgradeConfig, UpgradeOutcome, UpgradeResult
from repro.core.upgrade import upgrade
from repro.costs.model import CostModel
from repro.exceptions import ConfigurationError, UnknownOptionError
from repro.geometry.point import dominates
from repro.geometry.region import mbr_overlaps_adr
from repro.obs import clock
from repro.instrumentation import Counters, RunReport, Stopwatch, Timer
from repro.kernels.dominance import dominated_mask, dominating_mask
from repro.kernels.switch import kernels_enabled
from repro.obs import span
from repro.rtree.entry import Entry
from repro.rtree.tree import RTree

_DEFAULT_CONFIG = UpgradeConfig()

#: Heap finality markers.  Candidates pop *before* equal-cost finals: a
#: bound-c candidate may still produce another cost-c result, so draining
#: candidates first lets equal-cost finals (tie-broken by record id, the
#: third heap key) emit in canonical order.  The progressive stream is
#: therefore globally sorted by ``(cost, record_id)`` — the same order
#: the probing algorithms produce — so the planner's choice of physical
#: plan never changes the answer, only the work.
_CANDIDATE, _FINAL = 0, 1

#: Join lists at or above this size use the columnar kernels (measured
#: crossover of the batch evaluation vs the per-entry scalar loop,
#: including the cost of building the corner arrays).
_VECTOR_JL_FROM = 8


class JoinUpgrader:
    """Progressive top-k product upgrading via the R-tree join (Algorithm 4).

    Args:
        competitor_tree: R-tree ``R_P`` over the competitor set.
        product_tree: R-tree ``R_T`` over the upgrade-candidate set.
        cost_model: the product cost function ``f_p``.
        bound: join-list lower bound — ``"nlb"``, ``"clb"``, ``"alb"``
            (paper), or ``"max"`` (extension).
        config: Algorithm 1 configuration shared with the probing baselines.
        lbc_mode: ``"corrected"`` (default — valid per-pair lower bounds,
            results provably match the probing baseline) or ``"paper"``
            (the literal Case 3/4 formulas, which overestimate and may
            return more expensive products; see
            :mod:`repro.core.bounds`).
        vector_jl_from: join lists at or above this size take the columnar
            kernel paths; below it the scalar loops win.  Defaults to the
            measured crossover; the query planner overrides it with a
            calibrated value.

    Example:
        >>> upgrader = JoinUpgrader(rp, rt, model, bound="clb")
        >>> top3 = upgrader.run(k=3)
        >>> [round(r.cost, 3) for r in top3.results]  # doctest: +SKIP
        [0.012, 0.013, 0.02]
    """

    def __init__(
        self,
        competitor_tree: RTree,
        product_tree: RTree,
        cost_model: CostModel,
        bound: str = "clb",
        config: UpgradeConfig = _DEFAULT_CONFIG,
        lbc_mode: str = "corrected",
        vector_jl_from: int = _VECTOR_JL_FROM,
    ):
        if bound not in BOUND_NAMES:
            raise UnknownOptionError("bound", bound, BOUND_NAMES)
        if lbc_mode not in LBC_MODES:
            raise UnknownOptionError("lbc_mode", lbc_mode, LBC_MODES)
        if vector_jl_from < 1:
            raise ConfigurationError(
                f"vector_jl_from must be >= 1, got {vector_jl_from}"
            )
        if (
            not competitor_tree.is_empty()
            and competitor_tree.dims != product_tree.dims
        ):
            raise ConfigurationError(
                f"tree dimensionalities differ: {competitor_tree.dims} "
                f"vs {product_tree.dims}"
            )
        self.competitor_tree = competitor_tree
        self.product_tree = product_tree
        self.cost_model = cost_model
        self.bound = bound
        self.config = config
        self.lbc_mode = lbc_mode
        self.vector_jl_from = vector_jl_from
        self.stats = Counters()
        self._vector_bounds = supports_vector_bounds(cost_model)

    # -- public API ----------------------------------------------------------

    def run(self, k: int = 1) -> UpgradeOutcome:
        """Return the ``k`` cheapest upgrades (fewer if ``|T| < k``).

        The run report's ``extras["result_times"]`` records the elapsed time
        at which each successive result became available — the
        progressiveness measurements of the paper's Figures 5, 10, and 11
        read exactly this.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.stats = Counters()
        results: List[UpgradeResult] = []
        result_times: List[float] = []
        watch = Stopwatch()
        with Timer() as timer:
            for result in self.results(reset_stats=False):
                results.append(result)
                result_times.append(watch.split())
                if len(results) >= k:
                    break
        report = RunReport(
            f"join[{self.bound}]",
            timer.elapsed_s,
            self.stats,
            {"result_times": result_times},
        )
        return UpgradeOutcome(results, report)

    def results(self, reset_stats: bool = True) -> Iterator[UpgradeResult]:
        """Yield upgrades progressively, cheapest first, until ``T`` drains.

        Stop iterating once enough results arrived — the point of the join
        approach is that early termination skips most of both trees.
        """
        if reset_stats:
            self.stats = Counters()
        if self.product_tree.is_empty():
            return
        stats = self.stats
        counter = itertools.count()
        root_t = self.product_tree.root_entry()
        if self.competitor_tree.is_empty():
            initial_jl: List[Entry] = []
        else:
            root_p = self.competitor_tree.root_entry()
            initial_jl = (
                [root_p]
                if mbr_overlaps_adr(root_p.mbr, root_t.mbr.high)
                else []
            )
        pairs = self._pair_bounds(root_t, initial_jl)
        cost = join_list_bound(self.bound, pairs)
        heap: List[tuple] = []
        heapq.heappush(
            heap,
            (cost, _CANDIDATE, next(counter), root_t, initial_jl, pairs, None),
        )
        stats.heap_pushes += 1

        while heap:
            cost, finality, _, e_t, jl, pairs, upgraded = heapq.heappop(heap)
            stats.heap_pops += 1

            if e_t.is_leaf_entry:
                if finality == _FINAL:
                    yield UpgradeResult(
                        e_t.record_id, e_t.point, upgraded, cost
                    )
                    continue
                # Lines 9-11: exact cost from the join-list dominator skyline.
                skyline = self._leaf_dominator_skyline(jl, e_t.point)
                exact_cost, upgraded_point = upgrade(
                    skyline, e_t.point, self.cost_model, self.config, stats
                )
                heapq.heappush(
                    heap,
                    (
                        exact_cost,
                        _FINAL,
                        e_t.record_id,
                        e_t,
                        [],
                        [],
                        upgraded_point,
                    ),
                )
                stats.heap_pushes += 1
                continue

            expandable = [e for e in jl if not e.is_leaf_entry]
            if cost <= 0.0 or not expandable:
                # Heuristic 1 (lines 13-20): expand the product-side entry.
                self._expand_product_entry(heap, counter, e_t, jl)
            else:
                # Heuristic 2 (lines 21-32): expand one competitor entry.
                picked = self._pick_competitor_entry(jl, pairs, expandable)
                new_jl, new_pairs = self._refine_join_list(
                    e_t, jl, pairs, picked
                )
                new_cost = join_list_bound(self.bound, new_pairs)
                heapq.heappush(
                    heap,
                    (
                        new_cost,
                        _CANDIDATE,
                        next(counter),
                        e_t,
                        new_jl,
                        new_pairs,
                        None,
                    ),
                )
                stats.heap_pushes += 1

    # -- internals -----------------------------------------------------------

    def _leaf_dominator_skyline(
        self, jl: List[Entry], point: Tuple[float, ...]
    ) -> List[Tuple[float, ...]]:
        """Skyline of ``point``'s dominators within the join-list subtrees.

        Fast path: a join list consisting purely of leaf entries is an
        *antichain* by construction — every point entered it through the
        mutual-dominance check of lines 25-30 against all coexisting
        entries, and product-side filtering only takes subsets.  A subset
        of an antichain restricted to dominators of ``point`` is therefore
        already the dominator skyline, a single vectorized filter.  Mixed
        join lists take the general multi-root traversal.
        """
        stats = self.stats
        if kernels_enabled() and jl and len(jl) >= self.vector_jl_from and all(
            e.is_leaf_entry for e in jl
        ):
            with span(
                "join.leaf_skyline", jl_len=len(jl),
                kernel_or_scalar="kernel",
            ) as sp:
                pts = np.array([e.point for e in jl], dtype=np.float64)
                stats.dominance_tests += len(jl)
                dominators = pts[dominating_mask(pts, point)]
                # Ascending coordinate-sum order, matching the BBS-style
                # path.
                order = np.argsort(dominators.sum(axis=1), kind="stable")
                skyline = [
                    tuple(map(float, dominators[i])) for i in order
                ]
                stats.skyline_points += len(skyline)
                sp.set(skyline_size=len(skyline))
                return skyline
        with span(
            "join.leaf_skyline", jl_len=len(jl), kernel_or_scalar="scalar"
        ) as sp:
            skyline = get_dominating_skyline_multi(jl, point, stats)
            sp.set(skyline_size=len(skyline))
            return skyline

    def _pair_bounds(self, e_t: Entry, jl: List[Entry]) -> List[Pair]:
        """LBC of ``e_t`` against each join-list entry.

        One batched ``(|JL|, d)`` kernel evaluation when kernels are on and
        the join list is past the dispatch-overhead crossover; the scalar
        per-entry loop (also the oracle) otherwise.
        """
        t_low = e_t.mbr.low
        stats = self.stats
        if (
            kernels_enabled()
            and self._vector_bounds
            and len(jl) >= self.vector_jl_from
        ):
            with stats.timed("kernel.pair_bounds"):
                lows = np.array([e.mbr.low for e in jl], dtype=np.float64)
                highs = np.array(
                    [e.mbr.high for e in jl], dtype=np.float64
                )
                return pair_bounds_vector(
                    t_low, lows, highs, self.cost_model, stats,
                    self.lbc_mode,
                )
        with stats.timed("scalar.pair_bounds"):
            return [
                lbc(
                    t_low,
                    e.mbr.low,
                    e.mbr.high,
                    self.cost_model,
                    stats,
                    self.lbc_mode,
                )
                for e in jl
            ]

    def _expand_product_entry(
        self,
        heap: List[tuple],
        counter: "itertools.count",
        e_t: Entry,
        jl: List[Entry],
    ) -> None:
        """Lines 14-20: push each child of ``e_t`` with its filtered list."""
        stats = self.stats
        stats.node_accesses += 1
        with span(
            "join.expand",
            jl_len=len(jl),
            bound_kind=self.bound,
            children=len(e_t.child.entries),
        ) as sp:
            jl_lows = (
                np.array([e.mbr.low for e in jl], dtype=np.float64)
                if kernels_enabled() and len(jl) >= self.vector_jl_from
                else None
            )
            sp.set(
                kernel_or_scalar=(
                    "kernel" if jl_lows is not None else "scalar"
                )
            )
            for child in e_t.child.entries:
                child_corner = child.mbr.high
                if jl_lows is not None:
                    mask = (jl_lows <= np.asarray(child_corner)).all(axis=1)
                    child_jl = [e for e, keep in zip(jl, mask) if keep]
                else:
                    child_jl = [
                        e
                        for e in jl
                        if mbr_overlaps_adr(e.mbr, child_corner)
                    ]
                stats.entries_pruned += len(jl) - len(child_jl)
                child_pairs = self._pair_bounds(child, child_jl)
                child_cost = join_list_bound(self.bound, child_pairs)
                heapq.heappush(
                    heap,
                    (
                        child_cost,
                        _CANDIDATE,
                        next(counter),
                        child,
                        child_jl,
                        child_pairs,
                        None,
                    ),
                )
                stats.heap_pushes += 1

    def _pick_competitor_entry(
        self,
        jl: List[Entry],
        pairs: List[Pair],
        expandable: List[Entry],
    ) -> Entry:
        """Heuristics 3/4: choose which join-list entry to open.

        NLB / CLB pick the non-leaf entry with the smallest positive bound;
        ALB picks the non-leaf entry whose bound equals the aggregate bound;
        MAX picks the non-leaf entry with the largest bound.  Whenever the
        designated entry does not exist among non-leaf entries (the paper's
        heuristics silently assume it does), fall back to the smallest
        positive — then smallest overall — non-leaf bound.
        """
        by_entry = {id(e): b for e, (b, _) in zip(jl, pairs)}
        nonleaf = [(by_entry[id(e)], e) for e in expandable]
        if self.bound == "max":
            return max(nonleaf, key=lambda item: item[0])[1]
        if self.bound == "alb":
            aggregate = join_list_bound(self.bound, pairs)
            for bound_value, entry in nonleaf:
                if bound_value == aggregate:
                    return entry
        positive = [(b, e) for b, e in nonleaf if b > 0.0]
        pool = positive if positive else nonleaf
        return min(pool, key=lambda item: item[0])[1]

    def _refine_join_list(
        self,
        e_t: Entry,
        jl: List[Entry],
        pairs: List[Pair],
        picked: Entry,
    ) -> Tuple[List[Entry], List[Pair]]:
        """Traced wrapper around :meth:`_refine_join_list_inner`."""
        use_vector = (
            kernels_enabled() and len(jl) - 1 >= self.vector_jl_from
        )
        with span(
            "join.refine",
            jl_len=len(jl),
            bound_kind=self.bound,
            kernel_or_scalar="kernel" if use_vector else "scalar",
        ) as sp:
            new_jl, new_pairs = self._refine_join_list_inner(
                e_t, jl, pairs, picked
            )
            sp.set(new_jl_len=len(new_jl))
            return new_jl, new_pairs

    def _refine_join_list_inner(
        self,
        e_t: Entry,
        jl: List[Entry],
        pairs: List[Pair],
        picked: Entry,
    ) -> Tuple[List[Entry], List[Pair]]:
        """Lines 22-31: replace ``picked`` by its surviving children.

        Each child is kept only if it overlaps ``ADR(e_T.max)`` and is not
        batch-dominated by a join-list entry (``e_P.max`` dominating
        ``child.min`` means every competitor under ``e_P`` dominates every
        point under the child); symmetrically, join-list entries
        batch-dominated by the child are dropped.

        Surviving entries keep their cached ``(bound, signature)`` pairs —
        an entry's LBC depends only on ``e_T.min`` and its own corners,
        both unchanged — so only the new children cost LBC work.

        Implementation note: the paper's inner loop breaks out as soon as a
        child is found dominated, leaving later join-list entries unchecked
        for removal.  Removing a wholly dominated entry is safe regardless
        (its points are dominated by the dominating entry's points,
        transitively so even when the dominating child is itself dropped),
        so this implementation applies *all* removals — a deterministic,
        strictly-stronger pruning with identical results.
        """
        stats = self.stats
        base: List[Tuple[Entry, Pair]] = [
            (e, pair) for e, pair in zip(jl, pairs) if e is not picked
        ]
        stats.node_accesses += 1
        corner = e_t.mbr.high
        t_low = e_t.mbr.low
        children = [
            c
            for c in picked.child.entries
            if mbr_overlaps_adr(c.mbr, corner)
        ]
        stats.entries_pruned += len(picked.child.entries) - len(children)

        n = len(base)
        use_vector = kernels_enabled() and n >= self.vector_jl_from
        if use_vector:
            base_lows = np.array(
                [e.mbr.low for e, _ in base], dtype=np.float64
            )
            base_highs = np.array(
                [e.mbr.high for e, _ in base], dtype=np.float64
            )
            keep = np.ones(n, dtype=bool)
        added: List[Tuple[Entry, Pair]] = []

        for child in children:
            child_low = child.mbr.low
            child_high = child.mbr.high
            flag = False
            if n:
                if use_vector:
                    stats.dominance_tests += 2 * int(keep.sum())
                    dominated = dominating_mask(base_highs, child_low) & keep
                    flag = bool(dominated.any())
                    removable = dominated_mask(base_lows, child_high) & keep
                    stats.entries_pruned += int(removable.sum())
                    keep &= ~removable
                else:
                    survivors: List[Tuple[Entry, Pair]] = []
                    for e_p, pair in base:
                        stats.dominance_tests += 2
                        if dominates(e_p.mbr.high, child_low):
                            flag = True
                            survivors.append((e_p, pair))
                            continue
                        if dominates(child_high, e_p.mbr.low):
                            stats.entries_pruned += 1
                            continue
                        survivors.append((e_p, pair))
                    base = survivors
                    n = len(base)
            # Mutual checks against previously surviving children.
            retained: List[Tuple[Entry, Pair]] = []
            for a_entry, a_pair in added:
                stats.dominance_tests += 2
                if not flag and dominates(a_entry.mbr.high, child_low):
                    flag = True
                if dominates(child_high, a_entry.mbr.low):
                    stats.entries_pruned += 1
                    continue
                retained.append((a_entry, a_pair))
            added = retained
            if flag:
                stats.entries_pruned += 1
                continue
            child_pair = lbc(
                t_low,
                child_low,
                child_high,
                self.cost_model,
                stats,
                self.lbc_mode,
            )
            added.append((child, child_pair))

        if use_vector:
            survivors_base = [
                bp for bp, kept in zip(base, keep) if kept
            ]
        else:
            survivors_base = base
        combined = survivors_base + added
        new_jl = [e for e, _ in combined]
        new_pairs = [pair for _, pair in combined]
        return new_jl, new_pairs

    # -- sharded execution ----------------------------------------------------

    def shard_stream(self) -> "MergeableResultStream":
        """Wrap :meth:`results` for the scatter-gather top-k merge.

        A shard worker opens one stream per hosted shard; the coordinator
        pulls batches and uses the stream *frontier* as that shard's
        contribution to the global termination threshold.
        """
        return MergeableResultStream(self.results())


class MergeableResultStream:
    """A pull-based view of an ascending ``(cost, record_id)`` stream.

    The sharded engine's per-shard primitive.  Each shard runs the join
    over its *local* competitor partition and the *full* product tree, so
    its costs are lower bounds on the global cost (escaping a subset of
    the dominators can only be cheaper) and every product eventually
    appears in every shard's stream.  The coordinator's threshold merge
    needs exactly two things from a shard: batches of sighted
    ``(cost, record_id)`` pairs, and the :attr:`frontier` — the largest
    cost the stream has revealed, below which no *new* product can still
    emerge from this shard.

    The frontier starts at ``0.0`` (nothing revealed: any product may
    appear at any cost), tracks the last-yielded cost while live, and
    jumps to ``inf`` on exhaustion (every product has been sighted here;
    the shard constrains nothing further).
    """

    __slots__ = ("_it", "frontier", "exhausted")

    def __init__(self, results: Iterator[UpgradeResult]):
        self._it = results
        self.frontier = 0.0
        self.exhausted = False

    def next_batch(
        self, n: int, deadline: Optional[float] = None
    ) -> List[UpgradeResult]:
        """Pull up to ``n`` results, advancing the frontier.

        ``deadline`` (on the :data:`repro.obs.clock` timebase) makes the
        pull cooperative: it is checked before each result, so an
        expired budget returns a short batch — overshooting by at most
        one result's worth of join expansion.  Truncation is *safe* by
        construction: the frontier stays at the last yielded cost and
        ``exhausted`` stays ``False``, so the threshold merge simply
        learns less, never something wrong.
        """
        out: List[UpgradeResult] = []
        while len(out) < n:
            if deadline is not None and clock() >= deadline:
                break
            try:
                result = next(self._it)
            except StopIteration:
                self.exhausted = True
                self.frontier = float("inf")
                break
            self.frontier = result.cost
            out.append(result)
        return out
