"""Algorithm 2: probing approaches to top-k product upgrading (paper §III-A).

Both variants iterate over the product set ``T`` and compute each product's
exact upgrade cost in isolation, keeping the best ``k``:

* **basic probing** retrieves *every* competitor inside ``ADR(t)`` with a
  plain range query, reduces the dominator set to its skyline, and calls
  Algorithm 1;
* **improved probing** folds the skyline computation into the traversal
  (Algorithm 3, :func:`repro.core.dominators.get_dominating_skyline`),
  pruning R-tree branches that can only contain dominated competitors.

Probing requires only ``P`` to be indexed.  It is the paper's baseline: it
touches every product in ``T`` and is not progressive.

**Batch probing** (:func:`batch_probing`) is an extension beyond the
paper: when all of ``T`` will be probed anyway, the per-product dominator
skylines can be amortized.  The observation: every point of a product's
dominator skyline is a *global* skyline point of ``P`` — if ``q`` dominated
``p`` and ``p`` dominates ``t``, then ``q`` is a dominator of ``t`` that
dominates ``p``, contradicting ``p``'s membership in the dominator
skyline.  So ``Sky(P)`` is computed once (BBS over the index) and each
product's dominator skyline is just the vectorized subset
``{s in Sky(P) : s < t}`` — an antichain by construction, ready for
Algorithm 1.  This amortized baseline is typically the fastest way to
rank *all* of ``T`` and the honest comparison point for the join's
full-enumeration regime (see EXPERIMENTS.md).
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.dominators import get_dominating_skyline
from repro.core.types import UpgradeConfig, UpgradeOutcome, UpgradeResult
from repro.core.upgrade import upgrade
from repro.costs.model import CostModel
from repro.exceptions import ConfigurationError
from repro.geometry.mbr import MBR
from repro.geometry.point import dominates
from repro.instrumentation import Counters, RunReport, Timer
from repro.kernels.block import PointBlock
from repro.kernels.dominance import dominating_mask
from repro.kernels.switch import kernels_enabled
from repro.obs import span
from repro.rtree.query import range_query
from repro.rtree.tree import RTree
from repro.skyline.bbs import bbs_skyline
from repro.skyline.bnl import bnl_skyline

Point = Tuple[float, ...]
_DEFAULT_CONFIG = UpgradeConfig()


def basic_probing(
    competitor_tree: RTree,
    products: Iterable[Sequence[float]],
    cost_model: CostModel,
    k: int = 1,
    config: UpgradeConfig = _DEFAULT_CONFIG,
    domain_low: Optional[Sequence[float]] = None,
) -> UpgradeOutcome:
    """Algorithm 2 — brute-force probing baseline.

    Args:
        competitor_tree: R-tree ``R_P`` over the competitor set.
        products: the product set ``T`` (iterated once; ids are positions).
        cost_model: the product cost function ``f_p``.
        k: how many cheapest-to-upgrade products to return.
        config: Algorithm 1 configuration.
        domain_low: lower corner of the data domain used to materialize
            ``ADR(t)`` as a finite query box; defaults to the competitor
            tree's bounding box corner.

    Returns:
        The top-k products by upgrade cost, plus a run report.
    """
    _check_k(k)
    stats = Counters()
    low = _domain_low(competitor_tree, domain_low)
    heap: list = []  # max-heap over cost via negation
    tie = 0
    with Timer() as timer, span("probing.basic", k=k):
        for record_id, raw in enumerate(products):
            t = tuple(float(v) for v in raw)
            box = MBR(low, tuple(max(a, b) for a, b in zip(low, t)))
            in_adr = range_query(competitor_tree, box, stats)
            dominators = [p for p, _ in in_adr if dominates(p, t)]
            stats.dominance_tests += len(in_adr)
            skyline = bnl_skyline(dominators, stats)
            stats.skyline_points += len(skyline)
            cost, upgraded = upgrade(skyline, t, cost_model, config, stats)
            result = UpgradeResult(record_id, t, upgraded, cost)
            tie += 1
            if len(heap) < k:
                heapq.heappush(heap, (-cost, -tie, result))
            elif -heap[0][0] > cost:
                heapq.heapreplace(heap, (-cost, -tie, result))
    results = sorted(
        (item[2] for item in heap), key=lambda r: (r.cost, r.record_id)
    )
    report = RunReport("probing/basic", timer.elapsed_s, stats)
    return UpgradeOutcome(results, report)


def improved_probing(
    competitor_tree: RTree,
    products: Iterable[Sequence[float]],
    cost_model: CostModel,
    k: int = 1,
    config: UpgradeConfig = _DEFAULT_CONFIG,
) -> UpgradeOutcome:
    """Improved probing — Algorithm 2 with ``getDominatingSky`` (Alg. 3).

    Identical contract to :func:`basic_probing`; the dominator skyline is
    computed directly by a pruned best-first traversal instead of a full
    range query followed by a skyline pass.
    """
    _check_k(k)
    stats = Counters()
    heap: list = []
    tie = 0
    with Timer() as timer, span("probing.improved", k=k):
        for record_id, raw in enumerate(products):
            t = tuple(float(v) for v in raw)
            skyline = get_dominating_skyline(competitor_tree, t, stats)
            cost, upgraded = upgrade(skyline, t, cost_model, config, stats)
            result = UpgradeResult(record_id, t, upgraded, cost)
            tie += 1
            if len(heap) < k:
                heapq.heappush(heap, (-cost, -tie, result))
            elif -heap[0][0] > cost:
                heapq.heapreplace(heap, (-cost, -tie, result))
    results = sorted(
        (item[2] for item in heap), key=lambda r: (r.cost, r.record_id)
    )
    report = RunReport("probing/improved", timer.elapsed_s, stats)
    return UpgradeOutcome(results, report)


def batch_probing(
    competitor_tree: RTree,
    products: Sequence[Sequence[float]],
    cost_model: CostModel,
    k: int = 1,
    config: UpgradeConfig = _DEFAULT_CONFIG,
) -> UpgradeOutcome:
    """Amortized probing: one global skyline, vectorized per-product subsets.

    An extension beyond the paper (see the module docstring for the
    amortization argument).  Results are identical to
    :func:`improved_probing` — asserted by the test suite — at a fraction
    of the work when every product is probed.

    Args:
        competitor_tree: R-tree ``R_P`` over the competitor set.
        products: the product set ``T``.
        cost_model: the product cost function ``f_p``.
        k: how many cheapest-to-upgrade products to return.
        config: Algorithm 1 configuration.
    """
    _check_k(k)
    stats = Counters()
    heap: list = []
    tie = 0
    with Timer() as timer, span(
        "probing.batch", k=k, products=len(products)
    ):
        global_skyline = bbs_skyline(competitor_tree, stats)
        sky_block = (
            PointBlock.from_points(global_skyline)
            if global_skyline and kernels_enabled()
            else None
        )
        for record_id, raw in enumerate(products):
            t = tuple(float(v) for v in raw)
            skyline: List[Point]
            stats.dominance_tests += len(global_skyline)
            if sky_block is not None:
                # A subset of an antichain is its own skyline.
                mask = dominating_mask(sky_block.data, t)
                skyline = [
                    global_skyline[i] for i in sky_block.ids[mask]
                ]
            else:
                skyline = [
                    s for s in global_skyline if dominates(s, t)
                ]
            cost, upgraded = upgrade(skyline, t, cost_model, config, stats)
            result = UpgradeResult(record_id, t, upgraded, cost)
            tie += 1
            if len(heap) < k:
                heapq.heappush(heap, (-cost, -tie, result))
            elif -heap[0][0] > cost:
                heapq.heapreplace(heap, (-cost, -tie, result))
    results = sorted(
        (item[2] for item in heap), key=lambda r: (r.cost, r.record_id)
    )
    report = RunReport("probing/batch", timer.elapsed_s, stats)
    return UpgradeOutcome(results, report)


def _check_k(k: int) -> None:
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")


def _domain_low(
    tree: RTree, domain_low: Optional[Sequence[float]]
) -> Point:
    if domain_low is not None:
        return tuple(float(v) for v in domain_low)
    if tree.is_empty():
        raise ConfigurationError(
            "competitor tree is empty and no domain_low was given"
        )
    return tree.bounds().low
