"""Optimality analysis of Algorithm 1 (the paper's §VI open question).

The paper proves Algorithm 1 *correct* (Lemma 1) but explicitly leaves its
*optimality* — does it find the cheapest upgrade? — as future work.  This
module settles the question for the improvement-only upgrade model
(``t' <= t`` coordinate-wise, which is the model every Algorithm 1
candidate lives in):

* **Two dimensions: Algorithm 1 is optimal, verbatim.**  The maximal
  points of the non-dominated region below ``t`` form a staircase: the
  corners between consecutive skyline points — Algorithm 1's option B —
  plus the two half-open ends.  Each end is "beat everyone on one
  dimension, keep ``t``'s other coordinate", which is exactly option A
  applied to that dimension; a monotone cost attains its minimum over the
  region at a maximal point, so the option A/B scan is exhaustive.  (The
  extended tail candidate coincides with option A of the other dimension
  in 2-d and adds nothing there.)

* **Three or more dimensions: Algorithm 1 is *not* optimal**, with or
  without the tail extension — its candidates match one pivot skyline
  point on all non-sort dimensions, but the cheapest escape may mix
  values from several skyline points.  Empirically (reciprocal-sum costs,
  random dominator skylines), Algorithm 1 is beaten by the exhaustive
  optimum on over half of random 3-d instances; ``tests/test_optimal.py``
  pins a witness with an ~11% cost gap.  :func:`optimal_upgrade_exhaustive`
  is the reference optimum for these studies.

:func:`optimal_upgrade_2d` implements the 2-d staircase sweep directly —
``O(|S| log |S|)`` and independently coded from Algorithm 1, so the test
suite can confirm the equivalence claim.  :func:`optimal_upgrade_exhaustive`
searches the full candidate grid ``{s.d_i - eps} ∪ {t.d_i}`` per dimension
— exponential, exact under improvement-only upgrades, and the arbiter for
the suboptimality ablation (``benchmarks/test_ablation_upgrade.py``).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from repro.core.types import UpgradeConfig
from repro.costs.model import CostModel
from repro.exceptions import ConfigurationError, DimensionalityError
from repro.geometry.point import dominates
from repro.instrumentation import Counters

Point = Tuple[float, ...]

_DEFAULT_CONFIG = UpgradeConfig()


def optimal_upgrade_2d(
    skyline: Sequence[Sequence[float]],
    product: Sequence[float],
    cost_model: CostModel,
    config: UpgradeConfig = _DEFAULT_CONFIG,
    stats: Optional[Counters] = None,
) -> Tuple[float, Point]:
    """Cheapest improvement-only upgrade of a 2-d product (exact).

    Args:
        skyline: the skyline of ``product``'s dominators (2-d antichain).
        product: the point to upgrade.
        cost_model: a monotonic product cost function.
        config: supplies the strictness offset ``epsilon``.
        stats: optional counters (``upgrade_calls``).

    Returns:
        ``(cost, upgraded_point)`` minimizing
        ``f_p(upgraded) - f_p(product)`` over every non-dominated point
        coordinate-wise ``<= product``.
    """
    p = tuple(float(v) for v in product)
    if len(p) != 2:
        raise DimensionalityError(
            f"optimal_upgrade_2d needs 2-d points, got {len(p)}-d"
        )
    points = [tuple(float(v) for v in s) for s in skyline]
    if stats is not None:
        stats.upgrade_calls += 1
    if not points:
        return 0.0, p
    for s in points:
        if len(s) != 2:
            raise DimensionalityError("skyline point is not 2-d")

    eps = config.epsilon
    base = cost_model.product_cost(p)
    # Sort by x; the antichain property makes y strictly descending.
    ordered = sorted(points)
    candidates: List[Point] = []
    # Left end: beat everyone on x, keep p's own y.
    candidates.append((ordered[0][0] - eps, p[1]))
    # Staircase corners between consecutive skyline points.
    for left, right in zip(ordered, ordered[1:]):
        candidates.append((right[0] - eps, left[1] - eps))
    # Right end: beat everyone on y, keep p's own x.
    candidates.append((p[0], ordered[-1][1] - eps))

    best_cost = float("inf")
    best: Optional[Point] = None
    for candidate in candidates:
        if any(dominates(s, candidate) for s in points):
            continue  # duplicate-x degeneracies can void a corner
        cost = cost_model.product_cost(candidate) - base
        if cost < best_cost:
            best_cost = cost
            best = candidate
    assert best is not None  # the two ends are always escape points
    return best_cost, best


def optimal_upgrade_exhaustive(
    skyline: Sequence[Sequence[float]],
    product: Sequence[float],
    cost_model: CostModel,
    config: UpgradeConfig = _DEFAULT_CONFIG,
    max_grid: int = 200_000,
) -> Tuple[float, Point]:
    """Exact cheapest improvement-only upgrade by grid enumeration.

    Under a monotone cost model, some optimal upgrade lies on the grid
    ``G_i = {s.d_i - eps : s in S, s.d_i - eps < t.d_i} ∪ {t.d_i}`` per
    dimension: lowering a coordinate below the next grid value strictly
    costs more without escaping any additional skyline point.  The search
    enumerates ``G_1 x ... x G_c`` — exponential in ``c``, intended for
    test oracles and ablations only.

    Args:
        max_grid: safety cap on the enumerated grid size.

    Raises:
        ConfigurationError: the grid would exceed ``max_grid`` points.
    """
    p = tuple(float(v) for v in product)
    points = [tuple(float(v) for v in s) for s in skyline]
    if not points:
        return 0.0, p
    dims = len(p)
    eps = config.epsilon
    axes: List[List[float]] = []
    total = 1
    for i in range(dims):
        values = {p[i]}
        for s in points:
            v = s[i] - eps
            if v < p[i]:
                values.add(v)
        axis = sorted(values, reverse=True)  # cheap (large) values first
        axes.append(axis)
        total *= len(axis)
    if total > max_grid:
        raise ConfigurationError(
            f"exhaustive grid of {total} points exceeds max_grid={max_grid}"
        )
    base = cost_model.product_cost(p)
    best_cost = float("inf")
    best: Optional[Point] = None
    for candidate in itertools.product(*axes):
        if any(dominates(s, candidate) for s in points):
            continue
        cost = cost_model.product_cost(candidate) - base
        if cost < best_cost:
            best_cost = cost
            best = candidate
    if best is None:
        raise ConfigurationError(
            "no escape found on the grid; is the skyline an antichain of "
            "dominators?"
        )
    return best_cost, best
