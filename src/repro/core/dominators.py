"""Algorithm 3: ``getDominatingSky`` — skyline-of-dominators queries.

The improved probing algorithm replaces the basic range-query-then-skyline
pipeline with a single best-first traversal restricted to the anti-dominant
region ``ADR(t)``: R-tree entries are popped in ascending *mindist*
(coordinate sum of the lower corner), entries whose lower corner is
dominated by an already-found skyline point are pruned, and leaf points are
accepted only if they strictly dominate ``t`` and are themselves
undominated.  This adapts BBS (Papadias et al.) exactly as the paper
describes.

:func:`get_dominating_skyline_multi` generalizes the traversal to a list of
subtree roots — the join algorithm computes a leaf product's exact cost from
its join-list entries this way.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.geometry.point import dominates
from repro.geometry.region import mbr_overlaps_adr, point_in_adr
from repro.instrumentation import Counters
from repro.kernels.skybuffer import SkylineBuffer
from repro.kernels.switch import kernels_enabled
from repro.obs import NOOP_SPAN, span
from repro.reliability.faults import maybe_inject
from repro.rtree.entry import Entry
from repro.rtree.tree import RTree

Point = Tuple[float, ...]


def get_dominating_skyline(
    tree: RTree,
    product: Sequence[float],
    stats: Optional[Counters] = None,
) -> List[Point]:
    """Return the skyline of ``product``'s dominators in ``tree``.

    Args:
        tree: the competitor R-tree ``R_P``.
        product: the query point ``t``.
        stats: optional counters.

    Returns:
        Skyline points (each strictly dominates ``product``) in ascending
        coordinate-sum order.
    """
    if tree.is_empty():
        return []
    return get_dominating_skyline_multi(
        [tree.root_entry()], product, stats
    )


def get_dominating_skyline_multi(
    roots: Iterable[Entry],
    product: Sequence[float],
    stats: Optional[Counters] = None,
) -> List[Point]:
    """Skyline of ``product``'s dominators under several subtree roots.

    The roots may be internal entries, leaf entries (single points), or a
    mix — exactly what a join list contains.  Duplicate coverage is allowed;
    dominance filtering removes any resulting duplicates' effect (equal
    points never dominate each other and at most one copy enters the
    skyline).

    Args:
        roots: R-tree entries whose subtrees to search.
        product: the query point ``t``.
        stats: optional counters.
    """
    maybe_inject("rtree.query")
    with span(
        "dominators.skyline",
        kernel_or_scalar="kernel" if kernels_enabled() else "scalar",
    ) as sp:
        if stats is not None:
            label = (
                "kernel.dominators"
                if kernels_enabled()
                else "scalar.dominators"
            )
            with stats.timed(label):
                result = _traverse(roots, product, stats)
        else:
            result = _traverse(roots, product, stats)
        sp.set(skyline_size=len(result))
        return result


def _traverse(
    roots: Iterable[Entry],
    product: Sequence[float],
    stats: Optional[Counters],
) -> List[Point]:
    t = tuple(float(v) for v in product)
    skyline = SkylineBuffer(len(t))
    seen: set = set()
    counter = itertools.count()
    heap: List[tuple] = []

    # Heap keys are (coordinate sum, corner, seq): the sum drives the
    # best-first order, and the lexicographic corner tie-break keeps
    # dominators ahead of dominated candidates even when their sums
    # collide in floating point (a dominator is always lexicographically
    # smaller, exactly).
    for entry in roots:
        if mbr_overlaps_adr(entry.mbr, t):
            low = entry.mbr.low
            heapq.heappush(
                heap, (sum(low), low, next(counter), entry)
            )
            if stats is not None:
                stats.heap_pushes += 1

    # The heap loop is the index traversal proper; its span reports the
    # R-tree work (node accesses, heap pops) as counter deltas so a trace
    # attributes index cost per call, not cumulatively.
    scan = span("rtree.scan")
    if scan is not NOOP_SPAN and stats is not None:
        base_nodes = stats.node_accesses
        base_pops = stats.heap_pops
    scan.__enter__()

    while heap:
        _, _, _, item = heapq.heappop(heap)
        if stats is not None:
            stats.heap_pops += 1

        if isinstance(item, tuple):  # a finalized candidate point
            if item in seen:
                continue
            if not skyline.dominates_point(item, stats):
                skyline.add(item)
                seen.add(item)
            continue

        entry = item
        if skyline.dominates_point(entry.mbr.low, stats):
            if stats is not None:
                stats.entries_pruned += 1
            continue
        if entry.is_leaf_entry:
            point = entry.point
            if stats is not None:
                stats.points_scanned += 1
            if dominates(point, t) and not skyline.dominates_point(
                point, stats
            ):
                heapq.heappush(
                    heap, (sum(point), point, next(counter), point)
                )
                if stats is not None:
                    stats.heap_pushes += 1
            continue
        node = entry.child
        if stats is not None:
            stats.node_accesses += 1
        for child in node.entries:
            if not mbr_overlaps_adr(child.mbr, t):
                continue
            low = child.mbr.low
            if skyline.dominates_point(low, stats):
                if stats is not None:
                    stats.entries_pruned += 1
                continue
            heapq.heappush(heap, (sum(low), low, next(counter), child))
            if stats is not None:
                stats.heap_pushes += 1

    scan.close()
    if scan is not NOOP_SPAN and stats is not None:
        scan.set(
            node_accesses=stats.node_accesses - base_nodes,
            heap_pops=stats.heap_pops - base_pops,
        )
    if stats is not None:
        stats.skyline_points += len(skyline)
    return skyline.points


def merge_skylines(
    skylines: Sequence[Sequence[Point]],
) -> List[Point]:
    """Merge per-shard dominator skylines into the global skyline.

    The sharded engine's gather step: each shard computes the skyline of
    the query point's dominators within its own partition; the global
    dominator skyline is the set of maximal elements of their union.
    The merge is associative, so a worker hosting several shards can
    pre-merge locally and the coordinator merges across workers.

    Output reproduces :func:`get_dominating_skyline`'s canonical order
    exactly — ascending ``(coordinate sum, lexicographic point)``, one
    copy per distinct point — so downstream ``upgrade()`` calls are
    bit-identical to a single-process traversal (Algorithm 1's slotting
    candidates depend on the input order at sort ties).
    """
    seen: set = set()
    union: List[Point] = []
    for skyline in skylines:
        for p in skyline:
            q = tuple(p)
            if q not in seen:
                seen.add(q)
                union.append(q)
    if len(union) <= 1:
        return union
    merged = [
        p
        for p in union
        if not any(q is not p and dominates(q, p) for q in union)
    ]
    merged.sort(key=lambda p: (sum(p), p))
    return merged


def dominators_brute_force(
    points: Iterable[Sequence[float]],
    product: Sequence[float],
) -> List[Point]:
    """Return every point of ``points`` dominating ``product`` (test oracle)."""
    t = tuple(float(v) for v in product)
    return [
        tuple(float(v) for v in p)
        for p in points
        if point_in_adr(p, t) and dominates(p, t)
    ]


