"""The paper's contribution: top-k product upgrading algorithms.

* :mod:`repro.core.upgrade` — Algorithm 1, upgrading a single product given
  the skyline of its dominators;
* :mod:`repro.core.dominators` — Algorithm 3 (``getDominatingSky``), a
  BBS-style skyline-of-dominators query over the competitor R-tree;
* :mod:`repro.core.probing` — Algorithm 2 (basic probing) and its improved
  variant;
* :mod:`repro.core.bounds` — the per-pair lower bound ``LBC`` (Cases 1–4)
  and the NLB / CLB / ALB join-list bounds (Equations 2–4), plus the ``MAX``
  extension bound;
* :mod:`repro.core.join` — Algorithm 4, the progressive best-first join;
* :mod:`repro.core.api` — the one-call convenience entry point
  :func:`~repro.core.api.top_k_upgrades`;
* :mod:`repro.core.verify` — a brute-force oracle and result validators
  used by the test suite.
"""

from repro.core.types import UpgradeConfig, UpgradeOutcome, UpgradeResult
from repro.core.upgrade import upgrade
from repro.core.dominators import get_dominating_skyline
from repro.core.probing import (
    basic_probing,
    batch_probing,
    improved_probing,
)
from repro.core.bounds import (
    BOUND_NAMES,
    aggressive_bound,
    conservative_bound,
    join_list_bound,
    lbc,
    max_bound,
    naive_bound,
)
from repro.core.join import JoinUpgrader
from repro.core.api import top_k_upgrades
from repro.core.optimal import optimal_upgrade_2d, optimal_upgrade_exhaustive
from repro.core.session import MarketSession
from repro.core.single_set import single_set_top_k, split_catalog
from repro.core.verify import brute_force_topk, verify_results

__all__ = [
    "BOUND_NAMES",
    "JoinUpgrader",
    "MarketSession",
    "UpgradeConfig",
    "UpgradeOutcome",
    "UpgradeResult",
    "aggressive_bound",
    "basic_probing",
    "batch_probing",
    "brute_force_topk",
    "conservative_bound",
    "get_dominating_skyline",
    "improved_probing",
    "join_list_bound",
    "lbc",
    "max_bound",
    "naive_bound",
    "optimal_upgrade_2d",
    "optimal_upgrade_exhaustive",
    "single_set_top_k",
    "split_catalog",
    "top_k_upgrades",
    "upgrade",
    "verify_results",
]
