"""Single-set product upgrading (the paper's §VI third research direction).

The paper keeps competitors ``P`` and upgrade candidates ``T`` in separate
sets, and closes by noting the variant where *one* manufacturer owns a
single catalog ``S`` and wants to upgrade its uncompetitive products "in
the presence of advantaged ones".  This module implements that variant:

* the catalog's **skyline** members are the competitive products — they
  need no upgrade and act as the competitor set;
* every **non-skyline** member is an upgrade candidate; its upgrade must
  escape domination by the *rest of the catalog*, which is equivalent to
  escaping the catalog's skyline (any dominator is dominated-or-equalled
  by a skyline member, so escaping the skyline escapes everybody).

One subtlety makes this more than a trivial reduction: upgrading a product
conceptually *changes the catalog*.  The interpretation implemented here —
the natural one for a ranking query — scores every candidate against the
*original* catalog skyline, i.e. upgrades are evaluated independently,
exactly like the two-set problem scores every ``t`` against the same ``P``.
Sequential "apply one upgrade, then re-rank" workflows can simply call
:func:`single_set_top_k` again after committing an upgrade.

The implementation reuses the full two-set machinery: the skyline is
extracted with the vectorized reference (or BBS for an existing R-tree),
both sides are bulk-loaded, and Algorithm 4 runs unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.join import JoinUpgrader
from repro.core.probing import improved_probing
from repro.core.types import UpgradeConfig, UpgradeOutcome, UpgradeResult
from repro.costs.model import CostModel, paper_cost_model
from repro.exceptions import ConfigurationError, EmptyDatasetError
from repro.rtree.tree import RTree
from repro.skyline.vectorized import numpy_skyline_mask

_DEFAULT_CONFIG = UpgradeConfig()


def split_catalog(
    catalog: Sequence[Sequence[float]],
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Partition a catalog into its skyline and non-skyline members.

    Returns:
        ``(skyline_rows, candidate_rows, candidate_ids)`` where
        ``candidate_ids`` maps candidate rows back to catalog positions.
    """
    arr = np.asarray(catalog, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise EmptyDatasetError("catalog must be a non-empty (n, d) array")
    mask = numpy_skyline_mask(arr)
    candidate_ids = np.flatnonzero(~mask)
    return arr[mask], arr[~mask], candidate_ids


def single_set_top_k(
    catalog: Sequence[Sequence[float]],
    k: int = 1,
    cost_model: Optional[CostModel] = None,
    method: str = "join",
    bound: str = "clb",
    config: UpgradeConfig = _DEFAULT_CONFIG,
    max_entries: int = 32,
) -> UpgradeOutcome:
    """Top-k cheapest upgrades within a single product catalog.

    Args:
        catalog: the full product set ``S`` (rows of points, smaller is
            better).  Result record ids are row positions in ``catalog``.
        k: number of cheapest-to-upgrade products to return.
        cost_model: defaults to the paper's reciprocal-sum model.
        method: ``"join"`` (Algorithm 4) or ``"probing"`` (improved
            probing) over the derived two-set instance.
        bound: join-list bound for the join method.

    Returns:
        The top-k candidates with ids referring to catalog rows; an empty
        outcome when the whole catalog is its own skyline (nothing to
        upgrade).
    """
    if method not in ("join", "probing"):
        raise ConfigurationError(
            f"unknown method {method!r}; choose 'join' or 'probing'"
        )
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    skyline_rows, candidate_rows, candidate_ids = split_catalog(catalog)
    dims = skyline_rows.shape[1]
    if cost_model is None:
        cost_model = paper_cost_model(dims)
    if len(candidate_rows) == 0:
        return UpgradeOutcome([])

    competitor_tree = RTree.bulk_load(skyline_rows, max_entries=max_entries)
    if method == "join":
        product_tree = RTree.bulk_load(
            candidate_rows, max_entries=max_entries
        )
        upgrader = JoinUpgrader(
            competitor_tree, product_tree, cost_model, bound, config
        )
        outcome = upgrader.run(k)
        outcome.report.algorithm = f"single-set/join[{bound}]"
    else:
        outcome = improved_probing(
            competitor_tree, candidate_rows, cost_model, k, config
        )
        outcome.report.algorithm = "single-set/probing"

    remapped: List[UpgradeResult] = [
        UpgradeResult(
            int(candidate_ids[r.record_id]), r.original, r.upgraded, r.cost
        )
        for r in outcome.results
    ]
    outcome.results = remapped
    return outcome
