"""Algorithm 1: upgrading a single product (paper §II).

Given a product ``p`` and the skyline ``S`` of its dominators, the algorithm
considers, for every dimension ``D_k``:

1. the **single-dimension** upgrade — give ``p`` the best ``D_k`` value among
   all skyline points, minus ε (lines 4–7 of the pseudo code); and
2. the **slotting** upgrades — for every pair of consecutive (in ``D_k``
   order) skyline points ``s_i``, ``s_j``, place ``p`` just below ``s_j`` on
   ``D_k`` and just below ``s_i`` on every other dimension (lines 8–16).

The cheapest alternative wins.  Lemma 1 proves every alternative yields a
point no skyline point dominates, *provided* ``S`` is an antichain — which is
why callers must reduce dominator sets to skylines first
(``UpgradeConfig.validate`` makes this a checked precondition).

The optional **extended** mode adds a third family the paper's pseudo code
omits: keep ``p``'s own ``D_k`` value and match the *last* (largest-``D_k``)
skyline point on every other dimension.  Correctness: the last point
``s_last`` is beaten on all dimensions but ``D_k``; any other ``s`` has
``s.d_k <= s_last.d_k``, so by the antichain property there is a dimension
``y != D_k`` with ``s.d_y > s_last.d_y``, where the upgraded point's value
``s_last.d_y - ε`` is strictly better than ``s.d_y``.  The extension can
only lower the chosen cost (it adds candidates); the paper itself notes the
optimality of Algorithm 1 as an open question (§VI).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.types import UpgradeConfig
from repro.costs.model import CostModel
from repro.exceptions import DimensionalityError, NotAnAntichainError
from repro.geometry.point import dominates
from repro.instrumentation import Counters
from repro.kernels.switch import kernels_enabled
from repro.kernels.upgrade_enum import upgrade_kernel
from repro.obs import span

Point = Tuple[float, ...]

_DEFAULT_CONFIG = UpgradeConfig()


def upgrade(
    skyline: Sequence[Sequence[float]],
    product: Sequence[float],
    cost_model: CostModel,
    config: UpgradeConfig = _DEFAULT_CONFIG,
    stats: Optional[Counters] = None,
) -> Tuple[float, Point]:
    """Upgrade ``product`` past the dominator skyline ``skyline``.

    Args:
        skyline: the skyline of ``product``'s dominators (an antichain in
            which every point dominates ``product``).  May be empty, in
            which case the product is already competitive.
        product: the point to upgrade.
        cost_model: the product cost function ``f_p``.
        config: ε, extended-mode, and validation switches.
        stats: optional counters (``upgrade_calls`` is incremented once).

    Returns:
        ``(cost, upgraded_point)`` with
        ``cost == f_p(upgraded_point) - f_p(product)``; ``(0.0, product)``
        when the skyline is empty.

    Raises:
        NotAnAntichainError: in validating mode, when ``skyline`` contains a
            dominated point or a point that fails to dominate ``product``.
    """
    p = tuple(float(v) for v in product)
    points: List[Point] = [tuple(float(v) for v in s) for s in skyline]
    if stats is not None:
        stats.upgrade_calls += 1
    if not points:
        return 0.0, p
    dims = len(p)
    for s in points:
        if len(s) != dims:
            raise DimensionalityError(
                f"skyline point has {len(s)} dims, product has {dims}"
            )
    if config.validate:
        _validate_antichain(points, p)

    use_kernel = (
        kernels_enabled()
        and len(points) >= _VECTOR_THRESHOLD
        and cost_model.supports_vectorization()
    )
    with span(
        "upgrade.algorithm1",
        skyline_size=len(points),
        kernel_or_scalar="kernel" if use_kernel else "scalar",
    ):
        if use_kernel:
            # Columnar path: the whole candidate set priced in one batch
            # (same visit order as below, so ties resolve identically).
            if stats is None:
                return upgrade_kernel(
                    points, p, cost_model, config.epsilon, config.extended
                )
            with stats.timed("kernel.upgrade"):
                return upgrade_kernel(
                    points, p, cost_model, config.epsilon, config.extended
                )
        if stats is not None:
            with stats.timed("scalar.upgrade"):
                return _upgrade_scalar(points, p, cost_model, config)
        return _upgrade_scalar(points, p, cost_model, config)


def _upgrade_scalar(
    points: List[Point],
    p: Point,
    cost_model: CostModel,
    config: UpgradeConfig,
) -> Tuple[float, Point]:
    """The paper's Algorithm 1 verbatim — the kernel path's oracle."""
    dims = len(p)
    eps = config.epsilon
    base_cost = cost_model.product_cost(p)
    best_cost = float("inf")
    best: Optional[Point] = None

    for k in range(dims):
        ordered = sorted(points, key=lambda s: s[k])

        # Lines 4-7: beat every skyline point on dimension k alone.
        lowest = ordered[0]
        candidate = p[:k] + (lowest[k] - eps,) + p[k + 1 :]
        cost = cost_model.product_cost(candidate) - base_cost
        if cost < best_cost:
            best_cost = cost
            best = candidate

        # Lines 8-16: slot between consecutive skyline points s_i < s_j on
        # dimension k, matching s_i on every other dimension.
        for i in range(len(ordered) - 1):
            s_i = ordered[i]
            s_j = ordered[i + 1]
            candidate = tuple(
                (s_j[k] - eps) if x == k else (s_i[x] - eps)
                for x in range(dims)
            )
            cost = cost_model.product_cost(candidate) - base_cost
            if cost < best_cost:
                best_cost = cost
                best = candidate

        if config.extended:
            # Tail extension: keep p's own d_k, match the last point on the
            # other dimensions (see module docstring for the proof).
            s_last = ordered[-1]
            candidate = tuple(
                p[x] if x == k else (s_last[x] - eps) for x in range(dims)
            )
            cost = cost_model.product_cost(candidate) - base_cost
            if cost < best_cost:
                best_cost = cost
                best = candidate

    assert best is not None  # points is non-empty, so some candidate exists
    return best_cost, best


#: Skyline size above which the columnar kernel path takes over (below it
#: the numpy dispatch overhead loses to the plain loops).
_VECTOR_THRESHOLD = 48


def _validate_antichain(points: List[Point], product: Point) -> None:
    """Check Lemma 1's preconditions on the skyline input."""
    for i, a in enumerate(points):
        if not dominates(a, product):
            raise NotAnAntichainError(
                f"skyline point {a} does not dominate the product {product}"
            )
        for b in points[i + 1 :]:
            if dominates(a, b) or dominates(b, a):
                raise NotAnAntichainError(
                    f"skyline input is not an antichain: {a} vs {b}"
                )
