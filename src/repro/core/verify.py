"""Correctness oracles and result validators.

:func:`brute_force_topk` recomputes the top-k answer with no index, no
pruning, and no join — just vectorized dominator scans plus Algorithm 1 —
and is the reference the probing/join implementations are tested against.

:func:`verify_results` checks the *semantic* contract of any returned
result set: every upgraded point must escape domination by the full
competitor set, and every reported cost must equal the cost-model delta.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.types import UpgradeConfig, UpgradeResult
from repro.core.upgrade import upgrade
from repro.costs.model import CostModel
from repro.exceptions import SkyUpError
from repro.skyline.vectorized import numpy_skyline

_DEFAULT_CONFIG = UpgradeConfig()


def brute_force_topk(
    competitors: Sequence[Sequence[float]],
    products: Sequence[Sequence[float]],
    cost_model: CostModel,
    k: int = 1,
    config: UpgradeConfig = _DEFAULT_CONFIG,
) -> List[UpgradeResult]:
    """Index-free reference solution of the top-k upgrading problem.

    For each product: find its dominators by a full vectorized scan of
    ``P``, reduce them to a skyline, run Algorithm 1.  Sort all products by
    cost and return the first ``k``.
    """
    p_arr = np.asarray(competitors, dtype=np.float64)
    results: List[UpgradeResult] = []
    for record_id, raw in enumerate(products):
        t = tuple(float(v) for v in raw)
        if p_arr.size:
            t_row = np.asarray(t)
            le = (p_arr <= t_row).all(axis=1)
            lt = (p_arr < t_row).any(axis=1)
            dominators = p_arr[le & lt]
            skyline = numpy_skyline(dominators) if len(dominators) else []
        else:
            skyline = []
        cost, upgraded = upgrade(skyline, t, cost_model, config)
        results.append(UpgradeResult(record_id, t, upgraded, cost))
    results.sort(key=lambda r: (r.cost, r.record_id))
    return results[:k]


def verify_results(
    results: Sequence[UpgradeResult],
    competitors: Sequence[Sequence[float]],
    cost_model: CostModel,
    cost_tolerance: float = 1e-9,
) -> None:
    """Validate a result set against the problem's semantic contract.

    Checks, for every result:

    1. the upgraded point is dominated by **no** competitor;
    2. ``cost == f_p(upgraded) - f_p(original)`` within ``cost_tolerance``.

    Raises:
        SkyUpError: on the first violated contract.
    """
    p_arr = np.asarray(competitors, dtype=np.float64)
    for r in results:
        if p_arr.size:
            up = np.asarray(r.upgraded)
            le = (p_arr <= up).all(axis=1)
            lt = (p_arr < up).any(axis=1)
            if bool(np.any(le & lt)):
                offender = p_arr[le & lt][0]
                raise SkyUpError(
                    f"product {r.record_id}: upgraded point {r.upgraded} "
                    f"is still dominated (e.g. by {tuple(offender)})"
                )
        expected = cost_model.upgrade_cost(r.original, r.upgraded)
        if abs(expected - r.cost) > cost_tolerance:
            raise SkyUpError(
                f"product {r.record_id}: reported cost {r.cost} deviates "
                f"from the cost-model delta {expected}"
            )
