"""Partitioning the competitor catalog across shards.

Records hash to shards by id (``record_id % n_shards``): cheap, stable
under mutation (a record's shard never changes), and balanced for the
dense row-order ids :meth:`MarketSession.from_points` assigns.  Shards
map to worker processes round-robin (``shard % n_processes``) so any
``processes <= shards`` configuration works — a process simply hosts
several shard indexes and streams them independently.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ConfigurationError

Point = Tuple[float, ...]


def shard_of(record_id: int, n_shards: int) -> int:
    """The shard owning ``record_id``."""
    return record_id % n_shards


def process_of(shard: int, n_processes: int) -> int:
    """The worker process hosting ``shard``."""
    return shard % n_processes


def shards_of_process(proc: int, n_shards: int, n_processes: int) -> List[int]:
    """The shard indexes hosted by worker process ``proc``, ascending."""
    return [s for s in range(n_shards) if s % n_processes == proc]


def partition_catalog(
    ids: Sequence[int],
    points: Sequence[Point],
    n_shards: int,
) -> List[Tuple[List[int], List[Point]]]:
    """Split parallel (ids, points) lists into per-shard lists.

    Input id order is preserved within each shard, so per-shard blocks
    are deterministic functions of the catalog state.

    Raises:
        ConfigurationError: mismatched inputs or ``n_shards < 1``.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    if len(ids) != len(points):
        raise ConfigurationError(
            f"{len(ids)} ids but {len(points)} points"
        )
    out: List[Tuple[List[int], List[Point]]] = [
        ([], []) for _ in range(n_shards)
    ]
    for rid, point in zip(ids, points):
        bucket = out[rid % n_shards]
        bucket[0].append(rid)
        bucket[1].append(point)
    return out


def partition_members(
    members: Dict[int, Point], n_shards: int
) -> List[Tuple[List[int], List[Point]]]:
    """Partition an id→point dict (ascending id order within shards)."""
    ids = sorted(members)
    return partition_catalog(ids, [members[i] for i in ids], n_shards)
