"""Sharded-engine scaling benchmark: throughput across process counts.

The workload is the serving benchmark's repeated-query stream
(:func:`repro.serve.bench.generate_requests`) with catalog writes mixed
in — every ``write_every`` requests an ``add_competitor`` followed by a
``remove_competitor`` of an earlier insert, so each measured run
exercises the whole mutation path (eager segment republish, epoch bump,
incremental worker sync) while the catalog size stays stable.

Each process count replays the byte-identical request sequence twice
(cold and cached) through a fresh session, and a single-process
:class:`~repro.serve.engine.UpgradeEngine` pair anchors the comparison.
``benchmarks/results/BENCH_shard.json`` records a run; the report embeds
the machine (CPU count, platform) because scatter-gather scaling is
meaningless without it — on a single-core container every extra process
only adds coordination cost, and the recorded numbers say so honestly.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.bench import build_session, generate_requests
from repro.serve.config import EngineConfig
from repro.serve.engine import Query, UpgradeEngine
from repro.shard.engine import ShardedUpgradeEngine

_BATCH = 32


def make_write_points(
    n_writes: int, dims: int, seed: int
) -> List[Tuple[float, ...]]:
    rng = np.random.default_rng(seed)
    return [
        tuple(float(v) for v in rng.uniform(0.0, 1.0, size=dims))
        for _ in range(n_writes)
    ]


def replay_mixed(
    engine: object,
    requests: Sequence[Query],
    write_points: Sequence[Tuple[float, ...]],
    write_every: int,
) -> Dict[str, object]:
    """Replay ``requests`` with interleaved writes; returns cell stats.

    Writes come in add/remove pairs against ``write_points`` (each added
    competitor is removed by the *next* write slot), so the catalog ends
    the run at its starting size and every run sees the same sequence.
    """
    hits = 0
    writes = 0
    pending_removal: Optional[int] = None
    next_write = write_every if write_every else len(requests) + 1
    start = time.perf_counter()
    for lo in range(0, len(requests), _BATCH):
        batch = list(requests[lo:lo + _BATCH])
        for response in engine.execute_batch(batch):
            if response.cache_hit:
                hits += 1
        while next_write <= lo + len(batch):
            if pending_removal is not None:
                engine.remove_competitor(pending_removal)
            point = write_points[writes % len(write_points)]
            pending_removal = engine.add_competitor(point)
            writes += 1
            next_write += write_every
    if pending_removal is not None:
        engine.remove_competitor(pending_removal)
    elapsed = time.perf_counter() - start
    n = len(requests)
    return {
        "requests": n,
        "writes": writes,
        "elapsed_s": elapsed,
        "throughput_rps": n / elapsed if elapsed > 0 else 0.0,
        "cache_hits": hits,
        "cache_hit_rate": hits / n if n else 0.0,
    }


def _run_cell(
    cache: bool,
    processes: int,
    shards: int,
    requests: Sequence[Query],
    write_points: Sequence[Tuple[float, ...]],
    write_every: int,
    method: str,
    session_kwargs: Dict[str, object],
) -> Dict[str, object]:
    # A fresh session per cell: the mixed writes mutate it, and every
    # cell must start from the identical catalog.
    session = build_session(**session_kwargs)
    config = EngineConfig(
        workers=0,
        cache=cache,
        method=method,
        processes=processes,
        shards=shards,
    )
    if processes > 0:
        engine = ShardedUpgradeEngine(session, config)
    else:
        engine = UpgradeEngine(session, config)
    try:
        out = replay_mixed(engine, requests, write_points, write_every)
        if processes > 0:
            stats = engine.shard_stats()
            out["shards"] = stats
            out["worker_crashes"] = sum(
                p["crashes"] for p in stats["per_process"]
            )
    finally:
        engine.close()
    return out


def run_shard_bench(
    n_competitors: int = 4000,
    n_products: int = 1500,
    dims: int = 3,
    distribution: str = "independent",
    n_requests: int = 600,
    hot_pool: int = 64,
    topk_every: int = 25,
    k: int = 5,
    seed: int = 2012,
    process_counts: Sequence[int] = (1, 2, 4, 8),
    shards_per_process: int = 1,
    write_every: int = 50,
    method: str = "join",
) -> Dict[str, object]:
    """Scaling sweep; returns a JSON-ready report.

    For each entry of ``process_counts`` the identical mixed read/write
    stream replays cold and cached through a sharded engine with
    ``p * shards_per_process`` shards; ``report["baseline"]`` is the
    single-process thread-tier engine on the same stream, and
    ``report["runs"][i]["scaling_vs_baseline"]`` is that run's cached
    throughput over the baseline's.  Interpret scaling together with
    ``report["machine"]["cpu_count"]``.
    """
    session_kwargs = {
        "n_competitors": n_competitors,
        "n_products": n_products,
        "dims": dims,
        "distribution": distribution,
        "seed": seed,
    }
    requests = generate_requests(
        n_requests,
        n_products,
        hot_pool=hot_pool,
        topk_every=topk_every,
        k=k,
        seed=seed + 1,
    )
    n_writes = (n_requests // write_every) if write_every else 0
    write_points = make_write_points(max(1, n_writes), dims, seed + 2)

    def cell(cache: bool, processes: int, shards: int) -> Dict[str, object]:
        return _run_cell(
            cache,
            processes,
            shards,
            requests,
            write_points,
            write_every,
            method,
            session_kwargs,
        )

    baseline = {
        "cold": cell(False, 0, 0),
        "cached": cell(True, 0, 0),
    }
    runs: List[Dict[str, object]] = []
    for p in process_counts:
        shards = p * shards_per_process
        run = {
            "processes": p,
            "shards": shards,
            "cold": cell(False, p, shards),
            "cached": cell(True, p, shards),
        }
        base_rps = baseline["cached"]["throughput_rps"]
        run["scaling_vs_baseline"] = (
            run["cached"]["throughput_rps"] / base_rps
            if base_rps
            else 0.0
        )
        runs.append(run)
    return {
        "workload": {
            "distribution": distribution,
            "competitors": n_competitors,
            "products": n_products,
            "dims": dims,
            "requests": n_requests,
            "hot_pool": hot_pool,
            "topk_every": topk_every,
            "k": k,
            "seed": seed,
            "method": method,
            "write_every": write_every,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "baseline": baseline,
        "runs": runs,
    }


def format_shard_report(report: Dict[str, object]) -> str:
    """Human-readable scaling table."""
    wl = report["workload"]
    machine = report["machine"]
    lines = [
        (
            f"# shard-bench: |P|={wl['competitors']} |T|={wl['products']} "
            f"d={wl['dims']} {wl['distribution']}; {wl['requests']} "
            f"requests, write every {wl['write_every']}; "
            f"{machine['cpu_count']} CPUs"
        ),
        (
            f"{'engine':14s} {'cold req/s':>11s} {'cached req/s':>13s} "
            f"{'vs baseline':>12s} {'crashes':>8s}"
        ),
    ]
    base = report["baseline"]
    lines.append(
        f"{'thread-tier':14s} {base['cold']['throughput_rps']:11.1f} "
        f"{base['cached']['throughput_rps']:13.1f} {'1.00x':>12s} "
        f"{'-':>8s}"
    )
    for run in report["runs"]:
        label = f"{run['processes']}p x {run['shards']}s"
        lines.append(
            f"{label:14s} {run['cold']['throughput_rps']:11.1f} "
            f"{run['cached']['throughput_rps']:13.1f} "
            f"{run['scaling_vs_baseline']:11.2f}x "
            f"{run['cached'].get('worker_crashes', 0):8d}"
        )
    return "\n".join(lines)
