"""Tail tolerance for the sharded tier: breakers, hedging, health.

PR 7's crash containment guarantees a killed worker never *hangs* a
request — but a slow, flapping, or repeatedly-dying shard process still
drags every scatter-gather round down with it, and a request either got
the full bit-identical answer or a typed error.  This module adds the
serving-literature toolkit that turns containment into tail-latency and
availability guarantees:

* :class:`CircuitBreaker` — one per shard process.  Consecutive
  transport failures (timeouts, crashes) trip it; tripped processes are
  *skipped* by the scatter path (their shards degrade the answer's
  ``coverage`` instead of stalling the round) and re-admitted through
  exponential half-open probes driven by the :class:`HealthMonitor`
  supervisor thread, so recovery does not depend on query traffic.
* :class:`HedgePolicy` — calibrated hedging.  The policy keeps a rolling
  window of shard-RPC latencies; once calibrated, a scatter that has
  waited ``p95 × factor`` re-issues the outstanding command and takes
  whichever reply lands first.  Shard commands are idempotent by
  construction (``skylines`` is a pure read; ``topk_next`` carries a
  per-stream sequence number the worker dedupes on), so the duplicate
  is always safe.
* :class:`HealthMonitor` — a supervisor thread that probes tripped
  breakers (``ping`` with a bounded timeout) and folds crash/latency
  history into a per-process health score in ``[0, 1]`` exposed via
  ``engine.metrics()["shard_health"]`` and ``skyup serve-bench``.
* :func:`scatter` — the one gather primitive the engine uses: submit an
  idempotent command to many handles, hedge stragglers, classify every
  failure (deadline-bounded timeouts are the *request's* fault and do
  not count against the shard; transport timeouts and crashes do), and
  feed the breakers and the hedge window.

Fork-safety: this module is imported by the coordinator only, but it
lives under ``shard/`` and so obeys SKY801 — no module-level locks.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import (
    EngineClosedError,
    TransientError,
    WorkerCrashError,
)
from repro.obs import clock
from repro.shard.client import PendingReply, ShardProcess

#: Breaker states (:attr:`CircuitBreaker.state`).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Cap on the exponential half-open cooldown.
MAX_COOLDOWN_S = 30.0

#: Shard-RPC latency samples required before the adaptive hedge delay
#: arms (hedging on an uncalibrated p95 would hedge everything).
HEDGE_MIN_SAMPLES = 16

#: Adaptive hedge delay = p95 × this factor (floored at HEDGE_FLOOR_S).
HEDGE_FACTOR = 3.0
HEDGE_FLOOR_S = 0.01

#: Bound on one supervisor ``ping`` probe.
PROBE_TIMEOUT_S = 2.0


class CircuitBreaker:
    """Consecutive-failure breaker with exponential half-open probes.

    The query path consults :meth:`allow` (closed → serve, otherwise
    skip) and reports outcomes via :meth:`record_success` /
    :meth:`record_failure`; the supervisor claims half-open probes via
    :meth:`should_probe` once the cooldown has elapsed.  Each failed
    probe doubles the cooldown (capped at :data:`MAX_COOLDOWN_S`); a
    successful probe closes the breaker and resets it.

    ``threshold=0`` disables the breaker entirely (always closed).
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 0.5,
        now: Callable[[], float] = time.monotonic,
    ):
        self.threshold = threshold
        self.base_cooldown_s = cooldown_s
        self._now = now
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED  # guarded-by: _lock
        self._consecutive = 0  # guarded-by: _lock
        self._cooldown_s = cooldown_s  # guarded-by: _lock
        self._opened_at = 0.0  # guarded-by: _lock
        self.trips = 0  # guarded-by: _lock
        self.probes = 0  # guarded-by: _lock
        self.successes = 0  # guarded-by: _lock
        self.failures = 0  # guarded-by: _lock

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive

    def allow(self) -> bool:
        """May the query path use this process right now?"""
        with self._lock:
            return self._state == BREAKER_CLOSED

    def should_probe(self) -> bool:
        """Supervisor-side: claim the half-open probe slot if due."""
        with self._lock:
            if self._state != BREAKER_OPEN:
                return False
            if self._now() - self._opened_at < self._cooldown_s:
                return False
            self._state = BREAKER_HALF_OPEN
            self.probes += 1
            return True

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self._consecutive = 0
            self._state = BREAKER_CLOSED
            self._cooldown_s = self.base_cooldown_s

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._consecutive += 1
            if self.threshold <= 0:
                return
            if self._state == BREAKER_HALF_OPEN:
                # Failed probe: re-open and back off exponentially.
                self._state = BREAKER_OPEN
                self._opened_at = self._now()
                self._cooldown_s = min(
                    self._cooldown_s * 2.0, MAX_COOLDOWN_S
                )
            elif (
                self._state == BREAKER_CLOSED
                and self._consecutive >= self.threshold
            ):
                self._state = BREAKER_OPEN
                self._opened_at = self._now()
                self.trips += 1

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive,
                "trips": self.trips,
                "probes": self.probes,
                "cooldown_s": self._cooldown_s,
                "successes": self.successes,
                "failures": self.failures,
            }


class HedgePolicy:
    """When to re-issue a straggling shard RPC.

    ``fixed_delay_s`` pins the hedge delay; ``None`` selects the
    adaptive mode — a rolling window of observed RPC latencies, hedging
    at ``p95 × HEDGE_FACTOR`` once :data:`HEDGE_MIN_SAMPLES` samples are
    in.  Until calibrated the adaptive policy does not hedge at all
    (returns ``None``): hedging on a guessed delay would either hedge
    every request or none.
    """

    def __init__(
        self, fixed_delay_s: Optional[float] = None, window: int = 256
    ):
        self.fixed_delay_s = fixed_delay_s
        self._lock = threading.Lock()
        self._samples: List[float] = []  # guarded-by: _lock
        self._window = window
        self.hedges = 0  # guarded-by: _lock
        self.wins = 0  # guarded-by: _lock

    def observe(self, latency_s: float) -> None:
        """Feed one successful RPC's latency into the window."""
        with self._lock:
            self._samples.append(latency_s)
            if len(self._samples) > self._window:
                del self._samples[: len(self._samples) - self._window]

    def delay(self) -> Optional[float]:
        """Current hedge delay in seconds (``None`` = do not hedge)."""
        if self.fixed_delay_s is not None:
            return self.fixed_delay_s
        with self._lock:
            if len(self._samples) < HEDGE_MIN_SAMPLES:
                return None
            ordered = sorted(self._samples)
            rank = min(
                len(ordered) - 1, round(0.95 * (len(ordered) - 1))
            )
            return max(HEDGE_FLOOR_S, ordered[rank] * HEDGE_FACTOR)

    def record_hedge(self) -> None:
        """Count one hedge issued (call at re-issue time)."""
        with self._lock:
            self.hedges += 1

    def record_win(self) -> None:
        """Count one hedge whose reply beat the primary's."""
        with self._lock:
            self.wins += 1

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            hedges, wins = self.hedges, self.wins
            n = len(self._samples)
        return {
            "delay_s": self.delay(),
            "fixed": self.fixed_delay_s is not None,
            "samples": n,
            "hedges": hedges,
            "wins": wins,
        }


class _HealthScore:
    """EWMA fold of breaker outcomes into one ``[0, 1]`` score."""

    __slots__ = ("value", "_alpha", "_last_ok", "_last_fail")

    def __init__(self, alpha: float = 0.4):
        self.value = 1.0
        self._alpha = alpha
        self._last_ok = 0
        self._last_fail = 0

    def update(self, breaker: CircuitBreaker, alive: bool) -> float:
        snap = breaker.snapshot()
        ok = snap["successes"] - self._last_ok
        fail = snap["failures"] - self._last_fail
        self._last_ok, self._last_fail = snap["successes"], snap["failures"]
        factor = {
            BREAKER_CLOSED: 1.0,
            BREAKER_HALF_OPEN: 0.5,
            BREAKER_OPEN: 0.0,
        }[snap["state"]]
        if not alive:
            factor = 0.0
        ratio = ok / (ok + fail) if (ok + fail) else 1.0
        instant = factor * ratio
        self.value = (1 - self._alpha) * self.value + self._alpha * instant
        return self.value


class ShardResilience:
    """Per-engine resilience state: breakers, hedge policy, supervisor.

    Owns one :class:`CircuitBreaker` per shard process, the shared
    :class:`HedgePolicy`, and the background :class:`HealthMonitor`
    thread.  The engine consults :meth:`allow` before scattering to a
    process and hands every RPC outcome back through
    :func:`scatter`; the supervisor recovers tripped breakers with
    bounded ``ping`` probes so a shard that healed while unqueried
    still comes back.
    """

    def __init__(
        self,
        handles: Sequence[ShardProcess],
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 0.5,
        hedge_delay_s: Optional[float] = None,
        health_interval_s: float = 0.25,
    ):
        self.handles = list(handles)
        self.breakers: Dict[int, CircuitBreaker] = {
            h.index: CircuitBreaker(
                threshold=breaker_threshold,
                cooldown_s=breaker_cooldown_s,
            )
            for h in self.handles
        }
        self.hedge = HedgePolicy(fixed_delay_s=hedge_delay_s)
        self.health_interval_s = health_interval_s
        self._scores: Dict[int, _HealthScore] = {
            h.index: _HealthScore() for h in self.handles
        }
        self._stats_lock = threading.Lock()
        self.breaker_skips = 0  # guarded-by: _stats_lock
        self.rpc_timeouts = 0  # guarded-by: _stats_lock
        self.deadline_truncations = 0  # guarded-by: _stats_lock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- query-path hooks ------------------------------------------------------

    def allow(self, proc: int) -> bool:
        """Is the process admitted to the scatter (breaker closed)?"""
        return self.breakers[proc].allow()

    def note_skip(self, n: int = 1) -> None:
        with self._stats_lock:
            self.breaker_skips += n

    def note_rpc_timeout(self) -> None:
        with self._stats_lock:
            self.rpc_timeouts += 1

    def note_deadline_truncation(self) -> None:
        with self._stats_lock:
            self.deadline_truncations += 1

    # -- supervision -----------------------------------------------------------

    def start(self) -> None:
        """Start the health/probe supervisor thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._supervise,
            name="skyup-shard-health",
            daemon=True,
        )
        self._thread.start()

    def stop(self, timeout_s: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout_s)
            self._thread = None

    # error-boundary: a probe failure is data, never a supervisor crash
    def _supervise(self) -> None:
        while not self._stop.wait(self.health_interval_s):
            for handle in self.handles:
                breaker = self.breakers[handle.index]
                if breaker.should_probe():
                    try:
                        handle.request(
                            "ping", timeout=PROBE_TIMEOUT_S
                        )
                        breaker.record_success()
                    except Exception:
                        breaker.record_failure()
                self._scores[handle.index].update(
                    breaker, handle.alive
                )

    # -- reporting -------------------------------------------------------------

    def health(self, proc: int) -> float:
        return self._scores[proc].value

    def snapshot(
        self, shards_of: Callable[[int], Sequence[int]]
    ) -> Dict[str, object]:
        """The ``metrics()["shard_health"]`` payload."""
        per_process = []
        open_count = 0
        trips = 0
        for handle in self.handles:
            b = self.breakers[handle.index].snapshot()
            trips += b["trips"]
            if b["state"] != BREAKER_CLOSED:
                open_count += 1
            per_process.append(
                {
                    "proc": handle.index,
                    "shards": list(shards_of(handle.index)),
                    "alive": handle.alive,
                    "health": round(self._scores[handle.index].value, 4),
                    "breaker": b,
                }
            )
        with self._stats_lock:
            skips = self.breaker_skips
            timeouts = self.rpc_timeouts
            truncations = self.deadline_truncations
        return {
            "hedge": self.hedge.snapshot(),
            "breaker_trips": trips,
            "breaker_skips": skips,
            "breakers_open": open_count,
            "rpc_timeouts": timeouts,
            "deadline_truncations": truncations,
            "per_process": per_process,
        }


class RPCOutcome:
    """One handle's result from :func:`scatter`."""

    __slots__ = (
        "payload",
        "fragments",
        "error",
        "deadline_bounded",
        "hedged",
        "hedge_won",
        "latency_s",
    )

    def __init__(self) -> None:
        self.payload: object = None
        self.fragments: List[tuple] = []
        self.error: Optional[BaseException] = None
        #: The wait was cut by the *request's* deadline, not the RPC
        #: bound — the shard is not at fault and its breaker untouched.
        self.deadline_bounded = False
        self.hedged = False
        self.hedge_won = False
        self.latency_s = 0.0


class _CallState:
    """Book-keeping for one handle's (possibly hedged) command."""

    __slots__ = ("handle", "op", "args", "primary", "hedge", "outcome",
                 "t0", "hedge_clock_t0")

    def __init__(self, handle: ShardProcess, op: str, args: tuple):
        self.handle = handle
        self.op = op
        self.args = args
        self.primary: Optional[PendingReply] = None
        self.hedge: Optional[PendingReply] = None
        self.outcome: Optional[RPCOutcome] = None
        self.t0 = 0.0
        self.hedge_clock_t0 = 0.0

    def _submit(self, wake: threading.Event) -> Optional[PendingReply]:
        try:
            reply = self.handle.submit(self.op, *self.args)
        except (WorkerCrashError, EngineClosedError, TransientError) as exc:
            out = RPCOutcome()
            out.error = exc
            self.outcome = out
            return None
        reply.attach_waiter(wake)
        return reply


def scatter(
    calls: Sequence[Tuple[ShardProcess, str, tuple]],
    *,
    timeout_s: Optional[float],
    deadline_bounded: bool,
    resilience: ShardResilience,
    trace=None,
) -> Dict[int, RPCOutcome]:
    """Scatter one idempotent command per handle; hedge stragglers.

    Submits every command up front, waits on a shared event, and after
    the calibrated hedge delay re-issues any still-outstanding command
    to the same handle — which by then may be a *respawned* worker (a
    crashed primary also triggers one immediate re-issue, the
    "standby" path).  The first reply per handle wins; duplicates are
    harmless because every shard command is idempotent (``topk_next``
    dedupes on its sequence number, the rest are pure reads).

    Failure classification feeds the breakers: crashes and RPC-bound
    timeouts are the shard's fault (``record_failure``); a wait cut
    short by the *request's* deadline (``deadline_bounded=True``) is
    not — the outcome carries ``deadline_bounded`` so the engine
    degrades the response instead of tripping the breaker.

    Returns ``{handle.index: RPCOutcome}`` for every requested handle.
    """
    wake = threading.Event()
    now = time.monotonic()
    deadline = now + timeout_s if timeout_s is not None else None
    hedge_delay = resilience.hedge.delay()
    hedge_at = now + hedge_delay if hedge_delay is not None else None

    states: List[_CallState] = []
    for handle, op, args in calls:
        st = _CallState(handle, op, args)
        st.t0 = now
        st.primary = st._submit(wake)
        if st.primary is None and st.outcome is not None:
            # Submit-time crash: one immediate re-issue (the worker may
            # already have respawned); a second failure is final.
            crash = st.outcome
            st.outcome = None
            st.hedge = st._submit(wake)
            st.hedge_clock_t0 = clock()
            if st.hedge is None:
                st.outcome.error = st.outcome.error or crash.error
            else:
                st.outcome = None
                resilience.hedge.record_hedge()
        states.append(st)

    def settle_success(st: _CallState, reply: PendingReply, won: bool):
        out = RPCOutcome()
        out.payload = reply.payload
        out.fragments = reply.fragments
        out.hedged = st.hedge is not None
        out.hedge_won = won
        out.latency_s = time.monotonic() - st.t0
        st.outcome = out
        resilience.breakers[st.handle.index].record_success()
        resilience.hedge.observe(out.latency_s)
        if won:
            resilience.hedge.record_win()
        if trace is not None and out.hedged:
            trace.record(
                "shard.hedge",
                st.hedge_clock_t0 or clock(),
                clock(),
                proc=st.handle.index,
                op=st.op,
                won=won,
            )

    while True:
        now = time.monotonic()
        open_states = [st for st in states if st.outcome is None]
        if not open_states:
            break
        for st in open_states:
            primary_err: Optional[BaseException] = None
            hedge_err: Optional[BaseException] = None
            if st.hedge is not None and st.hedge.done():
                if st.hedge.error is None:
                    settle_success(st, st.hedge, won=True)
                    continue
                hedge_err = st.hedge.error
            if st.primary is not None and st.primary.done():
                if st.primary.error is None:
                    settle_success(st, st.primary, won=False)
                    continue
                primary_err = st.primary.error
            if st.primary is not None and primary_err is not None:
                if st.hedge is None:
                    # Crashed in flight: immediate re-issue once.
                    st.hedge = st._submit(wake)
                    st.hedge_clock_t0 = clock()
                    if st.hedge is not None:
                        st.outcome = None
                        resilience.hedge.record_hedge()
                        continue
                    st.outcome = None
                if hedge_err is not None or st.hedge is None:
                    out = RPCOutcome()
                    out.error = hedge_err or primary_err
                    out.hedged = st.hedge is not None
                    st.outcome = out
                    resilience.breakers[
                        st.handle.index
                    ].record_failure()
        open_states = [st for st in states if st.outcome is None]
        if not open_states:
            break
        if deadline is not None and now >= deadline:
            for st in open_states:
                out = RPCOutcome()
                out.error = TimeoutError(
                    f"shard {st.handle.index} {st.op!r} timed out "
                    f"after {timeout_s:.3f}s"
                )
                out.deadline_bounded = deadline_bounded
                out.hedged = st.hedge is not None
                st.outcome = out
                if deadline_bounded:
                    continue
                resilience.note_rpc_timeout()
                resilience.breakers[st.handle.index].record_failure()
            break
        if hedge_at is not None and now >= hedge_at:
            for st in open_states:
                if st.hedge is None and st.primary is not None:
                    st.hedge = st._submit(wake)
                    st.hedge_clock_t0 = clock()
                    if st.hedge is not None:
                        resilience.hedge.record_hedge()
            hedge_at = None  # hedge once per scatter
        wait_until = deadline
        if hedge_at is not None:
            wait_until = (
                hedge_at if wait_until is None else min(hedge_at, wait_until)
            )
        # Bounded wait even with no deadline and no hedge pending: a
        # dropped reply must never park the scatter forever.
        step = 0.05 if wait_until is None else max(
            0.001, min(wait_until - time.monotonic(), 0.05)
        )
        wake.wait(step)
        wake.clear()

    # Replies that never came (dropped commands, timed-out stragglers)
    # must not leak pending slots; the receiver drops late responses
    # whose request id is gone.
    for st in states:
        for reply in (st.primary, st.hedge):
            if reply is not None and not reply.done():
                st.handle.forget(reply)

    return {st.handle.index: st.outcome for st in states}
