"""The multi-process sharded upgrade engine (scatter-gather tier).

:class:`ShardedUpgradeEngine` serves the same query API as the
thread-tier :class:`~repro.serve.engine.UpgradeEngine`, but executes the
kernels in ``processes`` spawned worker processes, each owning one or
more hash shards (``record_id % shards``) of the competitor catalog:

* **Shared-memory catalogs** — every shard's columnar
  :class:`~repro.kernels.block.PointBlock` lives in POSIX shared memory
  (:mod:`repro.shard.memory`); workers attach zero-copy and rebuild
  their shard R-trees locally with the
  :meth:`~repro.rtree.tree.RTree.bulk_load_block` fast path.
* **Scatter-gather queries** — product queries scatter batched skyline
  requests and merge with :func:`~repro.core.dominators.merge_skylines`
  (bit-identical to a single-process traversal); top-k queries run one
  progressive stream per shard and merge under the threshold rule of
  :class:`~repro.shard.merge.ThresholdMerge`, emitting the canonical
  global ``(cost, record_id)`` order with early termination.
* **Shard-level epochs** — a mutation republishes and version-bumps
  *only the owning shard's* segment (plus an idempotent incremental
  index op in the live worker); the cache epoch is the vector
  ``(e_0, …, e_{S-1}, product_epoch)``, so the precise invalidation
  rules of :mod:`repro.serve.cache` carry over unchanged.
* **Crash containment** — a killed worker process fails its in-flight
  requests with a typed :class:`~repro.exceptions.WorkerCrashError`
  (never a hang), and is eagerly respawned from the *current* segment
  specs; because segments are republished eagerly on every mutation, a
  respawned worker is consistent by construction.
* **Degraded-mode resilience** (:mod:`repro.shard.resilience`) — every
  shard RPC carries the request's remaining deadline budget (workers
  truncate cooperatively), stragglers are hedged after a calibrated
  p95-based delay, per-process circuit breakers skip flapping workers
  (re-admitted via supervisor half-open probes), and when shards are
  missing the threshold merge finalizes what is provably correct from
  the live ones: responses carry ``partial=True`` plus a ``coverage``
  fraction (shards contributing / total).  Full-coverage partial
  answers are exact prefixes of the canonical order; reduced-coverage
  answers are exact over the reduced market (per-product lower bounds
  on true costs).  Only full-coverage, non-degraded results are ever
  cached.

Coordinator-side exact costs: a sighted product's global cost is
computed by merging its per-process skylines and running Algorithm 1
(:func:`~repro.core.upgrade.upgrade`) once — the merged skyline is in
the canonical ``(sum, lex)`` order, so the upgraded point is
bit-identical to the single-process answer even at sort ties.

Not replicated from the thread tier (document, don't pretend): the
cost-based planner (workers run the fixed join unless
``config.method="probing"``), kernel-guard sampling, and retry policies
— the shard tier's reliability story is crash containment + respawn.

Lock order (witnessed by the chaos suite): ``engine._rw`` →
``ShardProcess._lock``; the monitor thread takes only the handle lock,
and the resilience supervisor takes only handle and breaker locks
(breaker/hedge locks are leaves — nothing is acquired under them).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dominators import merge_skylines
from repro.core.session import MarketSession, MutationEvent
from repro.core.types import UpgradeResult
from repro.core.upgrade import upgrade
from repro.exceptions import (
    ConfigurationError,
    EngineClosedError,
    EngineOverloadedError,
    TransientError,
    WorkerCrashError,
)
from repro.instrumentation import Counters
from repro.obs import Trace, Tracer, TraceStore, activate, clock, span
from repro.serve.cache import SkylineCache, TopKCache
from repro.serve.config import EngineConfig
from repro.serve.engine import (
    PendingQuery,
    ProductQuery,
    Query,
    QueryResponse,
    TopKQuery,
)
from repro.serve.metrics import EngineMetrics
from repro.serve.pool import ReadWriteLock, WorkerPool
from repro.shard.client import ShardProcess
from repro.shard.memory import SharedBlock, padded_capacity
from repro.shard.resilience import ShardResilience, scatter
from repro.shard.partition import (
    partition_members,
    process_of,
    shard_of,
    shards_of_process,
)
from repro.shard.worker import ShardSpec

Point = Tuple[float, ...]

#: Per-engine namespace for segment names: unique within the machine as
#: long as the coordinator process lives (pid) and across engines in the
#: same process (counter).
_ENGINE_SEQ = itertools.count()

#: Rows pulled per shard per merge round.  Small enough to keep early
#: termination early, large enough to amortize the IPC round.
_STREAM_BATCH = 16

#: Deadline for worker acks on the mutation path (mutations are
#: memcpy-scale; a worker that cannot ack in this long is wedged).
_MUTATE_TIMEOUT_S = 60.0


class ShardedUpgradeEngine:
    """Serve upgrade queries from a fleet of shard worker processes.

    Args:
        session: the authoritative market state.  The engine registers a
            mutation listener that keeps the shared segments and worker
            indexes synchronized — route mutations through the engine's
            mutator methods (they hold the write lock).
        config: :class:`~repro.serve.config.EngineConfig`; ``processes``
            and ``shards`` select the topology (``processes`` defaults
            to 1, ``shards`` to one per process).  ``workers`` > 0
            additionally attaches the thread-tier request pool in front
            of the scatter-gather path.
    """

    def __init__(
        self,
        session: MarketSession,
        config: Optional[EngineConfig] = None,
    ):
        self.config = config = config or EngineConfig()
        self.session = session
        self.n_processes = max(1, config.processes)
        self.n_shards = config.shards or self.n_processes
        self.cache_enabled = config.cache
        self.default_deadline_s = config.default_deadline_s
        self.skyline_cache = SkylineCache(
            max_entries=config.skyline_cache_entries
        )
        self.topk_cache = TopKCache()
        self.tracer = Tracer(
            sample_rate=config.trace_sample_rate,
            slow_threshold_s=config.trace_slow_s,
            seed=config.trace_seed,
            max_spans=config.trace_max_spans,
        )
        self.trace_store = TraceStore(capacity=config.trace_store_capacity)
        self._metrics = EngineMetrics(window=config.metrics_window)
        self._rw = ReadWriteLock()
        self._ns = f"skyup{os.getpid()}x{next(_ENGINE_SEQ)}"
        self._segment_serial = itertools.count()
        self._stream_ids = itertools.count(1)
        self._extern_counters: Dict[int, Counters] = (
            {}
        )  # guarded-by: _extern_lock
        self._extern_lock = threading.Lock()
        self._closed = False

        # Snapshot, partition, and publish the catalogs.
        cids, cpoints = session.competitors_by_id()
        buckets = partition_members(
            dict(zip(cids, cpoints)), self.n_shards
        )
        self._shard_members: List[Dict[int, Point]] = [  # guarded-by: _rw
            dict(zip(ids, points)) for ids, points in buckets
        ]
        self._shard_epochs: List[int] = [0] * self.n_shards  # guarded-by: _rw
        self._shard_blocks: List[SharedBlock] = []  # guarded-by: _rw
        for shard, (ids, points) in enumerate(buckets):
            block = SharedBlock.create(
                self._segment_name(),
                session.dims,
                padded_capacity(len(ids)),
            )
            block.publish(points, ids)
            self._shard_blocks.append(block)
        pids, ppoints = session.products_by_id()
        self._product_members: Dict[int, Point] = dict(  # guarded-by: _rw
            zip(pids, ppoints)
        )
        self._product_block = SharedBlock.create(  # guarded-by: _rw
            self._segment_name(),
            session.dims,
            padded_capacity(len(pids)),
        )
        self._product_block.publish(ppoints, pids)

        # Spawn the fleet; on any start failure release what exists.
        self._handles: List[ShardProcess] = []
        started = False
        try:
            for proc in range(self.n_processes):
                handle = ShardProcess(proc, self._spec_factory(proc))
                handle.start()
                self._handles.append(handle)
            started = True
        finally:
            if not started:
                for handle in self._handles:
                    handle.close()
                self._teardown_shared_state()

        self._rpc_timeout_s = config.shard_rpc_timeout_s
        self._resilience = ShardResilience(
            self._handles,
            breaker_threshold=config.breaker_threshold,
            breaker_cooldown_s=config.breaker_cooldown_s,
            hedge_delay_s=config.hedge_delay_s,
            health_interval_s=config.health_interval_s,
        )
        self._resilience.start()

        self._pool: Optional[WorkerPool] = None
        if config.workers > 0:
            self._pool = WorkerPool(
                self._handle_batch,
                workers=config.workers,
                queue_capacity=config.queue_capacity,
                batch_max=config.batch_max,
                on_batch_error=self._fail_batch,
            )
        session.add_mutation_listener(self._on_mutation)

    # -- topology / lifecycle --------------------------------------------------

    def _segment_name(self) -> str:
        return f"{self._ns}g{next(self._segment_serial)}"

    def _spec_factory(self, proc: int):
        """A zero-argument factory returning the proc's *current* spec.

        Called at initial start and again on every crash respawn, so the
        respawned worker always rebuilds from the live segment specs.
        """

        def factory() -> ShardSpec:
            shards = shards_of_process(
                proc, self.n_shards, self.n_processes
            )
            # Benign race: the respawn supervisor reads the *current*
            # specs without the catalog lock.  A read torn against a
            # concurrent republish is reconciled by the idempotent
            # incremental op / reload the mutator sends afterwards.
            return ShardSpec(
                proc=proc,
                shards=tuple(shards),
                competitor_specs={
                    # skyup: ignore[SKY101]
                    s: self._shard_blocks[s].spec for s in shards
                },
                product_spec=self._product_block.spec,  # skyup: ignore[SKY101]
                dims=self.session.dims,
                cost_model=self.session.cost_model,
                bound=self.session.bound,
                lbc_mode="corrected",
                vector_jl_from=8,
                config=self.session.config,
                max_entries=self.session.competitor_index.max_entries,
                method=self.config.method,
            )

        return factory

    @property
    def epoch_vector(self) -> Tuple[int, ...]:  # holds-lock: _rw[read]
        """``(e_0, …, e_{S-1}, product_epoch)`` — the cache epoch."""
        return (*self._shard_epochs, self.session.product_epoch)

    def close(self, timeout: float = 5.0) -> int:
        """Stop pool, workers, and shared memory (idempotent)."""
        if self._closed:
            return 0
        self._closed = True
        stuck = 0
        if self._pool is not None:
            stuck = self._pool.close(timeout=timeout)
        self._resilience.stop()
        self.session.remove_mutation_listener(self._on_mutation)
        for handle in self._handles:
            handle.close(timeout_s=timeout)
        self._teardown_shared_state()
        return stuck

    def _teardown_shared_state(self) -> None:
        # Lock-free on purpose: runs after the pool and every worker are
        # stopped, so no mutator or reader can be concurrent with it.
        # skyup: ignore[SKY101]
        for block in self._shard_blocks:
            block.close()
            block.unlink()
        self._product_block.close()  # skyup: ignore[SKY101]
        self._product_block.unlink()  # skyup: ignore[SKY101]

    def __enter__(self) -> "ShardedUpgradeEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- catalog mutation (exclusive) -----------------------------------------

    def add_competitor(self, point: Sequence[float]) -> int:
        """Insert a competitor; republishes only its owning shard."""
        with self._rw.write_locked():
            return self.session.add_competitor(point)

    def remove_competitor(self, competitor_id: int) -> bool:
        """Remove a competitor; republishes only its owning shard."""
        with self._rw.write_locked():
            return self.session.remove_competitor(competitor_id)

    def add_product(self, point: Sequence[float]) -> int:
        """Add a catalog product (broadcast to every worker)."""
        with self._rw.write_locked():
            return self.session.add_product(point)

    def remove_product(self, product_id: int) -> bool:
        """Remove a catalog product (broadcast to every worker)."""
        with self._rw.write_locked():
            return self.session.remove_product(product_id)

    def commit_upgrade(self, result: UpgradeResult) -> None:
        """Commit an upgrade (product point replacement, broadcast)."""
        with self._rw.write_locked():
            self.session.commit_upgrade(result)

    # holds-lock: _rw[write]
    def _on_mutation(self, event: MutationEvent) -> None:
        """Precise invalidation + shard synchronization.

        Runs inside the mutating caller's write lock.  Cache rules are
        identical to the thread tier's; shard sync then (1) rewrites the
        owning shard's shared segment in place (eager republish, so a
        respawn at any moment rebuilds consistent state), (2) bumps that
        shard's epoch, and (3) sends an idempotent incremental index op
        to the live worker — the worker's tree *structure* now differs
        from a bulk load, but skylines and streams are data-determined,
        so answers are unaffected.
        """
        if event.side == "competitor":
            self.skyline_cache.invalidate_point(event.point)
            try:
                overlaps = self.session.any_product_in_dominance_region(
                    event.point
                )
            except TransientError:
                self._metrics.record_cache_fault()
                overlaps = True
            if overlaps:
                self.topk_cache.invalidate()
        else:
            self.topk_cache.invalidate()

        if event.side == "competitor":
            shard = shard_of(event.record_id, self.n_shards)
            members = self._shard_members[shard]
            if event.action == "add":
                old, new = None, event.point
                members[event.record_id] = event.point
            else:
                old, new = event.point, None
                members.pop(event.record_id, None)
            reloaded = self._republish_shard(shard)
            self._shard_epochs[shard] += 1
            if not reloaded:
                owner = self._handles[
                    process_of(shard, self.n_processes)
                ]
                self._send_sync(
                    owner,
                    "mutate",
                    "competitor_set",
                    (shard, event.record_id, old, new),
                )
        else:
            if event.action == "add":
                old, new = None, event.point
            elif event.action == "remove":
                old, new = event.point, None
            else:  # upgrade: point replacement
                old, new = event.old_point, event.point
            if new is None:
                self._product_members.pop(event.record_id, None)
            else:
                self._product_members[event.record_id] = new
            reloaded = self._republish_product()
            if not reloaded:
                for handle in self._handles:
                    self._send_sync(
                        handle,
                        "mutate",
                        "product_set",
                        (event.record_id, old, new),
                    )

    # holds-lock: _rw[write]
    def _republish_shard(self, shard: int) -> bool:
        """Rewrite the shard's segment; True if it had to grow (reload).

        The in-place rewrite is memcpy-scale and requires no worker
        action — the worker only reads segments while (re)building, and
        its live R-tree is maintained incrementally.  Growth past
        capacity allocates a fresh segment pair under a new name and
        tells the owner to re-attach and rebuild.
        """
        members = self._shard_members[shard]
        ids = sorted(members)
        points = [members[i] for i in ids]
        block = self._shard_blocks[shard]
        if len(ids) <= block.spec.capacity:
            block.publish(points, ids)
            return False
        grown = SharedBlock.create(
            self._segment_name(),
            self.session.dims,
            padded_capacity(len(ids)),
        )
        spec = grown.publish(points, ids)
        self._shard_blocks[shard] = grown
        owner = self._handles[process_of(shard, self.n_processes)]
        self._send_sync(owner, "reload", shard, spec)
        block.close()
        block.unlink()
        return True

    # holds-lock: _rw[write]
    def _republish_product(self) -> bool:
        """Rewrite the product segment; True if it grew (broadcast reload)."""
        ids = sorted(self._product_members)
        points = [self._product_members[i] for i in ids]
        block = self._product_block
        if len(ids) <= block.spec.capacity:
            block.publish(points, ids)
            return False
        grown = SharedBlock.create(
            self._segment_name(),
            self.session.dims,
            padded_capacity(len(ids)),
        )
        spec = grown.publish(points, ids)
        self._product_block = grown
        for handle in self._handles:
            self._send_sync(handle, "reload", None, spec)
        block.close()
        block.unlink()
        return True

    # holds-lock: _rw[write]
    def _send_sync(
        self, handle: ShardProcess, op: str, *args: object
    ) -> None:
        """Synchronously apply one sync command to a worker.

        A :class:`WorkerCrashError` here is retried *through* the
        respawn: the rebuilt worker's segment read may have happened
        before this mutation's republish, in which case only the
        incremental op carries it — so unlike queries (which fail fast
        and degrade coverage), the sync sender waits out the respawn
        and re-delivers to the live worker.  The commands are
        idempotent set/remove/reload operations, so a duplicate
        delivery is harmless.  Only a worker that stays dead past the
        deadline is skipped: it has no live tree to drift, and a later
        successful respawn rebuilds from the segment, which already
        includes this mutation.
        """
        deadline = clock() + _MUTATE_TIMEOUT_S
        while True:
            remaining = deadline - clock()
            if remaining <= 0:
                return
            try:
                # Deliberate blocking-under-lock: catalog mutations are
                # exclusive by design, and the sync sender must wait out
                # a respawn *inside* the write lock so no query observes
                # a worker whose live tree is missing this mutation.
                # Bounded by _MUTATE_TIMEOUT_S, never indefinite.
                # skyup: ignore[SKY1004]
                handle.request(op, *args, timeout=remaining)
                return
            except EngineClosedError:
                return
            except WorkerCrashError:
                # skyup: ignore[SKY1004] — same bounded respawn wait
                if not handle.wait_ready(remaining):
                    return

    # -- query submission ------------------------------------------------------

    def query(self, query: Query) -> QueryResponse:
        """Execute one request synchronously on the calling thread."""
        return self.execute_batch([query])[0]

    # error-boundary: chaos drivers replay through typed failures
    def execute_batch(
        self, queries: Sequence[Query], raise_errors: bool = True
    ) -> List[QueryResponse]:
        """Execute a batch synchronously; responses in request order.

        Same contract as the thread tier: with ``raise_errors=False``
        failed slots hold the exception object (the chaos suite replays
        through typed :class:`WorkerCrashError` failures this way).
        """
        pendings = [self._admit(q) for q in queries]
        self._execute_batch(pendings, self._calling_thread_counters())
        if raise_errors:
            return [p.result(timeout=0) for p in pendings]
        out: List[QueryResponse] = []
        for p in pendings:
            try:
                out.append(p.result(timeout=0))
            except Exception as exc:
                out.append(exc)  # type: ignore[arg-type]
        return out

    def submit(self, query: Query) -> PendingQuery:
        """Enqueue one request on the thread pool (requires workers>0)."""
        return self.submit_batch([query])[0]

    def submit_batch(self, queries: Sequence[Query]) -> List[PendingQuery]:
        """Enqueue requests atomically on the thread pool."""
        if self._pool is None:
            raise ConfigurationError(
                "engine has no worker pool (workers=0); use query() / "
                "execute_batch()"
            )
        pendings = [self._admit(q) for q in queries]
        try:
            self._pool.submit_many(pendings)
        except (EngineClosedError, EngineOverloadedError):
            self._metrics.record_rejection()
            raise
        return pendings

    def _admit(self, query: Query) -> PendingQuery:
        if self._closed:
            raise EngineClosedError("engine is closed")
        if isinstance(query, TopKQuery):
            if query.k < 1:
                raise ConfigurationError(f"k must be >= 1, got {query.k}")
        elif not isinstance(query, ProductQuery):
            raise ConfigurationError(
                f"unsupported query type: {type(query).__name__}"
            )
        pending = PendingQuery(query, self.default_deadline_s)
        if self.tracer.enabled:
            if isinstance(query, TopKQuery):
                trace = self.tracer.start(
                    "topk", k=query.k, sharded=True
                )
            else:
                trace = self.tracer.start(
                    "product", product_id=query.product_id, sharded=True
                )
            if trace is not None:
                pending.trace = trace
                trace.span("engine.request").__enter__()
        return pending

    # -- execution -------------------------------------------------------------

    def _handle_batch(
        self, batch: List[PendingQuery], counters: Counters
    ) -> None:
        self._execute_batch(batch, counters)

    def _fail_batch(
        self, pendings: Sequence[PendingQuery], exc: BaseException
    ) -> None:
        self._metrics.record_worker_crash()
        wrapped = WorkerCrashError(f"batch execution crashed: {exc!r}")
        wrapped.__cause__ = exc
        for pending in pendings:
            if not pending.done():
                kind = (
                    "topk"
                    if isinstance(pending.query, TopKQuery)
                    else "product"
                )
                self._metrics.record_request(
                    kind, 0.0, 0.0, partial=False, error=True
                )
                pending._fail(wrapped)
            if pending.trace is not None:
                pending.trace.attrs.setdefault("error", type(exc).__name__)
                self._finish_trace(pending)

    # error-boundary: batch containment — no caller is left hanging
    def _execute_batch(
        self, pendings: List[PendingQuery], counters: Counters
    ) -> None:
        now = time.monotonic()
        worker = threading.current_thread().name
        for p in pendings:
            p.mark_picked_up(now)
            if p.trace is not None:
                p.trace.record(
                    "engine.queue_wait",
                    p.trace.spans[0].t0,
                    clock(),
                    queue_wait_s=round(p.queue_wait_s, 6),
                    worker=worker,
                )
        local = Counters()
        try:
            with self._rw.read_locked():
                epoch = self.epoch_vector
                topk_group: List[PendingQuery] = []
                for pending in pendings:
                    if isinstance(pending.query, TopKQuery):
                        topk_group.append(pending)
                    else:
                        self._serve_product(pending, local, epoch)
                if topk_group:
                    self._serve_topk_group(topk_group, local, epoch)
        except Exception as exc:
            self._fail_batch(pendings, exc)
        counters.merge(local)
        self._metrics.record_batch(len(pendings))

    # -- scatter helpers -------------------------------------------------------

    def _replay_fragments(
        self, trace: Optional[Trace], fragments: List[tuple]
    ) -> None:
        """Splice worker-side span fragments into the request's trace.

        Fragments are stamped with :data:`repro.obs.clock` in the worker
        — ``CLOCK_MONOTONIC`` is system-wide on Linux, so the timestamps
        are directly comparable with coordinator spans.
        """
        if trace is None:
            return
        for name, t0, t1, attrs in fragments:
            trace.record(name, t0, t1, **attrs)

    def _shards_of(self, handle: ShardProcess) -> List[int]:
        return shards_of_process(
            handle.index, self.n_shards, self.n_processes
        )

    def _mark_down(self, merge, handle: ShardProcess) -> None:
        for shard in self._shards_of(handle):
            merge.mark_down(shard)

    def _rpc_window(
        self, remaining: Optional[float]
    ) -> Tuple[Optional[float], bool]:
        """The wait bound for one scatter round.

        Returns ``(timeout_s, deadline_bounded)``: when the request's
        remaining deadline is the binding constraint, a timeout is the
        *request's* fault — the shard's breaker must not be charged.
        """
        rpc = self._rpc_timeout_s
        if remaining is None:
            return rpc, False
        if rpc is None or remaining <= rpc:
            return remaining, True
        return rpc, False

    def _scatter(
        self,
        handles: List[ShardProcess],
        op: str,
        make_args,
        remaining: Optional[float],
        trace: Optional[Trace],
    ):
        """Hedged, breaker-feeding scatter of one command to ``handles``."""
        timeout_s, bounded = self._rpc_window(remaining)
        return scatter(
            [(h, op, make_args(h)) for h in handles],
            timeout_s=timeout_s,
            deadline_bounded=bounded,
            resilience=self._resilience,
            trace=trace,
        )

    def _scatter_skylines(
        self,
        points: List[Point],
        trace: Optional[Trace],
        remaining: Optional[float],
    ) -> Tuple[List[List[Point]], List[float], List[ShardProcess]]:
        """Batched skyline scatter over the breaker-admitted processes.

        Returns one merged skyline per query point, the per-point
        coverage fraction (shards contributing / total — breaker-open
        processes, failed replies, and deadline-dropped trailing points
        all reduce it), and the handles that failed for *shard-side*
        reasons (crash, RPC-bound timeout; callers mark their shards
        down).  Deadline-bounded timeouts reduce coverage but are not
        reported as failures.
        """
        res = self._resilience
        live = [h for h in self._handles if res.allow(h.index)]
        failed = [h for h in self._handles if not res.allow(h.index)]
        if failed:
            res.note_skip(len(failed))
        traced = trace is not None
        outcomes = self._scatter(
            live,
            "skylines",
            lambda h: (points, traced, remaining),
            remaining,
            trace,
        )
        contributions: List[List[List[Point]]] = [[] for _ in points]
        covered = [0] * len(points)
        for handle in live:
            outcome = outcomes[handle.index]
            if outcome.error is not None:
                if not outcome.deadline_bounded:
                    failed.append(handle)
                continue
            self._replay_fragments(trace, outcome.fragments)
            skylines, truncated = outcome.payload
            if truncated:
                res.note_deadline_truncation()
            n_shards = len(self._shards_of(handle))
            for j, sky in enumerate(skylines):
                contributions[j].append(sky)
                covered[j] += n_shards
        merged = [
            merge_skylines(parts) if parts else []
            for parts in contributions
        ]
        coverage = [c / self.n_shards for c in covered]
        return merged, coverage, failed

    def _cost_sightings(
        self,
        record_ids: List[int],
        stats: Counters,
        epoch: Tuple[int, ...],
        trace: Optional[Trace],
        remaining: Optional[float],
        merge,
    ) -> Tuple[float, List[ShardProcess]]:
        """Settle every new sighting's exact cost into the merge.

        Every id ends up either costed (:meth:`ThresholdMerge.
        add_candidate`) or released (:meth:`~ThresholdMerge.abandon` —
        racing removal, or zero skyline coverage), so the merge is
        always drainable afterwards.  Returns the minimum skyline
        coverage used (``< 1.0`` means some cost is a reduced-market
        lower bound — the response must be labeled degraded) and the
        shard-side failed handles.
        """
        session = self.session
        min_cov = 1.0
        misses: List[Tuple[int, Point]] = []
        for rid in record_ids:
            point = session.product_point(rid)
            if point is None:
                merge.abandon(rid)  # racing removal: nothing to cost
                continue
            entry = (
                self.skyline_cache.get(point)
                if self.cache_enabled
                else None
            )
            if entry is not None:
                cached = entry.result
                merge.add_candidate(
                    UpgradeResult(
                        rid, point, cached.upgraded, cached.cost
                    )
                )
            else:
                misses.append((rid, point))
        failed: List[ShardProcess] = []
        if misses:
            merged, coverage, failed = self._scatter_skylines(
                [p for _, p in misses], trace, remaining
            )
            for (rid, point), skyline, cov in zip(
                misses, merged, coverage
            ):
                if cov <= 0.0:
                    merge.abandon(rid)  # no shard answered: unknowable
                    min_cov = 0.0
                    continue
                cost, upgraded = upgrade(
                    skyline,
                    point,
                    session.cost_model,
                    session.config,
                    stats,
                )
                result = UpgradeResult(rid, point, upgraded, cost)
                # Only full-coverage skylines may enter the cache: a
                # reduced-market cost must never masquerade as exact.
                if self.cache_enabled and cov >= 1.0:
                    self.skyline_cache.put(point, skyline, result, epoch)
                merge.add_candidate(result)
                min_cov = min(min_cov, cov)
        return min_cov, failed

    @staticmethod
    def _remaining(pendings: List[PendingQuery]) -> Optional[float]:
        """Longest remaining deadline budget (None = no deadline)."""
        deadlines = [p.abs_deadline for p in pendings]
        if any(d is None for d in deadlines):
            return None
        return max(0.001, max(deadlines) - time.monotonic())

    # -- product queries -------------------------------------------------------

    # error-boundary: per-request containment — fail, never hang
    def _serve_product(
        self,
        pending: PendingQuery,
        stats: Counters,
        epoch: Tuple[int, ...],
    ) -> None:
        try:
            with activate(pending.trace):
                with span("engine.execute", kind="product"):
                    try:
                        self._serve_product_once(pending, stats, epoch)
                    except Exception as exc:
                        self._metrics.record_request(
                            "product", 0.0, 0.0, partial=False, error=True
                        )
                        pending._fail(exc)
        finally:
            self._finish_trace(pending)

    def _serve_product_once(
        self,
        pending: PendingQuery,
        stats: Counters,
        epoch: Tuple[int, ...],
    ) -> None:
        query = pending.query
        point = self.session.product_point(query.product_id)
        if point is None:
            raise ConfigurationError(
                f"unknown product id {query.product_id}"
            )
        if (
            pending.abs_deadline is not None
            and time.monotonic() >= pending.abs_deadline
        ):
            self._respond(pending, [], partial=True, cache_hit=False,
                          epoch=epoch, kind="product", coverage=0.0)
            return
        entry = (
            self.skyline_cache.get(point) if self.cache_enabled else None
        )
        if entry is not None:
            cached = entry.result
            result = UpgradeResult(
                query.product_id, point, cached.upgraded, cached.cost
            )
            self._respond(pending, [result], partial=False,
                          cache_hit=True, epoch=epoch, kind="product")
            return
        remaining = self._remaining([pending])
        merged, point_cov, _failed = self._scatter_skylines(
            [point], pending.trace, remaining
        )
        coverage = point_cov[0]
        if coverage <= 0.0:
            # No shard answered at all: there is nothing safe to say
            # about this product's cost.
            self._respond(pending, [], partial=True, cache_hit=False,
                          epoch=epoch, kind="product", coverage=0.0)
            return
        skyline = merged[0]
        cost, upgraded = upgrade(
            skyline,
            point,
            self.session.cost_model,
            self.session.config,
            stats,
        )
        result = UpgradeResult(query.product_id, point, upgraded, cost)
        if self.cache_enabled and coverage >= 1.0:
            self.skyline_cache.put(point, skyline, result, epoch)
        self._respond(pending, [result], partial=coverage < 1.0,
                      cache_hit=False, epoch=epoch, kind="product",
                      coverage=coverage)

    # -- top-k queries ---------------------------------------------------------

    # error-boundary: per-request containment — fail, never hang
    def _serve_topk_group(
        self,
        group: List[PendingQuery],
        stats: Counters,
        epoch: Tuple[int, ...],
    ) -> None:
        traced = [p for p in group if p.trace is not None]
        primary = traced[0] if traced else None
        start = clock()
        try:
            with activate(primary.trace if primary else None):
                with span(
                    "engine.execute", kind="topk", group_size=len(group)
                ):
                    try:
                        self._serve_topk_group_once(
                            group, stats, epoch, primary
                        )
                    except Exception as exc:
                        for pending in group:
                            if not pending.done():
                                self._metrics.record_request(
                                    "topk", 0.0, 0.0,
                                    partial=False, error=True,
                                )
                                pending._fail(exc)
        finally:
            end = clock()
            for p in traced:
                if p is not primary and p.trace is not None:
                    p.trace.record(
                        "engine.execute",
                        start,
                        end,
                        kind="topk",
                        group_size=len(group),
                        shared_with_trace=primary.trace.trace_id
                        if primary.trace is not None
                        else None,
                    )
                self._finish_trace(p)

    def _serve_topk_group_once(
        self,
        group: List[PendingQuery],
        stats: Counters,
        epoch: Tuple[int, ...],
        primary: Optional[PendingQuery],
    ) -> None:
        """One scatter-gather merge run serves the whole group.

        Degradation paths all land in one of two labeled responses:

        * *deadline sweep* — an out-of-time request gets the
          bound-proven prefix emitted so far (an exact prefix of the
          canonical order while coverage is full);
        * *final respond* — when shards went down (breaker-open, crash,
          RPC-bound timeout) the merge completes from the live shards
          and the response carries ``coverage < 1``.

        A response is ``partial`` iff its coverage is below 1 or some
        exact cost had to be computed over a partial skyline
        (``degraded``); only clean full-coverage runs populate the
        top-k cache.
        """
        from repro.shard.merge import ThresholdMerge

        res = self._resilience
        k_max = max(p.query.k for p in group)
        cached = (
            self.topk_cache.get(k_max) if self.cache_enabled else None
        )
        if cached is not None:
            prefix, _exhausted = cached
            for pending in group:
                self._respond(
                    pending,
                    prefix[: pending.query.k],
                    partial=False,
                    cache_hit=True,
                    epoch=epoch,
                    kind="topk",
                )
            return

        trace = primary.trace if primary is not None else None
        method = (
            "probing" if self.config.method == "probing" else "join"
        )
        stream_id = next(self._stream_ids)
        merge = ThresholdMerge(self.n_shards, k_max)
        degraded = False  # some exact cost used a partial skyline
        live: List[ShardProcess] = []
        for handle in self._handles:
            if res.allow(handle.index):
                live.append(handle)
            else:
                self._mark_down(merge, handle)
        skipped = len(self._handles) - len(live)
        if skipped:
            res.note_skip(skipped)
            if trace is not None:
                trace.attrs["breaker_skips"] = skipped
        opened: List[ShardProcess] = []
        if live:
            outcomes = self._scatter(
                live,
                "topk_open",
                lambda h: (stream_id, method),
                self._remaining(group),
                trace,
            )
            for handle in live:
                if outcomes[handle.index].error is None:
                    opened.append(handle)
                else:
                    # Stream never opened: the shards contribute
                    # nothing regardless of whose fault the failure is.
                    self._mark_down(merge, handle)
        seqs = {handle.index: 0 for handle in opened}
        streaming = list(opened)
        active = list(group)
        batch = max(_STREAM_BATCH, k_max)
        try:
            while active:
                now = time.monotonic()
                alive: List[PendingQuery] = []
                for pending in active:
                    if (
                        pending.abs_deadline is not None
                        and now >= pending.abs_deadline
                    ):
                        self._respond(
                            pending,
                            merge.emitted[: pending.query.k],
                            partial=True,
                            cache_hit=False,
                            epoch=epoch,
                            kind="topk",
                            coverage=merge.coverage,
                        )
                    else:
                        alive.append(pending)
                active = alive
                if not active:
                    break
                if merge.done or len(merge.emitted) >= max(
                    p.query.k for p in active
                ):
                    break
                ask = [
                    h
                    for h in streaming
                    if any(
                        not merge.exhausted[s] and not merge.down[s]
                        for s in self._shards_of(h)
                    )
                ]
                if not ask:
                    break  # no live progress possible: finalize degraded
                remaining = self._remaining(active)
                outcomes = self._scatter(
                    ask,
                    "topk_next",
                    lambda h: (
                        stream_id,
                        seqs[h.index],
                        batch,
                        trace is not None,
                        remaining,
                    ),
                    remaining,
                    trace,
                )
                new_ids: List[int] = []
                for handle in ask:
                    outcome = outcomes[handle.index]
                    if outcome.error is not None:
                        if not outcome.deadline_bounded:
                            # Shard-side failure: finish without it.
                            # (Deadline-bounded timeouts retire the
                            # requests at the next sweep instead.)
                            streaming.remove(handle)
                            self._mark_down(merge, handle)
                        continue
                    seqs[handle.index] += 1
                    self._replay_fragments(trace, outcome.fragments)
                    rows_reply, was_truncated = outcome.payload
                    if was_truncated:
                        res.note_deadline_truncation()
                    for shard, rows, frontier, exh in rows_reply:
                        new_ids.extend(
                            merge.observe(shard, rows, frontier, exh)
                        )
                if new_ids:
                    min_cov, failed = self._cost_sightings(
                        sorted(new_ids),
                        stats,
                        epoch,
                        trace,
                        self._remaining(active),
                        merge,
                    )
                    if min_cov < 1.0:
                        degraded = True
                    for handle in failed:
                        if handle in streaming:
                            streaming.remove(handle)
                        self._mark_down(merge, handle)
                merge.drain()
                waiting: List[PendingQuery] = []
                for pending in active:
                    if (
                        len(merge.emitted) >= pending.query.k
                        or merge.done
                    ):
                        self._respond_topk_final(
                            pending, merge, degraded, epoch
                        )
                    else:
                        waiting.append(pending)
                active = waiting
            for pending in active:
                self._respond_topk_final(pending, merge, degraded, epoch)
        finally:
            for handle in opened:
                try:
                    handle.submit("topk_close", stream_id)
                except (EngineClosedError, WorkerCrashError):
                    pass
        exhausted = merge.all_exhausted and len(merge.emitted) < k_max
        if (
            self.cache_enabled
            and merge.coverage >= 1.0
            and not degraded
            and (merge.emitted or exhausted)
        ):
            self.topk_cache.put(list(merge.emitted), exhausted, epoch)

    def _respond_topk_final(
        self,
        pending: PendingQuery,
        merge,
        degraded: bool,
        epoch: Tuple[int, ...],
    ) -> None:
        coverage = merge.coverage
        self._respond(
            pending,
            merge.emitted[: pending.query.k],
            partial=coverage < 1.0 or degraded,
            cache_hit=False,
            epoch=epoch,
            kind="topk",
            coverage=coverage,
        )

    # -- responses / observability ---------------------------------------------

    def _respond(
        self,
        pending: PendingQuery,
        results: List[UpgradeResult],
        partial: bool,
        cache_hit: bool,
        epoch: Tuple[int, ...],
        kind: str,
        coverage: float = 1.0,
    ) -> None:
        now = time.monotonic()
        response = QueryResponse(
            results=list(results),
            partial=partial,
            cache_hit=cache_hit,
            epoch=epoch,
            queue_wait_s=pending.queue_wait_s,
            elapsed_s=now - pending.enqueued_at,
            coverage=coverage,
        )
        self._metrics.record_request(
            kind,
            response.elapsed_s,
            response.queue_wait_s,
            partial=partial,
            coverage=coverage,
        )
        if pending.trace is not None:
            pending.trace.attrs.update(
                cache_hit=cache_hit,
                partial=partial,
                results=len(results),
                coverage=round(coverage, 4),
                queue_wait_s=round(response.queue_wait_s, 6),
                elapsed_s=round(response.elapsed_s, 6),
            )
        pending._resolve(response)

    def _finish_trace(self, pending: PendingQuery) -> None:
        trace = pending.trace
        if trace is None:
            return
        pending.trace = None
        if pending._exception is not None:
            trace.attrs.setdefault(
                "error", type(pending._exception).__name__
            )
        trace.spans[0].close()
        keep, _ = self.tracer.finish(trace)
        if keep:
            self.trace_store.add(trace)

    def recent_traces(self, n: Optional[int] = None) -> List[Trace]:
        """The kept traces, oldest first (the last ``n`` when given)."""
        traces = self.trace_store.snapshot()
        if n is not None:
            traces = traces[-n:]
        return traces

    def _calling_thread_counters(self) -> Counters:
        ident = threading.get_ident()
        with self._extern_lock:
            counters = self._extern_counters.get(ident)
            if counters is None:
                counters = Counters()
                self._extern_counters[ident] = counters
            return counters

    def counters(self) -> Counters:
        """Coordinator-side work counters (merged across threads).

        Worker-process counters stay in their processes; the
        coordinator's share covers the exact-cost upgrades and merges.
        """
        total = Counters()
        if self._pool is not None:
            for c in self._pool.worker_counters:
                total.merge(c)
        with self._extern_lock:
            for c in self._extern_counters.values():
                total.merge(c)
        return total

    def shard_stats(self) -> Dict[str, object]:
        """Topology + per-process health (queue depth, crash counts)."""
        with self._rw.read_locked():
            epochs = list(self.epoch_vector)
        return {
            "n_shards": self.n_shards,
            "n_processes": self.n_processes,
            "epoch_vector": epochs,
            "per_process": [
                {
                    "proc": handle.index,
                    "shards": shards_of_process(
                        handle.index, self.n_shards, self.n_processes
                    ),
                    "queue_depth": handle.queue_depth,
                    "crashes": handle.crashes,
                    "respawns": handle.respawns,
                    "alive": handle.alive,
                    "health": round(
                        self._resilience.health(handle.index), 4
                    ),
                    "breaker": self._resilience.breakers[
                        handle.index
                    ].state,
                }
                for handle in self._handles
            ],
        }

    def metrics(self) -> Dict[str, object]:
        """One JSON-serializable snapshot of engine health."""
        return self._metrics.snapshot(
            counters=self.counters(),
            extra={
                "epoch": list(self.session.epoch),
                "config": self.config.describe(),
                "tracing": {
                    **self.tracer.stats(),
                    "store": self.trace_store.stats(),
                },
                "queue_depth": (
                    self._pool.queue_depth if self._pool is not None else 0
                ),
                "shards": self.shard_stats(),
                "shard_health": self._resilience.snapshot(
                    lambda proc: shards_of_process(
                        proc, self.n_shards, self.n_processes
                    )
                ),
                "reliability": {
                    "worker_crashes": sum(
                        h.crashes for h in self._handles
                    ),
                    "worker_respawns": sum(
                        h.respawns for h in self._handles
                    ),
                    "pool_crashes": (
                        self._pool.crash_count
                        if self._pool is not None
                        else 0
                    ),
                },
                "cache_enabled": self.cache_enabled,
                "skyline_cache": {
                    **self.skyline_cache.stats.as_dict(),
                    "hit_rate": self.skyline_cache.stats.hit_rate,
                    "size": len(self.skyline_cache),
                    "capacity": self.skyline_cache.max_entries,
                },
                "topk_cache": {
                    **self.topk_cache.stats.as_dict(),
                    "hit_rate": self.topk_cache.stats.hit_rate,
                    "prefix_length": self.topk_cache.prefix_length,
                },
            },
        )

    def __repr__(self) -> str:
        return (
            f"ShardedUpgradeEngine(session={self.session!r}, "
            f"processes={self.n_processes}, shards={self.n_shards})"
        )
