"""Coordinator-side worker handles: supervision, respawn, request plumbing.

A :class:`ShardProcess` wraps one spawned worker (one
:func:`~repro.shard.worker.shard_worker_main`) behind a synchronous
request API.  Three threads cooperate per handle:

* the *caller* submits ``(op, req_id, ...)`` commands and blocks on a
  :class:`PendingReply` event;
* the *receiver* drains the response queue and resolves pending replies
  (polling with a short timeout plus a generation flag, so it can be
  retired when a crashed process's queues are replaced);
* the *monitor* joins the process and, on unexpected death, fails every
  in-flight reply with :class:`WorkerCrashError`, then respawns with
  **new** queues — a killed writer can leave a queue's pipe in a
  corrupt intermediate state, so queues are never reused across
  generations.  Responses whose request id is no longer pending are
  dropped (see :meth:`ShardProcess.forget`).

The respawn happens *outside* the handle lock: while it is in flight,
new submits fail fast with :class:`WorkerCrashError` instead of
blocking behind the (potentially seconds-long) interpreter start — the
resilience layer turns that into a degraded-coverage answer and the
breaker/half-open machinery re-admits the process once it is back.

Transport chaos points (``shard.transport.delay`` / ``.drop`` /
``.dup``) fire here, coordinator-side, so the process-local
:class:`~repro.reliability.faults.FaultInjector` can exercise hedging
and breakers deterministically: a dropped command is simply never
enqueued (its reply only resolves via hedge or timeout), a duplicated
command is enqueued twice (the worker's idempotent command handling
must dedupe).

Crash containment is the contract the chaos suite checks: a killed
worker never hangs a request (in-flight ones fail typed, the respawned
process serves the next) and never unlinks the coordinator's shared
segments (see :func:`repro.shard.spawn.attach_segment`).
"""

from __future__ import annotations

import itertools
import threading
import time
from queue import Empty
from typing import Callable, Dict, List, Optional

from repro.exceptions import (
    EngineClosedError,
    ShardCommandError,
    WorkerCrashError,
)
from repro.reliability.faults import maybe_corrupt, maybe_inject
from repro.shard.spawn import make_process, make_queue
from repro.shard.worker import ShardSpec, shard_worker_main

#: How long a retired receiver may keep polling a dead queue between
#: generation checks.
_POLL_S = 0.2


def _swallow(value: object) -> bool:
    """``shard.transport.drop`` mutator: the command is never sent."""
    return False


def _duplicate(value: object) -> bool:
    """``shard.transport.dup`` mutator: the command is sent twice."""
    return True


class PendingReply:
    """One in-flight command's future result."""

    __slots__ = ("req_id", "_event", "payload", "fragments", "error",
                 "_waiters")

    def __init__(self, req_id: int = -1) -> None:
        self.req_id = req_id
        self._event = threading.Event()
        self.payload: object = None
        self.fragments: List[tuple] = []
        self.error: Optional[BaseException] = None
        self._waiters: List[threading.Event] = []

    def attach_waiter(self, event: threading.Event) -> None:
        """Also set ``event`` when this reply settles (for fan-in waits)."""
        self._waiters.append(event)
        if self._event.is_set():
            event.set()

    def _settle(self) -> None:
        self._event.set()
        for event in self._waiters:
            event.set()

    def _resolve(self, payload: object, fragments: List[tuple]) -> None:
        self.payload = payload
        self.fragments = fragments
        self._settle()

    def _fail(self, exc: BaseException) -> None:
        self.error = exc
        self._settle()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> object:
        """Wait for the reply; raises the failure or ``TimeoutError``."""
        if not self._event.wait(timeout):
            raise TimeoutError("shard worker reply timed out")
        if self.error is not None:
            raise self.error
        return self.payload


class ShardProcess:
    """One supervised shard worker process.

    Args:
        index: the worker's process index (its shard set derives from
            it via :func:`repro.shard.partition.shards_of_process`).
        spec_factory: returns a **current** :class:`ShardSpec` for this
            process — called at initial start and again on every
            respawn, so a respawned worker rebuilds from the live
            segment specs (the coordinator republishes segments eagerly
            on mutation precisely to keep this true).
        start_timeout_s: ready-handshake deadline per (re)spawn.
    """

    def __init__(
        self,
        index: int,
        spec_factory: Callable[[], ShardSpec],
        start_timeout_s: float = 60.0,
    ):
        self.index = index
        self._spec_factory = spec_factory
        self._start_timeout_s = start_timeout_s
        self._lock = threading.Lock()
        self._req_ids = itertools.count()  # guarded-by: _lock
        self._pending: Dict[int, PendingReply] = {}  # guarded-by: _lock
        self._generation = 0  # guarded-by: _lock
        self._closing = False  # guarded-by: _lock
        self._respawning = False  # guarded-by: _lock
        self._dead: Optional[str] = None  # guarded-by: _lock
        self._proc = None  # guarded-by: _lock
        self._cmd_q = None  # guarded-by: _lock
        self._resp_q = None  # guarded-by: _lock
        self.crashes = 0
        self.respawns = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker and wait for its ready handshake."""
        self._spawn()

    def _spawn(self) -> None:
        # The expensive part (interpreter start + ready handshake) runs
        # without the handle lock so concurrent submits fail fast
        # instead of queueing behind a multi-second spawn.
        spec = self._spec_factory()
        cmd_q = make_queue()
        resp_q = make_queue()
        proc = make_process(
            shard_worker_main,
            (spec, cmd_q, resp_q),
            name=f"skyup-shard-{self.index}",
        )
        proc.start()
        try:
            item = resp_q.get(timeout=self._start_timeout_s)
        except Empty:
            proc.terminate()
            raise WorkerCrashError(
                f"shard worker {self.index} did not become ready within "
                f"{self._start_timeout_s}s"
            ) from None
        if item[0] == "error":
            raise WorkerCrashError(
                f"shard worker {self.index} failed to start: {item[2]}"
            )
        with self._lock:
            if self._closing:
                proc.terminate()
                return
            self._proc = proc
            self._cmd_q = cmd_q
            self._resp_q = resp_q
            self._generation += 1
            generation = self._generation
        receiver = threading.Thread(
            target=self._receive_loop,
            args=(resp_q, generation),
            name=f"skyup-shard-recv-{self.index}",
            daemon=True,
        )
        monitor = threading.Thread(
            target=self._monitor_loop,
            args=(proc, generation),
            name=f"skyup-shard-mon-{self.index}",
            daemon=True,
        )
        receiver.start()
        monitor.start()

    def close(self, timeout_s: float = 5.0) -> None:
        """Shut the worker down (idempotent; never raises on teardown)."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            proc, cmd_q = self._proc, self._cmd_q
            if cmd_q is not None and self._dead is None:
                cmd_q.put(("shutdown", next(self._req_ids)))
        if proc is not None:
            proc.join(timeout_s)
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)

    def kill(self) -> None:
        """Hard-kill the worker process (chaos-test hook)."""
        with self._lock:
            proc = self._proc
        if proc is not None:
            proc.kill()

    # -- request plumbing -----------------------------------------------------

    def submit(self, op: str, *args: object) -> PendingReply:
        """Enqueue one command; returns its :class:`PendingReply`.

        Raises typed errors instead of blocking when the worker is
        closed, dead, or mid-respawn — callers (the resilience scatter)
        treat those as per-process failures and degrade coverage.
        """
        # Transport chaos fires before the lock: a latency fault must
        # not stall the receiver/monitor threads.
        maybe_inject("shard.transport.delay")
        deliver = maybe_corrupt("shard.transport.drop", True, _swallow)
        duplicate = maybe_corrupt("shard.transport.dup", False, _duplicate)
        with self._lock:
            if self._closing:
                raise EngineClosedError(
                    f"shard worker {self.index} is closed"
                )
            if self._dead is not None:
                raise WorkerCrashError(
                    f"shard worker {self.index} is dead: {self._dead}"
                )
            if self._respawning:
                raise WorkerCrashError(
                    f"shard worker {self.index} is respawning"
                )
            req_id = next(self._req_ids)
            pending = PendingReply(req_id)
            self._pending[req_id] = pending
            if deliver:
                self._cmd_q.put((op, req_id, *args))
                if duplicate:
                    self._cmd_q.put((op, req_id, *args))
        return pending

    def request(
        self, op: str, *args: object, timeout: Optional[float] = None
    ) -> object:
        """Submit and wait: the synchronous convenience path."""
        return self.submit(op, *args).result(timeout)

    def forget(self, reply: PendingReply) -> None:
        """Abandon an in-flight reply.

        The pending slot is released so a reply that never comes (a
        dropped command, a timed-out straggler) cannot leak it; if the
        response does arrive later the receiver drops it by request id.
        """
        with self._lock:
            if self._pending.get(reply.req_id) is reply:
                del self._pending[reply.req_id]

    def wait_ready(self, timeout_s: float) -> bool:
        """Block until submits would be accepted again (respawn done).

        Returns False when the handle is closing, permanently dead, or
        the deadline passes first.  The mutation-sync path needs this:
        an incremental sync op dropped during a respawn window could
        miss the rebuilt worker (whose segment read may predate the
        mutation's republish), so the sender waits out the respawn and
        re-delivers to the live worker instead of failing fast the way
        queries do.
        """
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if self._closing or self._dead is not None:
                    return False
                if (
                    not self._respawning
                    and self._proc is not None
                    and self._proc.is_alive()
                ):
                    return True
            time.sleep(0.01)
        return False

    @property
    def queue_depth(self) -> int:
        """Commands submitted but not yet answered."""
        with self._lock:
            return len(self._pending)

    @property
    def alive(self) -> bool:
        with self._lock:
            return (
                self._dead is None
                and not self._closing
                and not self._respawning
                and self._proc is not None
                and self._proc.is_alive()
            )

    # -- background threads ---------------------------------------------------

    def _receive_loop(self, resp_q, generation: int) -> None:
        while True:
            with self._lock:
                if self._closing or self._generation != generation:
                    return
            try:
                item = resp_q.get(timeout=_POLL_S)
            except Empty:
                continue
            except (OSError, ValueError):
                # The queue was closed under us (teardown race).
                return
            status, req_id = item[0], item[1]
            with self._lock:
                pending = self._pending.pop(req_id, None)
            if pending is None:
                continue  # stale, duplicated, or forgotten: drop
            if status == "ok":
                pending._resolve(item[2], item[3])
            else:
                pending._fail(
                    ShardCommandError(
                        f"shard worker {self.index}: {item[2]}"
                    )
                )

    # A failed respawn must mark the handle dead so future submits fail
    # fast instead of hanging on a missing worker.
    # error-boundary: respawn failure becomes a dead handle, not a hang
    def _monitor_loop(self, proc, generation: int) -> None:
        proc.join()
        with self._lock:
            if self._closing or self._generation != generation:
                return
            self.crashes += 1
            self._respawning = True
            reason = (
                f"shard worker {self.index} died "
                f"(exit code {proc.exitcode})"
            )
            failed = list(self._pending.values())
            self._pending.clear()
        for pending in failed:
            pending._fail(WorkerCrashError(reason))
        try:
            self._spawn()
            with self._lock:
                self.respawns += 1
        except Exception as exc:
            with self._lock:
                self._dead = str(exc)
        finally:
            with self._lock:
                self._respawning = False
