"""Coordinator-side worker handles: supervision, respawn, request plumbing.

A :class:`ShardProcess` wraps one spawned worker (one
:func:`~repro.shard.worker.shard_worker_main`) behind a synchronous
request API.  Three threads cooperate per handle:

* the *caller* submits ``(op, req_id, ...)`` commands and blocks on a
  :class:`PendingReply` event;
* the *receiver* drains the response queue and resolves pending replies
  (polling with a short timeout plus a generation flag, so it can be
  retired when a crashed process's queues are replaced);
* the *monitor* joins the process and, on unexpected death, fails every
  in-flight reply with :class:`WorkerCrashError`, then eagerly respawns
  with **new** queues — a killed writer can leave a queue's pipe in a
  corrupt intermediate state, so queues are never reused across
  generations.  Responses whose request id is no longer pending are
  dropped.

Crash containment is the contract the chaos suite checks: a killed
worker never hangs a request (in-flight ones fail typed, the respawned
process serves the next) and never unlinks the coordinator's shared
segments (see :func:`repro.shard.spawn.attach_segment`).
"""

from __future__ import annotations

import itertools
import threading
from queue import Empty
from typing import Callable, Dict, List, Optional

from repro.exceptions import (
    EngineClosedError,
    ShardCommandError,
    WorkerCrashError,
)
from repro.shard.spawn import make_process, make_queue
from repro.shard.worker import ShardSpec, shard_worker_main

#: How long a retired receiver may keep polling a dead queue between
#: generation checks.
_POLL_S = 0.2


class PendingReply:
    """One in-flight command's future result."""

    __slots__ = ("_event", "payload", "fragments", "error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.payload: object = None
        self.fragments: List[tuple] = []
        self.error: Optional[BaseException] = None

    def _resolve(self, payload: object, fragments: List[tuple]) -> None:
        self.payload = payload
        self.fragments = fragments
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self.error = exc
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> object:
        """Wait for the reply; raises the failure or ``TimeoutError``."""
        if not self._event.wait(timeout):
            raise TimeoutError("shard worker reply timed out")
        if self.error is not None:
            raise self.error
        return self.payload


class ShardProcess:
    """One supervised shard worker process.

    Args:
        index: the worker's process index (its shard set derives from
            it via :func:`repro.shard.partition.shards_of_process`).
        spec_factory: returns a **current** :class:`ShardSpec` for this
            process — called at initial start and again on every
            respawn, so a respawned worker rebuilds from the live
            segment specs (the coordinator republishes segments eagerly
            on mutation precisely to keep this true).
        start_timeout_s: ready-handshake deadline per (re)spawn.
    """

    def __init__(
        self,
        index: int,
        spec_factory: Callable[[], ShardSpec],
        start_timeout_s: float = 60.0,
    ):
        self.index = index
        self._spec_factory = spec_factory
        self._start_timeout_s = start_timeout_s
        self._lock = threading.Lock()
        self._req_ids = itertools.count()
        self._pending: Dict[int, PendingReply] = {}
        self._generation = 0
        self._closing = False
        self._dead: Optional[str] = None
        self._proc = None
        self._cmd_q = None
        self._resp_q = None
        self.crashes = 0
        self.respawns = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker and wait for its ready handshake."""
        with self._lock:
            self._spawn_locked()

    def _spawn_locked(self) -> None:
        spec = self._spec_factory()
        cmd_q = make_queue()
        resp_q = make_queue()
        proc = make_process(
            shard_worker_main,
            (spec, cmd_q, resp_q),
            name=f"skyup-shard-{self.index}",
        )
        proc.start()
        try:
            item = resp_q.get(timeout=self._start_timeout_s)
        except Empty:
            proc.terminate()
            raise WorkerCrashError(
                f"shard worker {self.index} did not become ready within "
                f"{self._start_timeout_s}s"
            ) from None
        if item[0] == "error":
            raise WorkerCrashError(
                f"shard worker {self.index} failed to start: {item[2]}"
            )
        self._proc = proc
        self._cmd_q = cmd_q
        self._resp_q = resp_q
        self._generation += 1
        generation = self._generation
        receiver = threading.Thread(
            target=self._receive_loop,
            args=(resp_q, generation),
            name=f"skyup-shard-recv-{self.index}",
            daemon=True,
        )
        monitor = threading.Thread(
            target=self._monitor_loop,
            args=(proc, generation),
            name=f"skyup-shard-mon-{self.index}",
            daemon=True,
        )
        receiver.start()
        monitor.start()

    def close(self, timeout_s: float = 5.0) -> None:
        """Shut the worker down (idempotent; never raises on teardown)."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            proc, cmd_q = self._proc, self._cmd_q
            if cmd_q is not None and self._dead is None:
                cmd_q.put(("shutdown", next(self._req_ids)))
        if proc is not None:
            proc.join(timeout_s)
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)

    def kill(self) -> None:
        """Hard-kill the worker process (chaos-test hook)."""
        with self._lock:
            proc = self._proc
        if proc is not None:
            proc.kill()

    # -- request plumbing -----------------------------------------------------

    def submit(self, op: str, *args: object) -> PendingReply:
        """Enqueue one command; returns its :class:`PendingReply`."""
        with self._lock:
            if self._closing:
                raise EngineClosedError(
                    f"shard worker {self.index} is closed"
                )
            if self._dead is not None:
                raise WorkerCrashError(
                    f"shard worker {self.index} is dead: {self._dead}"
                )
            req_id = next(self._req_ids)
            pending = PendingReply()
            self._pending[req_id] = pending
            self._cmd_q.put((op, req_id, *args))
        return pending

    def request(
        self, op: str, *args: object, timeout: Optional[float] = None
    ) -> object:
        """Submit and wait: the synchronous convenience path."""
        return self.submit(op, *args).result(timeout)

    @property
    def queue_depth(self) -> int:
        """Commands submitted but not yet answered."""
        with self._lock:
            return len(self._pending)

    @property
    def alive(self) -> bool:
        with self._lock:
            return (
                self._dead is None
                and not self._closing
                and self._proc is not None
                and self._proc.is_alive()
            )

    # -- background threads ---------------------------------------------------

    def _receive_loop(self, resp_q, generation: int) -> None:
        while True:
            with self._lock:
                if self._closing or self._generation != generation:
                    return
            try:
                item = resp_q.get(timeout=_POLL_S)
            except Empty:
                continue
            except (OSError, ValueError):
                # The queue was closed under us (teardown race).
                return
            status, req_id = item[0], item[1]
            with self._lock:
                pending = self._pending.pop(req_id, None)
            if pending is None:
                continue  # stale or startup message: drop
            if status == "ok":
                pending._resolve(item[2], item[3])
            else:
                pending._fail(
                    ShardCommandError(
                        f"shard worker {self.index}: {item[2]}"
                    )
                )

    # A failed respawn must mark the handle dead so future submits fail
    # fast instead of hanging on a missing worker.
    # error-boundary: respawn failure becomes a dead handle, not a hang
    def _monitor_loop(self, proc, generation: int) -> None:
        proc.join()
        with self._lock:
            if self._closing or self._generation != generation:
                return
            self.crashes += 1
            reason = (
                f"shard worker {self.index} died "
                f"(exit code {proc.exitcode})"
            )
            failed = list(self._pending.values())
            self._pending.clear()
            for pending in failed:
                pending._fail(WorkerCrashError(reason))
            try:
                self._spawn_locked()
                self.respawns += 1
            except Exception as exc:
                self._dead = str(exc)
