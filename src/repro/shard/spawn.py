"""The project's one multiprocessing entry point (``spawn`` only).

Every process, queue, or shared-memory segment the shard tier creates
goes through this module.  Centralizing the context buys three things:

* **Determinism** — ``spawn`` starts workers from a fresh interpreter,
  so a worker's module state is exactly what its imports produce, never
  a forked copy of the coordinator's heap mid-mutation.
* **Thread safety** — the coordinator runs receiver/monitor threads;
  ``fork`` in a threaded parent duplicates locks in unknown states.
  ``spawn`` sidesteps the whole class of fork-unsafety bugs.
* **Lintability** — the SKY801 rule flags any ``multiprocessing`` use
  that does not go through these helpers, so the start-method decision
  cannot silently regress to the platform default.

The module is imported by worker processes too; it holds no locks and
no mutable module state beyond the lazily-created context singleton.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import shared_memory
from typing import Callable, Optional, Tuple

#: Lazily created ``spawn`` context (one per process).
_CONTEXT: Optional[multiprocessing.context.SpawnContext] = None


def spawn_context() -> multiprocessing.context.SpawnContext:
    """The process-wide ``spawn`` multiprocessing context."""
    global _CONTEXT
    if _CONTEXT is None:
        _CONTEXT = multiprocessing.get_context("spawn")
    return _CONTEXT


def make_queue():
    """A ``spawn``-context queue for coordinator/worker messaging."""
    return spawn_context().Queue()


def make_process(
    target: Callable[..., None],
    args: Tuple[object, ...],
    name: str,
):
    """A daemonic ``spawn``-context process (not yet started).

    Daemonic so a crashed or interrupted coordinator can never leave
    orphan workers behind: the interpreter reaps them at exit.
    """
    proc = spawn_context().Process(
        target=target, args=args, name=name, daemon=True
    )
    return proc


def create_segment(name: str, size: int) -> shared_memory.SharedMemory:
    """Create (and own) a named shared-memory segment of ``size`` bytes."""
    return shared_memory.SharedMemory(name=name, create=True, size=size)


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment *without* adopting its lifetime.

    ``SharedMemory(name=...)`` re-registers the segment with the
    ``resource_tracker``.  That is harmless here — ``spawn`` children
    inherit the *coordinator's* tracker process (the tracker fd rides in
    the spawn preparation data), its cache is a set, and a worker's exit
    sends no messages to it — so the duplicate registration dedupes and
    the one registration is balanced by the coordinator's ``unlink()``.
    Do **not** ``resource_tracker.unregister`` here: with the shared
    tracker that would erase the coordinator's own registration, losing
    crash cleanup and making its later ``unlink()`` an unmatched
    UNREGISTER (a ``KeyError`` traceback in the tracker at exit).
    """
    return shared_memory.SharedMemory(name=name)
