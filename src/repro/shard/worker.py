"""The shard worker process: local kernels over shared-memory catalogs.

Each worker process hosts one or more shards.  At startup it attaches
the coordinator's shared-memory segments (zero-copy), rebuilds one
R-tree per hosted competitor shard plus the full product tree
(:meth:`RTree.bulk_load_block`), and then serves a small command
protocol over its spawn-context queues:

``skylines``
    Batched scatter requests: for each query point, compute the
    dominator skyline within every hosted shard and *pre-merge* them
    (:func:`merge_skylines` is associative) so the coordinator pays one
    IPC round per process, not per shard.
``topk_open`` / ``topk_next`` / ``topk_close``
    Progressive per-shard result streams for the scatter-gather top-k
    merge.  ``topk_next`` returns, per shard, a batch of sighted
    ``(cost, record_id)`` pairs plus the stream frontier — local costs
    are lower bounds on global costs because a shard holds a subset of
    the competitors, and every stream eventually enumerates *all*
    products (each worker indexes the full product catalog).
    ``topk_next`` carries a per-stream **sequence number** and the
    worker replays the cached reply when it sees the same sequence
    again, so a hedged or chaos-duplicated command advances the stream
    exactly once (idempotent by construction).

Commands that walk data (``skylines``, ``topk_next``) carry an optional
**budget** — the remaining fraction of the request's deadline, sent as
a relative duration because the coordinator's and worker's clocks share
a timebase but not an epoch meaning.  The worker converts it to a local
deadline and checks it between unit-of-work steps (per query point, per
stream result pull — each bounded by one R-tree node expansion), then
returns a *truncated-but-safe* reply: fewer rows, frontier still the
last emitted cost, ``exhausted`` still honest.  A truncated reply can
only make the coordinator's threshold merge stop earlier, never emit a
wrong row.
``mutate``
    Incremental R-tree maintenance mirroring a coordinator-side catalog
    mutation.  The resulting tree *structure* differs from a bulk load,
    but skylines and result streams are data-determined, so agreement
    with a fresh single-process engine is preserved.
``reload``
    Re-attach a replacement segment pair (capacity growth) and rebuild
    the affected tree from scratch.

Fork-safety: this module is imported in a *spawned* child, so it must
not create module-level locks or touch ``multiprocessing`` outside
:mod:`repro.shard.spawn` (the SKY801 lint rule enforces both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from queue import Empty
from typing import Dict, List, Optional, Tuple

from repro.core.dominators import get_dominating_skyline, merge_skylines
from repro.core.join import JoinUpgrader, MergeableResultStream
from repro.core.types import UpgradeConfig, UpgradeResult
from repro.core.upgrade import upgrade
from repro.costs.model import CostModel
from repro.obs import clock
from repro.rtree.tree import DEFAULT_MAX_ENTRIES, RTree
from repro.shard.memory import SegmentSpec, SharedBlock

Point = Tuple[float, ...]

#: ``topk_next`` reply rows: (shard, [(cost, record_id), ...], frontier,
#: exhausted).
ShardBatch = Tuple[int, List[Tuple[float, int]], float, bool]

#: Command-queue poll period: the worker wakes this often to notice a
#: torn-down queue instead of blocking forever (SKY901).
_CMD_POLL_S = 0.2


@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker process needs to build its local state.

    Picklable by construction — it crosses the spawn boundary as the
    worker's startup argument and again on respawn after a crash.
    """

    proc: int
    shards: Tuple[int, ...]
    competitor_specs: Dict[int, SegmentSpec]
    product_spec: SegmentSpec
    dims: int
    cost_model: CostModel
    bound: str
    lbc_mode: str
    vector_jl_from: int
    config: UpgradeConfig = field(default_factory=UpgradeConfig)
    max_entries: int = DEFAULT_MAX_ENTRIES
    method: str = "join"


def _build_tree(block: SharedBlock, dims: int, max_entries: int) -> RTree:
    """Rebuild a shard's R-tree from its shared columns (empty-safe)."""
    pb = block.as_block()
    if len(pb) == 0:
        return RTree(dims, max_entries=max_entries)
    return RTree.bulk_load_block(
        pb.data, pb.ids, max_entries=max_entries
    )


class _WorkerState:
    """Mutable per-process state behind the command loop."""

    def __init__(self, spec: ShardSpec):
        self.spec = spec
        self.blocks: Dict[int, SharedBlock] = {}
        self.trees: Dict[int, RTree] = {}
        for shard, seg in spec.competitor_specs.items():
            block = SharedBlock.attach(seg)
            self.blocks[shard] = block
            self.trees[shard] = _build_tree(
                block, spec.dims, spec.max_entries
            )
        self.product_block = SharedBlock.attach(spec.product_spec)
        self.product_tree = _build_tree(
            self.product_block, spec.dims, spec.max_entries
        )
        # stream_id -> shard -> stream
        self.streams: Dict[int, Dict[int, MergeableResultStream]] = {}
        # stream_id -> (seq, payload): the idempotency cache a hedged
        # or duplicated ``topk_next`` replays instead of re-advancing.
        self.stream_replies: Dict[int, Tuple[int, object]] = {}

    # -- commands -------------------------------------------------------------

    def skylines(
        self, points: List[Point], deadline: Optional[float]
    ) -> Tuple[List[List[Point]], bool]:
        """Pre-merged dominator skylines for a batch of query points.

        Deadline truncation is all-or-nothing *per point* — a skyline
        computed over only some hosted shards would silently understate
        dominators, so an expired budget drops whole trailing points
        instead (the coordinator counts them as uncovered).
        """
        out: List[List[Point]] = []
        trees = list(self.trees.values())
        truncated = False
        for point in points:
            if deadline is not None and clock() >= deadline:
                truncated = True
                break
            out.append(
                merge_skylines(
                    [get_dominating_skyline(t, point) for t in trees]
                )
            )
        return out, truncated

    def topk_open(self, stream_id: int, method: str) -> None:
        self.stream_replies.pop(stream_id, None)
        spec = self.spec
        per_shard: Dict[int, MergeableResultStream] = {}
        for shard, tree in self.trees.items():
            if method == "probing":
                per_shard[shard] = self._probing_stream(tree)
            else:
                upgrader = JoinUpgrader(
                    tree,
                    self.product_tree,
                    spec.cost_model,
                    bound=spec.bound,
                    config=spec.config,
                    lbc_mode=spec.lbc_mode,
                    vector_jl_from=spec.vector_jl_from,
                )
                per_shard[shard] = upgrader.shard_stream()
        self.streams[stream_id] = per_shard

    def _probing_stream(self, tree: RTree) -> MergeableResultStream:
        """The probing-tier local stream: every product, locally costed.

        Materialized eagerly (probing has no progressive order of its
        own) and replayed in canonical ``(cost, record_id)`` order so the
        frontier semantics match the join stream's.
        """
        spec = self.spec
        results: List[UpgradeResult] = []
        for point, rid in self.product_tree.iter_points():
            skyline = get_dominating_skyline(tree, point)
            cost, upgraded = upgrade(
                skyline, point, spec.cost_model, spec.config
            )
            results.append(UpgradeResult(rid, point, upgraded, cost))
        results.sort(key=lambda r: (r.cost, r.record_id))
        return MergeableResultStream(iter(results))

    def topk_next(
        self,
        stream_id: int,
        seq: int,
        batch: int,
        deadline: Optional[float],
    ) -> Tuple[List[ShardBatch], bool]:
        cached = self.stream_replies.get(stream_id)
        if cached is not None and cached[0] == seq:
            return cached[1]  # hedged/duplicated command: replay
        expected = 0 if cached is None else cached[0] + 1
        if seq != expected:
            raise ValueError(
                f"stream {stream_id}: stale seq {seq} (expected {expected})"
            )
        reply: List[ShardBatch] = []
        truncated = False
        for shard, stream in self.streams[stream_id].items():
            pairs: List[Tuple[float, int]] = []
            if not stream.exhausted:
                pairs = [
                    (r.cost, r.record_id)
                    for r in stream.next_batch(batch, deadline=deadline)
                ]
            if (
                deadline is not None
                and not stream.exhausted
                and clock() >= deadline
            ):
                truncated = True
            reply.append(
                (shard, pairs, stream.frontier, stream.exhausted)
            )
        payload = (reply, truncated)
        self.stream_replies[stream_id] = (seq, payload)
        return payload

    def topk_close(self, stream_id: int) -> None:
        self.streams.pop(stream_id, None)
        self.stream_replies.pop(stream_id, None)

    def mutate(self, op: str, payload: tuple) -> None:
        """Apply one catalog mutation to the local indexes."""
        # Idempotent by construction: the new entry is deleted before it
        # is inserted, so a worker that *already* holds the mutation —
        # a respawn raced the command and rebuilt from the republished
        # segment — ends up with exactly one copy, not two.
        if op == "competitor_set":
            shard, rid, old, new = payload
            tree = self.trees[shard]
            if old is not None:
                tree.delete(old, rid)
            if new is not None:
                tree.delete(new, rid)
                tree.insert(new, rid)
        elif op == "product_set":
            rid, old, new = payload
            if old is not None:
                self.product_tree.delete(old, rid)
            if new is not None:
                self.product_tree.delete(new, rid)
                self.product_tree.insert(new, rid)
        else:
            raise ValueError(f"unknown mutation op: {op}")

    def reload(self, shard: Optional[int], seg: SegmentSpec) -> None:
        """Attach a replacement segment pair and rebuild its tree."""
        spec = self.spec
        if shard is None:
            self.product_block.close()
            self.product_block = SharedBlock.attach(seg)
            self.product_tree = _build_tree(
                self.product_block, spec.dims, spec.max_entries
            )
        else:
            self.blocks[shard].close()
            block = SharedBlock.attach(seg)
            self.blocks[shard] = block
            self.trees[shard] = _build_tree(
                block, spec.dims, spec.max_entries
            )

    def close(self) -> None:
        for block in self.blocks.values():
            block.close()
        self.product_block.close()


def _safe_payload(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


# An uncaught exception would kill the process and turn a plain data
# error into a crash-containment event, so the loop reports everything.
# error-boundary: every worker failure becomes a typed error response
def shard_worker_main(spec: ShardSpec, commands, responses) -> None:
    """Worker process entry point (the spawn target).

    Protocol: every command is ``(op, req_id, *args)``; every reply is
    ``("ok", req_id, payload, fragments)`` or ``("error", req_id, text)``.
    ``fragments`` are retroactive trace spans — ``(name, t0, t1, attrs)``
    on the shared :data:`repro.obs.clock` timebase (``CLOCK_MONOTONIC``
    is system-wide on Linux) — that the coordinator replays into the
    request's trace via :meth:`Trace.record`.
    """
    try:
        state = _WorkerState(spec)
    except BaseException as exc:
        responses.put(("error", -1, _safe_payload(exc)))
        return
    responses.put(("ok", -1, ("ready", spec.proc), []))

    while True:
        try:
            # Bounded receive (SKY901): an unbounded get() would park
            # the worker unkillably-politely if the coordinator dies
            # without a shutdown; the poll keeps the loop responsive.
            cmd = commands.get(timeout=_CMD_POLL_S)
        except Empty:
            continue
        except (OSError, ValueError):
            return  # queue torn down under us: coordinator is gone
        op, req_id = cmd[0], cmd[1]
        fragments: List[tuple] = []
        try:
            if op == "skylines":
                points, traced, budget = cmd[2], cmd[3], cmd[4]
                deadline = clock() + budget if budget is not None else None
                t0 = clock()
                payload = state.skylines(points, deadline)
                if traced:
                    fragments.append(
                        (
                            "shard.skylines",
                            t0,
                            clock(),
                            {
                                "proc": spec.proc,
                                "shards": list(spec.shards),
                                "batch": len(points),
                                "computed": len(payload[0]),
                                "truncated": payload[1],
                            },
                        )
                    )
            elif op == "topk_open":
                state.topk_open(cmd[2], cmd[3])
                payload = None
            elif op == "topk_next":
                stream_id, seq, batch, traced, budget = (
                    cmd[2],
                    cmd[3],
                    cmd[4],
                    cmd[5],
                    cmd[6],
                )
                deadline = clock() + budget if budget is not None else None
                t0 = clock()
                payload = state.topk_next(stream_id, seq, batch, deadline)
                if traced:
                    fragments.append(
                        (
                            "shard.topk_next",
                            t0,
                            clock(),
                            {
                                "proc": spec.proc,
                                "seq": seq,
                                "rows": sum(
                                    len(rows)
                                    for _, rows, _, _ in payload[0]
                                ),
                                "truncated": payload[1],
                            },
                        )
                    )
            elif op == "topk_close":
                state.topk_close(cmd[2])
                payload = None
            elif op == "mutate":
                state.mutate(cmd[2], cmd[3])
                payload = None
            elif op == "reload":
                state.reload(cmd[2], cmd[3])
                payload = None
            elif op == "ping":
                payload = ("pong", spec.proc)
            elif op == "shutdown":
                state.close()
                responses.put(("ok", req_id, None, []))
                return
            else:
                raise ValueError(f"unknown worker command: {op}")
        except BaseException as exc:
            responses.put(("error", req_id, _safe_payload(exc)))
            continue
        responses.put(("ok", req_id, payload, fragments))
