"""The multi-process sharded execution tier.

Where :mod:`repro.serve` scales *request concurrency* with threads (the
GIL is mostly released inside the NumPy kernels), this package scales
*kernel work* across processes: the competitor catalog is hash-partitioned
into shards whose columnar blocks live in POSIX shared memory, spawned
workers rebuild per-shard R-trees zero-copy, and the coordinator
scatter-gathers queries with a threshold-algorithm merge that reproduces
the single-process answers bit for bit.

* :mod:`repro.shard.engine` — :class:`ShardedUpgradeEngine`, the
  coordinator (same query API as the thread-tier engine);
* :mod:`repro.shard.worker` — the spawned worker loop and its
  :class:`ShardSpec` bootstrap record;
* :mod:`repro.shard.client` — :class:`ShardProcess` supervision:
  request plumbing, crash containment, eager respawn;
* :mod:`repro.shard.merge` — :class:`ThresholdMerge`, the scatter-gather
  top-k merge and its correctness argument (including degraded mode);
* :mod:`repro.shard.resilience` — :class:`CircuitBreaker`,
  :class:`HedgePolicy`, and :class:`ShardResilience`: deadline-aware
  hedged scatter, per-process circuit breakers, health scoring;
* :mod:`repro.shard.memory` — :class:`SharedBlock` shared-memory
  segments and :class:`SegmentSpec` attach records;
* :mod:`repro.shard.partition` — the hash-partitioning maps;
* :mod:`repro.shard.spawn` — the one sanctioned doorway to
  :mod:`multiprocessing` (``spawn`` start method, resource-tracker
  hygiene); lint rule SKY801 keeps everything else out of it.
"""

from repro.shard.client import PendingReply, ShardProcess
from repro.shard.engine import ShardedUpgradeEngine
from repro.shard.memory import SegmentSpec, SharedBlock, padded_capacity
from repro.shard.merge import ThresholdMerge
from repro.shard.partition import (
    partition_catalog,
    partition_members,
    process_of,
    shard_of,
    shards_of_process,
)
from repro.shard.resilience import (
    CircuitBreaker,
    HedgePolicy,
    RPCOutcome,
    ShardResilience,
)
from repro.shard.worker import ShardSpec

__all__ = [
    "CircuitBreaker",
    "HedgePolicy",
    "PendingReply",
    "RPCOutcome",
    "SegmentSpec",
    "ShardProcess",
    "ShardResilience",
    "ShardSpec",
    "ShardedUpgradeEngine",
    "SharedBlock",
    "ThresholdMerge",
    "padded_capacity",
    "partition_catalog",
    "partition_members",
    "process_of",
    "shard_of",
    "shards_of_process",
]
