"""Shared-memory backing for a shard's :class:`PointBlock` columns.

A :class:`SharedBlock` is the pair of POSIX shared-memory segments — one
``(capacity, d)`` float64 data column, one ``(capacity,)`` int64 id
column — behind one shard's competitor (or the whole product) catalog.
The coordinator *creates* and owns the segments; workers *attach* with
:func:`repro.shard.spawn.attach_segment` (zero-copy; see that function
for why the attach-side resource-tracker registration is harmless and
a worker exit can never unlink memory the coordinator serves from).

Lifecycle contract:

* the coordinator calls :meth:`SharedBlock.create` + :meth:`publish`,
  republishes in place on mutations (workers only read segments while
  (re)building, which the command protocol serializes against), and
  calls :meth:`close` + :meth:`unlink` exactly once at engine close;
* workers call :meth:`SharedBlock.attach` and :meth:`close` — never
  :meth:`unlink`.

Capacity is over-allocated (:func:`padded_capacity`) so typical
mutation churn rewrites rows in place; growth past capacity allocates a
fresh, larger segment pair under a new name (the epoch-suffixed naming
makes stale attachments impossible to confuse with live ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.kernels.block import PointBlock
from repro.shard.spawn import attach_segment, create_segment

Point = Tuple[float, ...]

_FLOAT = np.dtype(np.float64)
_INT = np.dtype(np.int64)


def padded_capacity(n: int) -> int:
    """Row capacity to allocate for ``n`` live rows (50% headroom)."""
    return max(16, n + n // 2)


@dataclass(frozen=True)
class SegmentSpec:
    """Everything a worker needs to attach one published block.

    Picklable and tiny — rides in the worker spec and in ``reload``
    commands.  ``n`` is the live row count at publish time; rows beyond
    it are garbage.
    """

    data_name: str
    ids_name: str
    dims: int
    capacity: int
    n: int


class SharedBlock:
    """One catalog's columns in two shared-memory segments."""

    __slots__ = ("spec", "data", "ids", "_shm_data", "_shm_ids", "_owner")

    def __init__(self, spec, shm_data, shm_ids, owner: bool):
        self.spec = spec
        self._shm_data = shm_data
        self._shm_ids = shm_ids
        self._owner = owner
        self.data = np.ndarray(
            (spec.capacity, spec.dims), dtype=_FLOAT, buffer=shm_data.buf
        )
        self.ids = np.ndarray(
            (spec.capacity,), dtype=_INT, buffer=shm_ids.buf
        )

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(cls, name: str, dims: int, capacity: int) -> "SharedBlock":
        """Allocate owned segments ``{name}-d`` / ``{name}-i`` (coordinator)."""
        if dims < 1 or capacity < 1:
            raise ConfigurationError(
                f"need dims >= 1 and capacity >= 1, got {dims}/{capacity}"
            )
        spec = SegmentSpec(
            data_name=f"{name}-d",
            ids_name=f"{name}-i",
            dims=dims,
            capacity=capacity,
            n=0,
        )
        shm_data = create_segment(
            spec.data_name, capacity * dims * _FLOAT.itemsize
        )
        shm_ids = create_segment(spec.ids_name, capacity * _INT.itemsize)
        return cls(spec, shm_data, shm_ids, owner=True)

    @classmethod
    def attach(cls, spec: SegmentSpec) -> "SharedBlock":
        """Map an existing published block read-only-by-convention (worker)."""
        shm_data = attach_segment(spec.data_name)
        shm_ids = attach_segment(spec.ids_name)
        return cls(spec, shm_data, shm_ids, owner=False)

    # -- publish / read -------------------------------------------------------

    def publish(
        self,
        points: Sequence[Sequence[float]],
        ids: Sequence[int],
    ) -> SegmentSpec:
        """Write ``points``/``ids`` into the segments; returns the new spec.

        Raises:
            ConfigurationError: more rows than the segment's capacity
                (the owner must allocate a replacement block instead).
        """
        n = len(points)
        if n > self.spec.capacity:
            raise ConfigurationError(
                f"{n} rows exceed segment capacity {self.spec.capacity}"
            )
        if n:
            self.data[:n] = np.asarray(points, dtype=np.float64)
            self.ids[:n] = np.asarray(ids, dtype=np.int64)
        new_spec = SegmentSpec(
            data_name=self.spec.data_name,
            ids_name=self.spec.ids_name,
            dims=self.spec.dims,
            capacity=self.spec.capacity,
            n=n,
        )
        self.spec = new_spec
        return new_spec

    def as_block(self, n: Optional[int] = None) -> PointBlock:
        """The live rows as a zero-copy :class:`PointBlock` view."""
        count = self.spec.n if n is None else n
        return PointBlock.from_buffers(self.data, self.ids, n=count)

    # -- lifecycle ------------------------------------------------------------

    # Double closes and already-unlinked segments are expected here.
    # error-boundary: teardown must never mask the original failure
    def close(self) -> None:
        """Drop this process's mapping (idempotent; data survives)."""
        self.data = None  # release the buffer views before closing
        self.ids = None
        for shm in (self._shm_data, self._shm_ids):
            try:
                shm.close()
            except Exception:
                pass

    # error-boundary: see close()
    def unlink(self) -> None:
        """Destroy the segments (owner only, after every close)."""
        if not self._owner:
            raise ConfigurationError(
                "only the owning coordinator may unlink a shared block"
            )
        for shm in (self._shm_data, self._shm_ids):
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __repr__(self) -> str:
        role = "owner" if self._owner else "attached"
        return (
            f"SharedBlock({self.spec.data_name!r}, n={self.spec.n}, "
            f"cap={self.spec.capacity}, {role})"
        )
