"""The scatter-gather top-k merge (threshold-algorithm style).

Correctness rests on two facts about the per-shard streams:

1. **Local costs are lower bounds.**  A shard holds a subset of the
   competitors, and upgrading against fewer dominators is never more
   expensive, so a product's shard-local cost is ``<=`` its global cost.
2. **Every stream enumerates every product.**  Each worker indexes the
   *full* product catalog against its shard's competitors, so a product
   absent from a stream so far must have shard-local cost at or above
   that stream's frontier.

Together: a product sighted in *no* stream has global cost at least
``T = max over shards of frontier``.  The coordinator therefore computes
exact global costs only for *sighted* products (scattering skyline
requests, merging, and running Algorithm 1 once per product) and emits
them from a ``(cost, record_id)`` heap strictly while ``cost < T`` — the
strict inequality keeps an unsighted product with cost exactly ``T``
from being beaten to its canonical tie-break slot.  Exhausted streams
report ``frontier = inf`` (fact 2 makes that safe), so full exhaustion
flushes the heap.

The emitted sequence is globally sorted by ``(cost, record_id)`` — the
same canonical order every single-process method produces — which is
what the agreement suite asserts bit-for-bit.

**Degraded mode.**  Both facts survive a shard going *down*
(:meth:`ThresholdMerge.mark_down` — breaker-tripped, crashed, or
timed out):

* A down shard's last frontier stays a valid lower bound — its stream
  was ascending while it lived and is simply frozen now — so the
  threshold ``max(frontiers)`` needs no adjustment.
* Fact 2 means *any* exhausted stream implies every product has been
  sighted, so once every **live** shard is exhausted there are no
  unsighted products left and the heap can flush.

Hence a deadline-truncated answer at full coverage is an exact prefix
of the canonical order, and an answer missing shards is the exact
answer over the reduced market (a per-product lower bound on true
costs, since removing competitors never raises an upgrade cost) —
labeled via :attr:`ThresholdMerge.coverage` so callers can tell the
difference.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Set, Tuple

from repro.core.types import UpgradeResult


class ThresholdMerge:
    """Coordinator-side merge state for one progressive top-k query.

    The driving loop alternates three calls: :meth:`observe` per shard
    batch (returns newly sighted record ids), :meth:`add_candidate` once
    each new sighting's exact global cost is known, then :meth:`drain`.
    Draining with sightings still awaiting their exact cost would be
    unsound; :meth:`drain` guards against it (:meth:`abandon` releases a
    sighting whose cost is unknowable, e.g. zero skyline coverage).
    """

    __slots__ = (
        "k",
        "frontiers",
        "exhausted",
        "down",
        "sighted",
        "emitted",
        "_heap",
        "_uncosted",
    )

    def __init__(self, n_shards: int, k: int):
        self.k = k
        self.frontiers: List[float] = [0.0] * n_shards
        self.exhausted: List[bool] = [False] * n_shards
        self.down: List[bool] = [False] * n_shards
        self.sighted: Set[int] = set()
        self.emitted: List[UpgradeResult] = []
        self._heap: List[Tuple[float, int, UpgradeResult]] = []
        self._uncosted = 0

    # -- feeding --------------------------------------------------------------

    def observe(
        self,
        shard: int,
        rows: Sequence[Tuple[float, int]],
        frontier: float,
        exhausted: bool,
    ) -> List[int]:
        """Record one shard batch; returns record ids sighted for the
        first time (their exact costs are now owed via
        :meth:`add_candidate` or released via :meth:`abandon`)."""
        new: List[int] = []
        for _, record_id in rows:
            if record_id not in self.sighted:
                self.sighted.add(record_id)
                new.append(record_id)
        self.frontiers[shard] = frontier
        self.exhausted[shard] = exhausted
        self._uncosted += len(new)
        return new

    def add_candidate(self, result: UpgradeResult) -> None:
        """Supply the exact global result for one sighted product."""
        heapq.heappush(
            self._heap, (result.cost, result.record_id, result)
        )
        self._uncosted -= 1

    def abandon(self, record_id: int) -> None:
        """Release a sighting whose exact cost cannot be computed.

        The product simply never emits (it stays in :attr:`sighted`, so
        it is not owed again); used when every shard that could supply
        its skyline is down.
        """
        self._uncosted -= 1

    def mark_down(self, shard: int) -> None:
        """Stop expecting progress from ``shard`` (crash/breaker/timeout).

        Its frontier freezes at the last observed value — still a valid
        lower bound on unsighted products, since the stream was
        ascending while it lived — and the merge completes from the
        remaining live shards.  An already-exhausted shard is *not*
        marked down: all of its data is merged, so it still counts
        toward :attr:`coverage`.
        """
        if not self.exhausted[shard]:
            self.down[shard] = True

    # -- emission -------------------------------------------------------------

    @property
    def threshold(self) -> float:
        """Lower bound on any *unsighted* product's global cost."""
        return max(self.frontiers)

    @property
    def all_exhausted(self) -> bool:
        return all(self.exhausted)

    @property
    def all_live_exhausted(self) -> bool:
        """Every live shard is exhausted (no unsighted products remain —
        vacuously true when every shard is down)."""
        return all(
            exhausted or down
            for exhausted, down in zip(self.exhausted, self.down)
        )

    @property
    def coverage(self) -> float:
        """Fraction of shards contributing to the answer."""
        if not self.down:
            return 1.0
        return 1.0 - sum(self.down) / len(self.down)

    @property
    def done(self) -> bool:
        return len(self.emitted) >= self.k or (
            self.all_live_exhausted
            and not self._heap
            and not self._uncosted
        )

    def drain(self) -> List[UpgradeResult]:
        """Emit every bound-proven-final candidate, in canonical order."""
        if self._uncosted:
            raise ValueError(
                f"{self._uncosted} sighted products still await their "
                f"exact cost; drain would be unsound"
            )
        out: List[UpgradeResult] = []
        bound = self.threshold
        while (
            self._heap
            and len(self.emitted) < self.k
            and (self._heap[0][0] < bound or self.all_live_exhausted)
        ):
            _, _, result = heapq.heappop(self._heap)
            self.emitted.append(result)
            out.append(result)
        return out
