"""The scatter-gather top-k merge (threshold-algorithm style).

Correctness rests on two facts about the per-shard streams:

1. **Local costs are lower bounds.**  A shard holds a subset of the
   competitors, and upgrading against fewer dominators is never more
   expensive, so a product's shard-local cost is ``<=`` its global cost.
2. **Every stream enumerates every product.**  Each worker indexes the
   *full* product catalog against its shard's competitors, so a product
   absent from a stream so far must have shard-local cost at or above
   that stream's frontier.

Together: a product sighted in *no* stream has global cost at least
``T = max over shards of frontier``.  The coordinator therefore computes
exact global costs only for *sighted* products (scattering skyline
requests, merging, and running Algorithm 1 once per product) and emits
them from a ``(cost, record_id)`` heap strictly while ``cost < T`` — the
strict inequality keeps an unsighted product with cost exactly ``T``
from being beaten to its canonical tie-break slot.  Exhausted streams
report ``frontier = inf`` (fact 2 makes that safe), so full exhaustion
flushes the heap.

The emitted sequence is globally sorted by ``(cost, record_id)`` — the
same canonical order every single-process method produces — which is
what the agreement suite asserts bit-for-bit.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Set, Tuple

from repro.core.types import UpgradeResult


class ThresholdMerge:
    """Coordinator-side merge state for one progressive top-k query.

    The driving loop alternates three calls: :meth:`observe` per shard
    batch (returns newly sighted record ids), :meth:`add_candidate` once
    each new sighting's exact global cost is known, then :meth:`drain`.
    Draining with sightings still awaiting their exact cost would be
    unsound; :meth:`drain` guards against it.
    """

    __slots__ = (
        "k",
        "frontiers",
        "exhausted",
        "sighted",
        "emitted",
        "_heap",
        "_uncosted",
    )

    def __init__(self, n_shards: int, k: int):
        self.k = k
        self.frontiers: List[float] = [0.0] * n_shards
        self.exhausted: List[bool] = [False] * n_shards
        self.sighted: Set[int] = set()
        self.emitted: List[UpgradeResult] = []
        self._heap: List[Tuple[float, int, UpgradeResult]] = []
        self._uncosted = 0

    # -- feeding --------------------------------------------------------------

    def observe(
        self,
        shard: int,
        rows: Sequence[Tuple[float, int]],
        frontier: float,
        exhausted: bool,
    ) -> List[int]:
        """Record one shard batch; returns record ids sighted for the
        first time (their exact costs are now owed via
        :meth:`add_candidate`)."""
        new: List[int] = []
        for _, record_id in rows:
            if record_id not in self.sighted:
                self.sighted.add(record_id)
                new.append(record_id)
        self.frontiers[shard] = frontier
        self.exhausted[shard] = exhausted
        self._uncosted += len(new)
        return new

    def add_candidate(self, result: UpgradeResult) -> None:
        """Supply the exact global result for one sighted product."""
        heapq.heappush(
            self._heap, (result.cost, result.record_id, result)
        )
        self._uncosted -= 1

    # -- emission -------------------------------------------------------------

    @property
    def threshold(self) -> float:
        """Lower bound on any *unsighted* product's global cost."""
        return max(self.frontiers)

    @property
    def all_exhausted(self) -> bool:
        return all(self.exhausted)

    @property
    def done(self) -> bool:
        return len(self.emitted) >= self.k or (
            self.all_exhausted and not self._heap and not self._uncosted
        )

    def drain(self) -> List[UpgradeResult]:
        """Emit every bound-proven-final candidate, in canonical order."""
        if self._uncosted:
            raise ValueError(
                f"{self._uncosted} sighted products still await their "
                f"exact cost; drain would be unsound"
            )
        out: List[UpgradeResult] = []
        bound = self.threshold
        while (
            self._heap
            and len(self.emitted) < self.k
            and (self._heap[0][0] < bound or self.all_exhausted)
        ):
            _, _, result = heapq.heappop(self._heap)
            self.emitted.append(result)
            out.append(result)
        return out
