"""Figure 11: progressiveness on large independent data.

Join under NLB/CLB/ALB at the Table V defaults, measuring time until the
k-th result is available for k in {1, 5, 10, 15, 20}.

Expected shape (paper §IV-D): the three bounds differ only slightly —
independent dimensions yield fewer dominating points, leaving little room for bound optimizations.

Both LBC modes run: the paper-literal bounds reproduce the paper's
progressiveness shape (at the cost of possibly suboptimal results); the
corrected bounds are exact but evaluate most leaves before the first
result, flattening the curve — a headline reproduction finding, see
EXPERIMENTS.md.
"""

import pytest

from _sweeps import (
    LARGE_D_DEFAULT,
    LARGE_P_DEFAULT,
    LARGE_T_DEFAULT,
    PROGRESSIVE_KS,
    prepared_workload,
    run_and_annotate,
)
from conftest import bench_cell, scale_factor

DIST = "independent"
SCALE = scale_factor(200.0)
BOUNDS = ["join-nlb", "join-clb", "join-alb"]


@pytest.mark.parametrize("lbc_mode", ["corrected", "paper"])
@pytest.mark.parametrize("k", PROGRESSIVE_KS)
@pytest.mark.parametrize("algorithm", BOUNDS)
def test_fig11_cell(benchmark, algorithm, k, lbc_mode):
    from repro.bench.harness import run_cell

    workload = prepared_workload(
        DIST, LARGE_P_DEFAULT, LARGE_T_DEFAULT, LARGE_D_DEFAULT, SCALE
    )
    outcome = bench_cell(
        benchmark,
        lambda: run_cell(algorithm, workload, k=k, lbc_mode=lbc_mode),
    )
    benchmark.extra_info["upgrade_calls"] = (
        outcome.report.counters.upgrade_calls
    )
    assert len(outcome.results) == k
    assert outcome.costs == sorted(outcome.costs)
