"""Ablation: the probing family and the full-enumeration regime.

Three probing variants — the paper's basic and improved algorithms plus
this library's amortized batch probing — against the join ranking *all*
of ``T`` (``k = |T|``).  Batch probing amortizes one global-skyline
computation across every product (every dominator-skyline point is a
global skyline point), which makes it the honest comparison point for the
join when progressive early termination is not wanted.
"""

import pytest

from repro.bench.harness import run_cell
from repro.bench.workloads import synthetic_workload

from conftest import bench_cell, scale_factor, scaled

SCALE = scale_factor(200.0)
ALGORITHMS = ["basic-probing", "probing", "batch-probing", "join-clb"]


def workload(distribution):
    w = synthetic_workload(
        distribution,
        scaled(1_000_000, SCALE),
        scaled(100_000, SCALE),
        3,
    )
    w.competitor_tree
    w.product_tree
    return w


@pytest.mark.parametrize(
    "distribution", ["independent", "anti_correlated"]
)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_full_ranking_cell(benchmark, algorithm, distribution):
    w = workload(distribution)
    k = len(w.products)
    outcome = bench_cell(
        benchmark, lambda: run_cell(algorithm, w, k=k)
    )
    assert len(outcome.results) == k
    benchmark.extra_info["dominance_tests"] = (
        outcome.report.counters.dominance_tests
    )


@pytest.mark.parametrize(
    "distribution", ["independent", "anti_correlated"]
)
def test_probing_variants_agree(distribution):
    w = workload(distribution)
    reference = run_cell("batch-probing", w, k=10).costs
    for algorithm in ("probing", "join-clb"):
        assert run_cell(algorithm, w, k=10).costs == pytest.approx(
            reference
        )
