"""Shared benchmark plumbing.

Every benchmark measures exactly one experiment *cell* — one
(algorithm, workload, k) combination — with ``rounds=1`` (the algorithms
are deterministic and cells are expensive; wall-clock trends across cells
are what the paper's figures plot, not per-cell variance).

Workload and index construction happen outside the measured region, like
the paper excludes data loading (§IV-A).  Cardinalities are the paper's
divided by a scale factor, overridable via ``SKYUP_BENCH_SCALE``.
"""

from __future__ import annotations

import os

import pytest


def scale_factor(default: float) -> float:
    """Resolve the cardinality divisor (env override wins)."""
    env = os.environ.get("SKYUP_BENCH_SCALE")
    return float(env) if env else default


def scaled(paper_value: int, scale: float, floor: int = 100) -> int:
    """Scale a paper cardinality down, with a sanity floor."""
    return max(floor, int(round(paper_value / scale)))


def bench_cell(benchmark, fn):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session", autouse=True)
def _keep_workload_cache():
    """Keep the cross-cell workload cache alive for the whole session."""
    yield
    from repro.bench.workloads import clear_cache

    clear_cache()
