"""Sharded-engine scaling cells: 1/2/4/8 worker processes, mixed R/W.

Each cell replays the serving benchmark's repeated-query stream with
interleaved catalog writes (add/remove competitor pairs) through the
multi-process :class:`~repro.shard.ShardedUpgradeEngine`, cold and
cached, as pytest-benchmark cells.  The recorded baseline lives in
``benchmarks/results/BENCH_shard.json`` and is regenerated with::

    PYTHONPATH=src python benchmarks/record_shard_baseline.py

Scaling numbers are only meaningful next to the machine's CPU count
(recorded in ``extra_info`` and in the baseline's ``machine`` block):
on a single-core container the extra processes cannot add parallelism,
only measure the coordination overhead honestly.
"""

import os

import pytest

from repro.serve import EngineConfig
from repro.serve.bench import build_session, generate_requests
from repro.shard import ShardedUpgradeEngine
from repro.shard.bench import make_write_points, replay_mixed

from conftest import bench_cell, scale_factor, scaled

SCALE = scale_factor(500.0)

N_REQUESTS = 300
WRITE_EVERY = 50
PROCESS_COUNTS = (1, 2, 4, 8)
DIMS = 3


def workload():
    n_competitors = scaled(1_000_000, SCALE, floor=600)
    n_products = scaled(100_000, SCALE, floor=200)
    session = build_session(
        n_competitors, n_products, DIMS, "independent"
    )
    requests = generate_requests(
        N_REQUESTS, session.product_count, hot_pool=32, topk_every=25, k=5
    )
    writes = make_write_points(
        max(1, N_REQUESTS // WRITE_EVERY), DIMS, seed=2014
    )
    return session, requests, writes


@pytest.mark.parametrize("cache", [False, True], ids=["cold", "cached"])
@pytest.mark.parametrize("processes", PROCESS_COUNTS)
def test_shard_throughput_cell(benchmark, processes, cache):
    session, requests, writes = workload()
    engine = ShardedUpgradeEngine(
        session,
        EngineConfig(workers=0, cache=cache, processes=processes),
    )

    def replay():
        return replay_mixed(engine, requests, writes, WRITE_EVERY)

    try:
        stats = bench_cell(benchmark, replay)
    finally:
        shard_stats = engine.shard_stats()
        engine.close()
    assert stats["requests"] == N_REQUESTS
    assert stats["writes"] >= 1
    crashes = sum(p["crashes"] for p in shard_stats["per_process"])
    assert crashes == 0, shard_stats
    benchmark.extra_info["processes"] = processes
    benchmark.extra_info["shards"] = shard_stats["n_shards"]
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["throughput_rps"] = round(
        stats["throughput_rps"], 1
    )
    benchmark.extra_info["cache_hit_rate"] = round(
        stats["cache_hit_rate"], 4
    )


def test_sharded_agrees_under_mixed_writes():
    """Correctness floor for the cells: same stream, same answers."""
    from repro.serve import UpgradeEngine
    from repro.serve.engine import TopKQuery

    n_competitors = scaled(1_000_000, SCALE, floor=600)
    n_products = scaled(100_000, SCALE, floor=200)
    single = UpgradeEngine(
        build_session(n_competitors, n_products, DIMS, "independent"),
        EngineConfig(workers=0),
    )
    sharded = ShardedUpgradeEngine(
        build_session(n_competitors, n_products, DIMS, "independent"),
        EngineConfig(workers=0, processes=2, shards=2),
    )
    writes = make_write_points(4, DIMS, seed=2014)
    try:
        for point in writes:
            single.add_competitor(point)
            sharded.add_competitor(point)
        a = single.query(TopKQuery(k=8)).results
        b = sharded.query(TopKQuery(k=8)).results
        assert a == b
    finally:
        single.close()
        sharded.close()
