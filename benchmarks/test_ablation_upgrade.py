"""Ablation: Algorithm 1 variants.

* **extended mode** — the tail candidate family the paper's pseudo code
  omits (keep the sort dimension, match the last skyline point elsewhere):
  measured cost improvement and overhead.  The paper itself leaves the
  optimality of Algorithm 1 open (§VI); this quantifies one easy gap.
* **vectorized vs scalar evaluation** — the numpy candidate-evaluation
  path against the paper-verbatim loop on growing skyline sizes.
"""

import pytest

from repro.bench.workloads import synthetic_workload
from repro.core.types import UpgradeConfig
from repro.core.upgrade import upgrade
from repro.costs.model import paper_cost_model
from repro.skyline.vectorized import numpy_skyline

from conftest import bench_cell, scale_factor, scaled

SCALE = scale_factor(200.0)


def skyline_and_product(dims, n_paper=1_000_000):
    w = synthetic_workload(
        "anti_correlated", scaled(n_paper, SCALE), 100, dims, seed=23
    )
    skyline = numpy_skyline(w.competitors)
    product = tuple([1.5] * dims)
    return skyline, product


@pytest.mark.parametrize("dims", [2, 3, 4])
@pytest.mark.parametrize("extended", [False, True])
def test_extended_mode_cell(benchmark, dims, extended):
    skyline, product = skyline_and_product(dims)
    model = paper_cost_model(dims)
    config = UpgradeConfig(extended=extended)
    cost, upgraded = bench_cell(
        benchmark, lambda: upgrade(skyline, product, model, config)
    )
    benchmark.extra_info["skyline_size"] = len(skyline)
    benchmark.extra_info["chosen_cost"] = cost
    if extended:
        base_cost, _ = upgrade(skyline, product, model)
        assert cost <= base_cost + 1e-12
        benchmark.extra_info["improvement_vs_paper"] = base_cost - cost


@pytest.mark.parametrize("dims", [2, 3])
def test_optimality_gap_cell(benchmark, dims):
    """Algorithm 1 versus the exhaustive optimum (§VI open question).

    In 2-d the gap is provably zero; in 3-d Algorithm 1 typically
    overpays on more than half of random instances.  The exhaustive
    reference is exponential, so the skyline is capped.
    """
    import numpy as np

    from repro.core.optimal import optimal_upgrade_exhaustive
    from repro.geometry.point import dominates
    from repro.skyline.bnl import bnl_skyline

    rng = np.random.default_rng(31)
    model = paper_cost_model(dims)
    instances = []
    while len(instances) < 25:
        pts = [tuple(p) for p in rng.random((8, dims))]
        product = tuple(1.1 + rng.random(dims) * 0.5)
        sky = bnl_skyline([p for p in pts if dominates(p, product)])
        if sky:
            instances.append((sky, product))

    def alg1_total():
        return sum(
            upgrade(sky, prod, model)[0] for sky, prod in instances
        )

    total_alg1 = bench_cell(benchmark, alg1_total)
    total_opt = sum(
        optimal_upgrade_exhaustive(sky, prod, model)[0]
        for sky, prod in instances
    )
    benchmark.extra_info["mean_relative_gap"] = (
        (total_alg1 - total_opt) / total_opt if total_opt else 0.0
    )
    assert total_opt <= total_alg1 + 1e-9
    if dims == 2:
        assert total_alg1 == pytest.approx(total_opt, abs=1e-9)


@pytest.mark.parametrize("path", ["vectorized", "scalar"])
def test_evaluation_path_cell(benchmark, path):
    skyline, product = skyline_and_product(3)
    model = paper_cost_model(3)
    if path == "scalar":
        model._vector_ok = False  # force the paper-verbatim loop
    cost, _ = bench_cell(
        benchmark, lambda: upgrade(skyline, product, model)
    )
    benchmark.extra_info["skyline_size"] = len(skyline)
    benchmark.extra_info["cost"] = cost
