"""Ablation: skyline algorithm choice (the substrate the core leans on).

BNL, SFS, divide & conquer, the vectorized numpy reference, and BBS over
an R-tree, across the three data distributions.  Motivates the library's
defaults: BNL for the small dominator sets inside Algorithm 2/4, numpy for
dataset preparation, BBS as the basis of ``getDominatingSky``.
"""

import pytest

from repro.bench.workloads import synthetic_workload
from repro.skyline import (
    bbs_skyline,
    bnl_skyline,
    dnc_skyline,
    numpy_skyline,
    sfs_skyline,
    zorder_skyline,
)

from conftest import bench_cell, scale_factor, scaled

SCALE = scale_factor(200.0)
DISTRIBUTIONS = ["independent", "correlated", "anti_correlated"]
ALGOS = {
    "bnl": bnl_skyline,
    "sfs": sfs_skyline,
    "dnc": dnc_skyline,
    "numpy": numpy_skyline,
    "zorder": zorder_skyline,
}


def points_for(distribution):
    w = synthetic_workload(
        distribution, scaled(1_000_000, SCALE), 100, 2, seed=17
    )
    return w


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("algo_name", sorted(ALGOS))
def test_list_skyline_cell(benchmark, algo_name, distribution):
    w = points_for(distribution)
    pts = [tuple(p) for p in w.competitors]
    result = bench_cell(benchmark, lambda: ALGOS[algo_name](pts))
    benchmark.extra_info["skyline_size"] = len(result)


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
def test_bbs_skyline_cell(benchmark, distribution):
    w = points_for(distribution)
    tree = w.competitor_tree
    result = bench_cell(benchmark, lambda: bbs_skyline(tree))
    benchmark.extra_info["skyline_size"] = len(result)
    # Cross-check against the vectorized reference.
    assert sorted(result) == sorted(numpy_skyline(w.competitors))
