"""Shared sweep definitions for the synthetic-data figure benchmarks.

Figures 6/7 (small synthetic: improved probing vs join-NLB) and 8/9 (large
synthetic: the three bounds) share their panel structure; the per-figure
benchmark modules parameterize over these grids.  Paper grids are Tables IV
and V verbatim; cardinalities are divided by the per-figure scale
(``SKYUP_BENCH_SCALE`` overrides).
"""

from repro.bench.harness import run_cell
from repro.bench.workloads import synthetic_workload

from conftest import scaled

# Table IV (small synthetic).
SMALL_P_SWEEP = [100_000 * i for i in range(1, 11)]
SMALL_T_SWEEP = [10_000 * i for i in range(1, 11)]
SMALL_P_DEFAULT = 1_000_000
SMALL_T_DEFAULT = 100_000
SMALL_D_DEFAULT = 2
SMALL_DIMS = [2, 3, 4, 5]
SMALL_ALGOS = ["probing", "join-nlb"]

# Table V (large synthetic).
LARGE_P_SWEEP = [500_000, 1_000_000, 1_500_000, 2_000_000]
LARGE_T_SWEEP = [50_000, 100_000, 150_000, 200_000]
LARGE_P_DEFAULT = 1_000_000
LARGE_T_DEFAULT = 100_000
LARGE_D_DEFAULT = 5
LARGE_DIMS = [3, 4, 5, 6]
LARGE_BOUNDS = ["join-nlb", "join-clb", "join-alb"]

PROGRESSIVE_KS = [1, 5, 10, 15, 20]


def prepared_workload(distribution, p_paper, t_paper, dims, scale):
    """Build (cached) a scaled workload with its indexes ready."""
    workload = synthetic_workload(
        distribution,
        scaled(p_paper, scale),
        scaled(t_paper, scale),
        dims,
    )
    workload.competitor_tree
    workload.product_tree
    return workload


def run_and_annotate(benchmark, bench_cell, algorithm, workload, k=1):
    """Execute one cell under the benchmark and attach work counters."""
    outcome = bench_cell(
        benchmark, lambda: run_cell(algorithm, workload, k=k)
    )
    counters = outcome.report.counters
    benchmark.extra_info["node_accesses"] = counters.node_accesses
    benchmark.extra_info["dominance_tests"] = counters.dominance_tests
    benchmark.extra_info["upgrade_calls"] = counters.upgrade_calls
    return outcome
