"""Ablation: per-pair LBC validity and the MAX extension bound.

Two studies beyond the paper:

1. **LBC mode** — the paper-literal Case 3/4 formulas (``lbc_mode="paper"``)
   versus the validity-corrected ones (default).  The paper formulas
   overestimate, which prunes harder (fewer exact leaf evaluations, lower
   wall-clock) but can return strictly costlier products — the benchmark
   records the cost regret alongside the time.  This quantifies how much
   of the paper's reported join advantage rides on the invalid bounds.

2. **MAX bound** — ``max`` over per-entry bounds is valid (escaping a set
   is at least as costly as escaping any member) and strictly tighter
   than ALB; measured under the corrected mode.
"""

import pytest

from repro.core.join import JoinUpgrader
from repro.core.probing import improved_probing
from repro.bench.workloads import synthetic_workload

from conftest import bench_cell, scale_factor, scaled

SCALE = scale_factor(200.0)
K = 10


def workload():
    w = synthetic_workload(
        "anti_correlated", scaled(1_000_000, SCALE), scaled(100_000, SCALE), 3
    )
    w.competitor_tree
    w.product_tree
    return w


@pytest.fixture(scope="module")
def reference_costs():
    w = workload()
    outcome = improved_probing(
        w.competitor_tree, w.products, w.cost_model, k=K
    )
    return outcome.costs


@pytest.mark.parametrize("lbc_mode", ["corrected", "paper"])
@pytest.mark.parametrize("bound", ["nlb", "clb", "alb", "max"])
def test_lbc_mode_cell(benchmark, bound, lbc_mode, reference_costs):
    w = workload()
    upgrader = JoinUpgrader(
        w.competitor_tree, w.product_tree, w.cost_model,
        bound=bound, lbc_mode=lbc_mode,
    )
    outcome = bench_cell(benchmark, lambda: upgrader.run(K))
    got = outcome.costs
    regret = sum(g - r for g, r in zip(got, reference_costs))
    benchmark.extra_info["cost_regret_vs_probing"] = regret
    benchmark.extra_info["exact_leaf_evaluations"] = (
        outcome.report.counters.upgrade_calls
    )
    if lbc_mode == "corrected":
        # Valid bounds must reproduce the probing ranking exactly.
        assert regret == pytest.approx(0.0, abs=1e-6)
    else:
        assert regret >= -1e-9  # paper mode can only be worse or equal
