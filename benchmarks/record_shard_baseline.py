"""Regenerate ``benchmarks/results/BENCH_shard.json``.

Usage::

    PYTHONPATH=src python benchmarks/record_shard_baseline.py [out.json]

Runs the sharded-engine scaling sweep (1/2/4/8 worker processes, cold
and cached, mixed read/write stream) at the serve-bench default workload
and records the report next to the other baselines.  The report embeds
the machine's CPU count and platform — read the scaling column against
it, not in isolation.
"""

import json
import pathlib
import sys

from repro.shard.bench import format_shard_report, run_shard_bench

DEFAULT_OUT = pathlib.Path(__file__).parent / "results" / "BENCH_shard.json"


def main(argv):
    out = pathlib.Path(argv[1]) if len(argv) > 1 else DEFAULT_OUT
    # Half the serve-bench workload: ten engine spawns x a cold replay
    # each must fit a CI-sized single-core budget (~5 min); the shapes
    # — overhead per process, hit rates — are what the record is for.
    report = run_shard_bench(
        n_competitors=2000,
        n_products=800,
        n_requests=400,
    )
    print(format_shard_report(report))
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[report written to {out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
