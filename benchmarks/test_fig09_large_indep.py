"""Figure 9: large synthetic data, independent — the three bounds.

Join algorithm only, comparing NLB vs CLB vs ALB.  Panels: (a) vary |P|,
(b) vary |T|, (c) vary d (3..6).  Paper grid: Table V; default divisor 200.

Expected shape (paper §IV-D): roughly linear growth in |P|; insensitivity
to |T|; strong growth with d; the three bounds nearly indistinguishable on
independent data (fewer dominating points leave less room for bound optimizations).
"""

import pytest

from _sweeps import (
    LARGE_BOUNDS,
    LARGE_D_DEFAULT,
    LARGE_DIMS,
    LARGE_P_DEFAULT,
    LARGE_P_SWEEP,
    LARGE_T_DEFAULT,
    LARGE_T_SWEEP,
    prepared_workload,
    run_and_annotate,
)
from conftest import bench_cell, scale_factor

DIST = "independent"
SCALE = scale_factor(200.0)


@pytest.mark.parametrize("p_paper", LARGE_P_SWEEP)
@pytest.mark.parametrize("algorithm", LARGE_BOUNDS)
def test_fig9a_vary_p(benchmark, algorithm, p_paper):
    workload = prepared_workload(
        DIST, p_paper, LARGE_T_DEFAULT, LARGE_D_DEFAULT, SCALE
    )
    run_and_annotate(benchmark, bench_cell, algorithm, workload)


@pytest.mark.parametrize("t_paper", LARGE_T_SWEEP)
@pytest.mark.parametrize("algorithm", LARGE_BOUNDS)
def test_fig9b_vary_t(benchmark, algorithm, t_paper):
    workload = prepared_workload(
        DIST, LARGE_P_DEFAULT, t_paper, LARGE_D_DEFAULT, SCALE
    )
    run_and_annotate(benchmark, bench_cell, algorithm, workload)


@pytest.mark.parametrize("dims", LARGE_DIMS)
@pytest.mark.parametrize("algorithm", LARGE_BOUNDS)
def test_fig9c_vary_d(benchmark, algorithm, dims):
    workload = prepared_workload(
        DIST, LARGE_P_DEFAULT, LARGE_T_DEFAULT, dims, SCALE
    )
    run_and_annotate(benchmark, bench_cell, algorithm, workload)
