"""Regenerate every paper figure and record the results.

Usage::

    python benchmarks/run_all_figures.py [--quick] [--scale S] [--only fig6a,...]

Writes one JSON per figure under ``benchmarks/results/`` and prints each
figure's table — the data EXPERIMENTS.md reports.  This is the script the
repository's recorded numbers come from; individual cells are also
runnable as pytest benchmarks (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.figures import FIGURES, run_figure

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument(
        "--only", default="", help="comma-separated figure ids"
    )
    args = parser.parse_args(argv)

    wanted = (
        [f.strip() for f in args.only.split(",") if f.strip()]
        or sorted(FIGURES)
    )
    for figure_id in wanted:
        start = time.perf_counter()
        result = run_figure(figure_id, scale=args.scale, quick=args.quick)
        elapsed = time.perf_counter() - start
        path = result.save_json(RESULTS_DIR)
        print(result.format_table())
        print(f"[{figure_id} regenerated in {elapsed:.1f}s -> {path}]")
        print(flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
