"""Ablation: R-tree construction strategy and fanout.

The paper only requires "P and T indexed by an R-tree"; these cells
justify the library's construction defaults:

* STR bulk loading vs one-at-a-time insertion (quadratic and linear
  splits) — build time and the resulting tree's join performance;
* node capacity (fanout) sweep for the join algorithm.
"""

import pytest

from repro.bench.workloads import synthetic_workload
from repro.core.join import JoinUpgrader
from repro.rtree.tree import RTree

from conftest import bench_cell, scale_factor, scaled

SCALE = scale_factor(200.0)


def base_workload():
    return synthetic_workload(
        "independent", scaled(1_000_000, SCALE), scaled(100_000, SCALE), 3
    )


@pytest.mark.parametrize(
    "strategy",
    ["bulk-str", "insert-quadratic", "insert-linear", "insert-rstar"],
)
def test_build_strategy_cell(benchmark, strategy):
    w = base_workload()
    points = w.competitors

    def build():
        if strategy == "bulk-str":
            return RTree.bulk_load(points)
        tree = RTree(points.shape[1], split=strategy.split("-")[1])
        for i, p in enumerate(points):
            tree.insert(tuple(p), i)
        return tree

    tree = bench_cell(benchmark, build)
    assert len(tree) == len(points)
    from repro.rtree.stats import collect_stats

    stats = collect_stats(tree)
    benchmark.extra_info["height"] = tree.height
    benchmark.extra_info["nodes"] = stats.node_count
    benchmark.extra_info["sibling_overlap"] = round(
        stats.sibling_overlap_area, 4
    )


@pytest.mark.parametrize("fanout", [8, 16, 32, 64, 128])
def test_join_fanout_cell(benchmark, fanout):
    w = base_workload()
    tree_p = RTree.bulk_load(w.competitors, max_entries=fanout)
    tree_t = RTree.bulk_load(w.products, max_entries=fanout)
    upgrader = JoinUpgrader(tree_p, tree_t, w.cost_model, bound="clb")
    outcome = bench_cell(benchmark, lambda: upgrader.run(5))
    benchmark.extra_info["node_accesses"] = (
        outcome.report.counters.node_accesses
    )
    benchmark.extra_info["heap_pops"] = outcome.report.counters.heap_pops
