"""Columnar-kernel cells: scalar oracles vs the numpy hot paths.

One pytest-benchmark cell per kernel and per switch state, over the
Figure 8/10 workload shape (anti-correlated competitors — the regime with
the largest skylines, where the columnar paths matter most).  The recorded
full-scale baseline (``|P| = 100000``, ``d = 4``) lives in
``benchmarks/results/BENCH_kernels.json`` and is regenerated with::

    skyup bench-kernels --competitors 100000 --products 2000 --dims 4 \
        --save-json benchmarks/results/BENCH_kernels.json

These cells default to a scaled-down instance (``SKYUP_BENCH_SCALE``
overrides) so they double as the CI smoke check.
"""

import pytest

from repro.bench.kernels import run_kernel_bench
from repro.core.probing import batch_probing
from repro.core.join import JoinUpgrader
from repro.bench.workloads import synthetic_workload
from repro.kernels.switch import use_kernels

from conftest import bench_cell, scale_factor, scaled

SCALE = scale_factor(50.0)

P_PAPER = 100_000
T_PAPER = 10_000
DIMS = 4


def workload():
    wl = synthetic_workload(
        "anti_correlated",
        scaled(P_PAPER, SCALE, floor=400),
        scaled(T_PAPER, SCALE, floor=100),
        DIMS,
    )
    wl.competitor_tree
    wl.product_tree
    return wl


@pytest.mark.parametrize("kernels", [False, True], ids=["scalar", "kernel"])
def test_probing_batch_cell(benchmark, kernels):
    wl = workload()

    def cell():
        with use_kernels(kernels):
            return batch_probing(
                wl.competitor_tree, wl.products, wl.cost_model, k=5
            )

    outcome = bench_cell(benchmark, cell)
    assert len(outcome.results) == 5
    benchmark.extra_info["dominance_tests"] = (
        outcome.report.counters.dominance_tests
    )


@pytest.mark.parametrize("kernels", [False, True], ids=["scalar", "kernel"])
def test_join_cell(benchmark, kernels):
    wl = workload()

    def cell():
        with use_kernels(kernels):
            return JoinUpgrader(
                wl.competitor_tree, wl.product_tree, wl.cost_model,
                bound="clb",
            ).run(k=5)

    outcome = bench_cell(benchmark, cell)
    assert len(outcome.results) == 5
    benchmark.extra_info["lbc_evaluations"] = (
        outcome.report.counters.lbc_evaluations
    )


def test_kernel_smoke_agreement_and_speed():
    """The CI gate: outputs agree; the kernel path is not pathologically slow.

    At smoke scale numpy dispatch overhead can eat the win on the
    traversal-bound cells, so the gate is "not slower than 1.5x scalar"
    per cell, not a speedup requirement — the recorded full-scale baseline
    is where the >= 3x end-to-end target is demonstrated.
    """
    report = run_kernel_bench(
        n_competitors=scaled(P_PAPER, SCALE, floor=400),
        n_products=scaled(T_PAPER, SCALE, floor=100),
        dims=DIMS,
        distribution="anti_correlated",
        repeats=1,
    )
    assert report["all_agree"], report
    for cell in report["cells"]:
        assert cell["kernel_s"] <= cell["scalar_s"] * 1.5 + 0.01, cell
