"""Figure 6: small synthetic data, anti-correlated dimensions.

Improved probing vs the join (NLB bound, as the paper uses for these
figures).  Three panels: (a) vary |P| with |T| and d fixed, (b) vary |T|,
(c) vary d.  Paper grid: Table IV; cardinalities are scaled down (default
divisor 200; panel (c) divisor 500 to keep the d=5 probing baseline
bounded — probing cost explodes with dimensionality, which is itself the
figure's point).

Expected shape (paper §IV-C): the join beats improved probing by orders of
magnitude everywhere; probing degrades with |T| while the join barely
moves; both grow with d.
"""

import pytest

from _sweeps import (
    SMALL_ALGOS,
    SMALL_D_DEFAULT,
    SMALL_DIMS,
    SMALL_P_DEFAULT,
    SMALL_P_SWEEP,
    SMALL_T_DEFAULT,
    SMALL_T_SWEEP,
    prepared_workload,
    run_and_annotate,
)
from conftest import bench_cell, scale_factor

DIST = "anti_correlated"
SCALE = scale_factor(200.0)
SCALE_DIMS = scale_factor(500.0)


@pytest.mark.parametrize("p_paper", SMALL_P_SWEEP)
@pytest.mark.parametrize("algorithm", SMALL_ALGOS)
def test_fig6a_vary_p(benchmark, algorithm, p_paper):
    workload = prepared_workload(
        DIST, p_paper, SMALL_T_DEFAULT, SMALL_D_DEFAULT, SCALE
    )
    run_and_annotate(benchmark, bench_cell, algorithm, workload)


@pytest.mark.parametrize("t_paper", SMALL_T_SWEEP)
@pytest.mark.parametrize("algorithm", SMALL_ALGOS)
def test_fig6b_vary_t(benchmark, algorithm, t_paper):
    workload = prepared_workload(
        DIST, SMALL_P_DEFAULT, t_paper, SMALL_D_DEFAULT, SCALE
    )
    run_and_annotate(benchmark, bench_cell, algorithm, workload)


@pytest.mark.parametrize("dims", SMALL_DIMS)
@pytest.mark.parametrize("algorithm", SMALL_ALGOS)
def test_fig6c_vary_d(benchmark, algorithm, dims):
    workload = prepared_workload(
        DIST, SMALL_P_DEFAULT, SMALL_T_DEFAULT, dims, SCALE_DIMS
    )
    run_and_annotate(benchmark, bench_cell, algorithm, workload)
