"""Figure 4: execution times on the wine attribute combinations.

Paper setting: |P| = 3,898, |T| = 1,000, k = 1; algorithms: basic probing,
improved probing, and the join under the NLB/CLB/ALB bounds; one group of
bars per attribute combination of Table III.  The wine data is the
synthetic UCI surrogate (DESIGN.md §5) at the paper's own cardinalities —
no scaling.

Expected shape (paper §IV-B): basic probing slowest by far; improved
probing cuts roughly a third to half; the join far faster; the three
bounds differ only modestly at this data size.
"""

import pytest

from repro.bench.harness import run_cell
from repro.bench.workloads import wine_workload

from conftest import bench_cell

ALGORITHMS = [
    "basic-probing",
    "probing",
    "join-nlb",
    "join-clb",
    "join-alb",
]
COMBOS = ["c,s", "c,t", "s,t", "c,s,t"]


@pytest.mark.parametrize("combo", COMBOS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig4_cell(benchmark, algorithm, combo):
    workload = wine_workload(combo)
    workload.competitor_tree  # build indexes outside the measurement
    workload.product_tree
    outcome = bench_cell(
        benchmark, lambda: run_cell(algorithm, workload, k=1)
    )
    assert len(outcome.results) == 1
    benchmark.extra_info["node_accesses"] = (
        outcome.report.counters.node_accesses
    )
    benchmark.extra_info["top_cost"] = outcome.results[0].cost
