"""Figure 5: progressiveness on the wine data (c,s,t attributes).

Paper setting: the join under NLB/CLB/ALB, measuring the time from start
until k results are available, k in {1, 5, 10, 15, 20}.  Probing variants
are excluded — they are not progressive (paper §IV-B).

Expected shape: all bounds grow gently with k; CLB best, NLB worst.
"""

import pytest

from repro.bench.harness import run_cell
from repro.bench.workloads import wine_workload

from conftest import bench_cell

BOUNDS = ["nlb", "clb", "alb"]
KS = [1, 5, 10, 15, 20]


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("bound", BOUNDS)
def test_fig5_cell(benchmark, bound, k):
    workload = wine_workload("c,s,t")
    workload.competitor_tree
    workload.product_tree
    outcome = bench_cell(
        benchmark, lambda: run_cell(f"join-{bound}", workload, k=k)
    )
    assert len(outcome.results) == k
    times = outcome.report.extras["result_times"]
    benchmark.extra_info["time_to_kth"] = times[-1]
    benchmark.extra_info["costs_ascending"] = outcome.costs == sorted(
        outcome.costs
    )
