"""Serving-layer throughput cells: cached engine vs cold execution.

These cells measure what ``skyup serve-bench`` reports — request
throughput over a repeated-query stream (hot product working set plus
periodic whole-catalog top-k) — as pytest-benchmark cells so the serving
numbers land in the same output as the paper-figure cells.  The recorded
baseline lives in ``benchmarks/results/BENCH_serve.json``.
"""

import pytest

from repro.bench.workloads import serve_session
from repro.serve.bench import generate_requests, run_serve_bench
from repro.serve import EngineConfig, UpgradeEngine

from conftest import bench_cell, scale_factor, scaled

SCALE = scale_factor(200.0)

N_REQUESTS = 600


def workload():
    session = serve_session(
        "independent",
        scaled(1_000_000, SCALE, floor=1000),
        scaled(100_000, SCALE, floor=400),
        3,
    )
    requests = generate_requests(
        N_REQUESTS, session.product_count, hot_pool=64, topk_every=25, k=5
    )
    return session, requests


@pytest.mark.parametrize("cache", [False, True], ids=["cold", "cached"])
def test_serve_throughput_cell(benchmark, cache):
    session, requests = workload()
    engine = UpgradeEngine(session, EngineConfig(workers=0, cache=cache))

    def replay():
        served = 0
        for lo in range(0, len(requests), 32):
            served += len(engine.execute_batch(requests[lo:lo + 32]))
        return served

    try:
        served = bench_cell(benchmark, replay)
    finally:
        engine.close()
    assert served >= N_REQUESTS
    metrics = engine.metrics()
    benchmark.extra_info["requests"] = served
    benchmark.extra_info["cache_hit_rate"] = round(
        metrics["skyline_cache"]["hit_rate"], 4
    )
    benchmark.extra_info["p95_latency_ms"] = round(
        metrics["latency_s"]["p95"] * 1e3, 3
    )


def test_serve_speedup_meets_target():
    """The acceptance bar: cached >= 2x cold on the repeated workload."""
    report = run_serve_bench(
        n_competitors=scaled(1_000_000, SCALE, floor=1000),
        n_products=scaled(100_000, SCALE, floor=400),
        n_requests=N_REQUESTS,
    )
    assert report["speedup"] >= 2.0, report["speedup"]
