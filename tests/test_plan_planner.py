"""The cost-based planner: profiling, enumeration, choice, feedback.

The planner's contract has three parts pinned here: (1) enumeration
covers every physical alternative and the choice is the cheapest
estimate with the historical default winning ties; (2) whatever the
planner picks, the *answer* is identical to every fixed method — plan
choice changes work, never results; (3) the feedback loop reacts to
repeated misestimates by bumping the version (the re-plan signal for
plan-caching callers) and refits unit costs once enough samples accrue.
"""

import numpy as np
import pytest

from repro.core.api import top_k_upgrades
from repro.costs.model import paper_cost_model
from repro.instrumentation import Counters
from repro.plan import (
    LogicalPlan,
    PhysicalPlan,
    Planner,
    default_planner,
    execute_plan,
    profile_catalog,
)
from repro.plan.planner import _CANDIDATE_ORDER, attach_actual
from repro.rtree.tree import RTree


def make_workload(seed=31, n_p=400, n_t=150, dims=2):
    rng = np.random.default_rng(seed)
    P = rng.random((n_p, dims))
    T = 1.0 + rng.random((n_t, dims))
    return P, T


def make_profile(P, T):
    tree = RTree.bulk_load(P)
    return profile_catalog(tree, len(T), T.shape[1])


class TestProfileAndEnumeration:
    def test_profile_describes_catalog(self):
        P, T = make_workload()
        profile = make_profile(P, T)
        assert profile.n_competitors == len(P)
        assert profile.n_products == len(T)
        assert profile.dims == 2
        assert profile.skyline_estimate >= 1.0
        assert profile.competitor_height >= 1
        doc = profile.to_dict()
        assert doc["n_competitors"] == len(P)

    def test_candidates_cover_every_alternative(self):
        P, T = make_workload()
        planner = Planner()
        logical = LogicalPlan(k=3, profile=make_profile(P, T))
        plans = planner.candidates(logical)
        assert [(p.method, p.bound) for p in plans] == list(_CANDIDATE_ORDER)

    def test_chosen_is_cheapest_estimate(self):
        P, T = make_workload()
        planner = Planner()
        planned = planner.plan(LogicalPlan(k=3, profile=make_profile(P, T)))
        cheapest = min(planned.candidates, key=lambda c: c.seconds)
        assert planned.plan == cheapest.plan
        assert not planned.forced

    def test_force_is_honored_but_still_costed(self):
        P, T = make_workload()
        planner = Planner()
        force = PhysicalPlan(method="basic-probing")
        planned = planner.plan(
            LogicalPlan(k=1, profile=make_profile(P, T)), force=force
        )
        assert planned.plan == force
        assert planned.forced
        # The full candidate set is still in the tree for EXPLAIN.
        assert len(planned.candidates) >= len(_CANDIDATE_ORDER)

    def test_basic_probing_never_wins(self):
        # Basic probing exists as the recorded worst case; on any real
        # catalog its quadratic estimate must lose.
        P, T = make_workload(n_p=800, n_t=200)
        planner = Planner()
        planned = planner.plan(LogicalPlan(k=5, profile=make_profile(P, T)))
        assert planned.plan.method != "basic-probing"


class TestPlanIndependentAnswers:
    @pytest.mark.parametrize("dims", [2, 3])
    def test_every_plan_same_results(self, dims):
        P, T = make_workload(seed=77, n_p=300, n_t=90, dims=dims)
        tree = RTree.bulk_load(P)
        model = paper_cost_model(dims)
        profile = profile_catalog(tree, len(T), dims)
        planner = Planner()
        logical = LogicalPlan(k=7, profile=profile)
        from repro.core.types import UpgradeConfig

        reference = None
        for candidate in planner.plan(logical).candidates:
            outcome = execute_plan(
                candidate.plan, tree, T, model, 7, UpgradeConfig()
            )
            got = [(r.record_id, pytest.approx(r.cost)) for r in
                   outcome.results]
            if reference is None:
                reference = got
            else:
                assert got == reference, candidate.plan.label

    def test_auto_method_equals_fixed_join(self):
        P, T = make_workload(seed=5)
        fixed = top_k_upgrades(P, T, k=5, method="join")
        auto = top_k_upgrades(P, T, k=5, method="auto", planner=Planner())
        assert [r.record_id for r in auto.results] == [
            r.record_id for r in fixed.results
        ]
        assert [r.cost for r in auto.results] == pytest.approx(
            [r.cost for r in fixed.results]
        )
        assert auto.report.extras["plan"]


class TestFeedback:
    def make_planned(self, planner):
        P, T = make_workload()
        return planner.plan(LogicalPlan(k=1, profile=make_profile(P, T)))

    def test_good_estimates_keep_version(self):
        planner = Planner()
        planned = self.make_planned(planner)
        for _ in range(10):
            planner.observe(planned, planned.estimated_seconds * 1.1)
        assert planner.version == 0

    def test_repeated_misestimates_bump_version(self):
        planner = Planner(misestimate_ratio=3.0, misestimate_patience=3)
        planned = self.make_planned(planner)
        for _ in range(3):
            planner.observe(planned, planned.estimated_seconds * 50.0)
        assert planner.version == 1
        assert planner.stats()["replans"] == 1

    def test_scale_feedback_moves_estimates(self):
        planner = Planner()
        planned = self.make_planned(planner)
        before = planned.estimated_seconds
        planner.observe(planned, before * 2.9)  # inside the miss band
        replanned = self.make_planned(planner)
        assert replanned.estimated_seconds > before

    def test_refit_after_enough_samples(self):
        planner = Planner(refit_window=4)
        planned = self.make_planned(planner)
        counters = Counters()
        counters.node_accesses = 50
        counters.dominance_tests = 4000
        counters.skyline_points = 300
        for _ in range(4):
            planner.observe(planned, 0.01, counters)
        assert planner.cost_model.refits >= 1

    def test_calibrate_vector_cutover(self):
        planner = Planner()
        before = planner.version
        cutover = planner.calibrate_vector_cutover(repeats=5)
        assert cutover >= 1
        assert planner.vector_jl_from == cutover
        assert planner.calibrated_cutover
        assert planner.version == before + 1

    def test_stats_snapshot_shape(self):
        planner = Planner()
        planned = self.make_planned(planner)
        planner.observe(planned, planned.estimated_seconds)
        stats = planner.stats()
        assert set(stats) >= {
            "version", "replans", "vector_jl_from", "plans_chosen",
            "plan_health", "cost_model",
        }
        (label,) = stats["plan_health"].keys()
        assert stats["plan_health"][label]["observations"] == 1


class TestExplainSurface:
    def test_explain_attaches_actuals(self):
        P, T = make_workload()
        outcome = top_k_upgrades(
            P, T, k=3, method="auto", explain=True, planner=Planner()
        )
        report = outcome.report.extras["explain"]
        assert report.tree.actual is not None
        assert report.tree.actual["seconds"] > 0
        chosen_children = [c for c in report.tree.children if c.chosen]
        assert len(chosen_children) == 1
        assert chosen_children[0].actual is not None
        # Every candidate carries an estimate; losers carry no actual.
        for child in report.tree.children:
            assert child.estimated["seconds"] > 0
            if not child.chosen:
                assert child.actual is None

    def test_explain_on_forced_method(self):
        P, T = make_workload()
        outcome = top_k_upgrades(
            P, T, k=2, method="probing", explain=True, planner=Planner()
        )
        report = outcome.report.extras["explain"]
        assert report.chosen == "probing"
        assert "(forced)" in report.tree.label

    def test_attach_actual_with_counters(self):
        P, T = make_workload()
        planner = Planner()
        planned = planner.plan(LogicalPlan(k=1, profile=make_profile(P, T)))
        report = planned.explain()
        counters = Counters()
        counters.node_accesses = 7
        attach_actual(report, 0.5, counters)
        assert report.tree.actual["node_accesses"] == 7.0


def test_default_planner_is_a_singleton():
    assert default_planner() is default_planner()
