"""Skyline algorithm tests: every implementation against the numpy oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.instrumentation import Counters
from repro.rtree.tree import RTree
from repro.skyline import (
    bbs_skyline,
    bnl_skyline,
    dnc_skyline,
    numpy_skyline,
    numpy_skyline_mask,
    sfs_skyline,
)

coord = st.floats(
    min_value=0, max_value=1, allow_nan=False, allow_infinity=False
)
point_lists_2d = st.lists(st.tuples(coord, coord), min_size=0, max_size=80)
point_lists_3d = st.lists(
    st.tuples(coord, coord, coord), min_size=0, max_size=60
)


def brute_skyline(points):
    """Reference by definition: undominated, deduplicated points."""
    unique = sorted(set(map(tuple, points)))
    out = []
    for p in unique:
        if not any(
            q != p
            and all(a <= b for a, b in zip(q, p))
            and any(a < b for a, b in zip(q, p))
            for q in unique
        ):
            out.append(p)
    return sorted(out)


LIST_ALGOS = [bnl_skyline, sfs_skyline, dnc_skyline, numpy_skyline]
ALGO_IDS = ["bnl", "sfs", "dnc", "numpy"]


@pytest.mark.parametrize("algo", LIST_ALGOS, ids=ALGO_IDS)
class TestListAlgorithms:
    def test_empty(self, algo):
        assert algo([]) == []

    def test_single_point(self, algo):
        assert sorted(algo([(0.5, 0.5)])) == [(0.5, 0.5)]

    def test_known_example(self, algo):
        pts = [(1, 5), (2, 4), (3, 3), (2, 6), (5, 1), (4, 4)]
        assert sorted(algo(pts)) == [(1, 5), (2, 4), (3, 3), (5, 1)]

    def test_duplicates_collapse(self, algo):
        pts = [(1, 1), (1, 1), (2, 2)]
        assert sorted(algo(pts)) == [(1, 1)]

    def test_all_incomparable_chain(self, algo):
        pts = [(float(i), float(10 - i)) for i in range(11)]
        assert sorted(algo(pts)) == sorted(map(tuple, pts))

    @given(point_lists_2d)
    @settings(max_examples=60, deadline=None)
    def test_matches_definition_2d(self, algo, points):
        assert sorted(set(algo(points))) == brute_skyline(points)

    @given(point_lists_3d)
    @settings(max_examples=40, deadline=None)
    def test_matches_definition_3d(self, algo, points):
        assert sorted(set(algo(points))) == brute_skyline(points)


class TestBbsSkyline:
    def test_empty_tree(self):
        assert bbs_skyline(RTree(2)) == []

    def test_matches_reference_on_random_data(self):
        pts = np.random.default_rng(4).random((600, 2))
        tree = RTree.bulk_load(pts)
        assert sorted(bbs_skyline(tree)) == sorted(numpy_skyline(pts))

    def test_matches_reference_3d(self):
        pts = np.random.default_rng(5).random((300, 3))
        tree = RTree.bulk_load(pts)
        assert sorted(bbs_skyline(tree)) == sorted(numpy_skyline(pts))

    def test_returns_in_mindist_order(self):
        pts = np.random.default_rng(6).random((200, 2))
        sky = bbs_skyline(RTree.bulk_load(pts))
        sums = [sum(p) for p in sky]
        assert sums == sorted(sums)

    def test_prunes_dominated_entries(self):
        pts = np.random.default_rng(7).random((500, 2))
        stats = Counters()
        bbs_skyline(RTree.bulk_load(pts), stats)
        assert stats.entries_pruned > 0
        assert stats.node_accesses > 0

    @given(point_lists_2d.filter(lambda ps: len(ps) > 0))
    @settings(max_examples=30, deadline=None)
    def test_matches_definition(self, points):
        tree = RTree.bulk_load(points, max_entries=4)
        assert sorted(set(bbs_skyline(tree))) == brute_skyline(points)


class TestNumpyMask:
    def test_mask_shape_and_meaning(self):
        pts = np.array([[0.1, 0.9], [0.5, 0.5], [0.6, 0.6]])
        mask = numpy_skyline_mask(pts)
        assert mask.tolist() == [True, True, False]

    def test_duplicates_all_marked(self):
        pts = np.array([[0.5, 0.5], [0.5, 0.5], [0.9, 0.9]])
        assert numpy_skyline_mask(pts).tolist() == [True, True, False]

    def test_empty(self):
        assert numpy_skyline_mask(np.zeros((0, 3))).shape == (0,)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            numpy_skyline_mask(np.zeros(5))

    def test_counter_instrumentation(self):
        stats = Counters()
        bnl_skyline([(1, 2), (2, 1), (3, 3)], stats)
        assert stats.dominance_tests > 0


class TestFloatingPointSumCollisions:
    """Regression: dominance with coordinate sums that collide in fp.

    ``(1.0, 7e-206)`` and ``(1.0, 0.0)`` have *equal* floating-point sums
    (the subnormal underflows in the addition) although the second point
    strictly dominates the first.  Every sum-ordered traversal must break
    such ties lexicographically — a dominator is always lexicographically
    smaller, exactly — or the dominated point leaks into the skyline.
    Found by hypothesis in ``get_dominating_skyline``.
    """

    POINTS = [(1.0, 7.277832964817326e-206), (1.0, 0.0)]
    EXPECTED = [(1.0, 0.0)]

    @pytest.mark.parametrize("algo", LIST_ALGOS, ids=ALGO_IDS)
    def test_list_algorithms(self, algo):
        assert sorted(set(algo(self.POINTS))) == self.EXPECTED

    def test_bbs(self):
        tree = RTree.bulk_load(self.POINTS)
        assert sorted(bbs_skyline(tree)) == self.EXPECTED

    def test_zorder(self):
        from repro.skyline.zorder import zorder_skyline

        assert sorted(zorder_skyline(self.POINTS)) == self.EXPECTED

    def test_mask(self):
        mask = numpy_skyline_mask(np.array(self.POINTS))
        assert mask.tolist() == [False, True]
